"""Regression tests for the out-of-core engine's spill lifecycle.

Covers the failure modes that matter once index bytes live on disk: spill
files must disappear on engine close *and* on garbage collection, a
corrupted or truncated shard file must raise a clear ``EngineError``
instead of returning garbage coverage, ``template()`` rebuilds must not
leak old spill directories, and the process fan-out must be byte-identical
to the serial path (falling back to threads where ``fork`` is missing).
"""

import gc
import json
import os

import numpy as np
import pytest

import repro.core.engine.sharded as sharded_module
from repro.core.engine import (
    MmapShardStore,
    ShardedEngine,
    ShardStoreWriter,
    resolve_engine,
)
from repro.core.engine.mmapped import run_shard_op, weighted_count
from repro.core.incremental import IncrementalMupIndex
from repro.core.pattern import Pattern, X
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError, ReproError


@pytest.fixture
def dataset():
    return random_categorical_dataset(80, (3, 3, 2), seed=9, skew=1.1)


@pytest.fixture
def patterns(dataset):
    result = [Pattern.root(dataset.d)]
    for attribute, cardinality in enumerate(dataset.cardinalities):
        for value in range(cardinality):
            result.append(Pattern.root(dataset.d).with_value(attribute, value))
    result.append(Pattern.of(1, X, 0))
    result.append(Pattern.of(2, 2, 1))
    return result


def spill_dirs(root) -> list:
    return sorted(p for p in os.listdir(root) if not p.startswith("."))


class TestSpillLifecycle:
    def test_close_removes_owned_spill_dir(self, dataset, tmp_path):
        engine = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        path = engine.spill_path
        assert os.path.isdir(path)
        engine.close()
        assert not os.path.exists(path)
        # The user's root directory itself is never deleted.
        assert tmp_path.is_dir()

    def test_gc_removes_owned_spill_dir(self, dataset, tmp_path):
        engine = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        path = engine.spill_path
        del engine
        gc.collect()
        assert not os.path.exists(path)

    def test_failed_build_removes_partial_spill_dir(
        self, dataset, tmp_path, monkeypatch
    ):
        calls = []

        def exploding_add_shard(self, *args, **kwargs):
            calls.append(1)
            if len(calls) == 2:
                raise MemoryError("simulated mid-build failure")
            return original(self, *args, **kwargs)

        original = ShardStoreWriter.add_shard
        monkeypatch.setattr(ShardStoreWriter, "add_shard", exploding_add_shard)
        with pytest.raises(MemoryError):
            ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        # The half-written (manifest-less) spill subdirectory is reclaimed.
        assert spill_dirs(tmp_path) == []

    def test_queries_after_close_raise(self, dataset, tmp_path):
        engine = ShardedEngine(
            dataset, shards=3, spill_dir=str(tmp_path), mask_cache_size=0
        )
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.coverage(Pattern.of(1, 0, X))

    def test_every_query_family_raises_after_close(self, tmp_path):
        # A duplicate-free dataset: the uniform count shortcut and the
        # all-wildcard match mask never touch the store, and warm cached
        # masks must not keep answering either.
        from repro.data.dataset import Dataset, Schema

        rows = np.array([[0, 0], [0, 1], [1, 0], [1, 1], [2, 0]], np.int32)
        uniform = Dataset(Schema.of(["A", "B"], [3, 2]), rows)
        engine = ShardedEngine(uniform, shards=2, spill_dir=str(tmp_path))
        root = Pattern.root(2)
        assert engine.coverage(root) == uniform.n  # warm the mask cache
        engine.close()
        for query in (
            lambda: engine.coverage(root),
            lambda: engine.coverage_many([root]),
            lambda: engine.full_mask(),
            lambda: engine.count(np.zeros(0, dtype=np.uint64)),
            lambda: engine.restrict(np.zeros(0, dtype=np.uint64), 0, 1),
            lambda: engine.value_mask(0, 1),
            lambda: engine.restrict_children(np.zeros(0, dtype=np.uint64), 0),
            lambda: engine.mask_to_bool(np.zeros(0, dtype=np.uint64)),
        ):
            with pytest.raises(EngineError, match="closed"):
                query()

    def test_attach_does_not_own_files(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        path = owner.spill_path
        attached = ShardedEngine.attach(dataset, path)
        assert not attached.store.owns_files
        attached.close()
        assert os.path.isdir(path)
        owner.close()
        assert not os.path.exists(path)

    def test_context_manager_closes(self, dataset, tmp_path):
        with ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path)) as engine:
            path = engine.spill_path
            assert engine.coverage(Pattern.root(3)) == dataset.n
        assert not os.path.exists(path)

    def test_template_rebuild_does_not_leak_spill_dirs(self, dataset, tmp_path):
        engine = ShardedEngine(
            dataset,
            shards=3,
            spill_dir=str(tmp_path),
            max_resident_bytes=1 << 20,
        )
        rebuilt = engine.template()(dataset)
        assert rebuilt.out_of_core
        assert rebuilt.max_resident_bytes == 1 << 20
        assert rebuilt.spill_path != engine.spill_path
        # Both live under the same user-specified root...
        assert len(spill_dirs(tmp_path)) == 2
        engine.close()
        # ...and closing one never touches the other.
        assert spill_dirs(tmp_path) == [os.path.basename(rebuilt.spill_path)]
        assert rebuilt.coverage(Pattern.root(3)) == dataset.n
        rebuilt.close()
        assert spill_dirs(tmp_path) == []

    def test_incremental_rebuilds_close_old_spill_dirs(self, dataset, tmp_path):
        engine = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        index = IncrementalMupIndex(dataset, threshold=3, engine=engine)
        # The index reduced the prebuilt engine to a template: its own
        # engine spilled a second directory, the user's is untouched.
        assert len(spill_dirs(tmp_path)) == 2
        for _ in range(3):
            index.add_rows([[0, 0, 0]])
            assert len(spill_dirs(tmp_path)) == 2
        engine.close()
        assert len(spill_dirs(tmp_path)) == 1


class TestPointKernels:
    def test_value_mask_and_restrict_match_dense(self, dataset, tmp_path):
        from repro.core.engine import DenseBoolEngine

        dense = DenseBoolEngine(dataset)
        engine = ShardedEngine(
            dataset, shards=3, spill_dir=str(tmp_path), max_resident_bytes=1
        )
        full = engine.full_mask()
        for attribute, cardinality in enumerate(dataset.cardinalities):
            for value in range(cardinality):
                restricted = engine.restrict(full, attribute, value)
                expected = dense.restrict(dense.full_mask(), attribute, value)
                assert np.array_equal(
                    engine.mask_to_bool(restricted), dense.mask_to_bool(expected)
                )
                assert np.array_equal(
                    engine.mask_to_bool(
                        np.bitwise_and(full, engine.value_mask(attribute, value))
                    ),
                    dense.mask_to_bool(expected),
                )
        engine.close()


class TestCorruption:
    def test_missing_manifest_raises(self, dataset, tmp_path):
        (tmp_path / "not-a-store").mkdir()
        with pytest.raises(EngineError, match="manifest"):
            ShardedEngine.attach(dataset, str(tmp_path / "not-a-store"))

    def test_truncated_shard_file_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        path = owner.spill_path
        target = os.path.join(path, "shard_0001.words.npy")
        with open(target, "r+b") as handle:
            handle.truncate(os.path.getsize(target) - 8)
        with pytest.raises(EngineError, match="truncated or corrupted"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_corrupted_shard_payload_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        target = os.path.join(path, "shard_0000.words.npy")
        # Same size, garbage header: caught at load, not answered as data.
        size = os.path.getsize(target)
        with open(target, "r+b") as handle:
            handle.write(b"\x00" * min(size, 16))
        engine = ShardedEngine.attach(dataset, path, mask_cache_size=0)
        with pytest.raises(EngineError, match="corrupted shard file"):
            engine.coverage(Pattern.of(1, 0, X))
        owner.close()

    def test_manifest_missing_fields_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["shards"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="malformed shard-store manifest"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_manifest_incomplete_entry_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["shards"][1]["unique_start"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="incomplete shard entry"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_unsupported_format_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format"] = "repro-shard-store/v999"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="unsupported shard-store format"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_non_contiguous_shard_layout_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["shards"][1]["unique_start"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="non-contiguous"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_self_consistent_shape_tampering_raises(self, tmp_path):
        """A manifest whose shapes and sizes agree with a truncated file
        must still fail: block widths are pinned to the word windows."""
        # Enough distinct combinations that each shard spans several words
        # (a one-word shard would make the truncation a no-op).
        wide = random_categorical_dataset(2000, (10, 10, 4), seed=3, skew=0.3)
        owner = ShardedEngine(wide, shards=2, spill_dir=str(tmp_path))
        assert owner.shard_infos[1].word_stop - owner.shard_infos[1].word_start > 1
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        entry = manifest["shards"][1]
        rows = entry["words_shape"][0]
        narrow = np.zeros((rows, 1), dtype=np.uint64)
        np.save(os.path.join(path, entry["words_file"]), narrow)
        entry["words_shape"] = [rows, 1]
        entry["words_size"] = os.path.getsize(
            os.path.join(path, entry["words_file"])
        )
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="word window"):
            ShardedEngine.attach(wide, path)
        owner.close()

    def test_shifted_unique_spans_raise(self, tmp_path):
        """Shifting a shard boundary's unique spans (word windows, shapes,
        and sizes untouched) must fail: packed widths pin the spans."""
        wide = random_categorical_dataset(2000, (10, 10, 4), seed=3, skew=0.3)
        owner = ShardedEngine(wide, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["shards"][0]["unique_stop"] > 64
        manifest["shards"][0]["unique_stop"] -= 64
        manifest["shards"][1]["unique_start"] -= 64
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="packed layout requires"):
            ShardedEngine.attach(wide, path)
        owner.close()

    def test_permuted_shard_ids_raise(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        # List order (and so contiguity) intact, ids swapped: the lookup
        # key would address the wrong shard file per window.
        manifest["shards"][0]["id"], manifest["shards"][1]["id"] = (
            manifest["shards"][1]["id"],
            manifest["shards"][0]["id"],
        )
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="out-of-order shard ids"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_incomplete_unique_coverage_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        dropped = manifest["shards"].pop()
        # Keep the word layout consistent so only the unique tiling breaks.
        manifest["shards"][0]["unique_stop"] = dropped["unique_stop"] - 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="unique"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_tampered_uniform_flag_raises(self, dataset, tmp_path):
        """Flipping uniform=true (dropping the multiplicity vectors) must
        fail on attach, not silently popcount unweighted answers."""
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["uniform"] is False
        manifest["uniform"] = True
        for entry in manifest["shards"]:
            entry["counts_file"] = None
            entry["counts_shape"] = None
            entry["counts_size"] = 0
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(EngineError, match="uniform"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_fingerprint_mismatch_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        other = random_categorical_dataset(80, (3, 3, 2), seed=10, skew=1.1)
        with pytest.raises(EngineError, match="different dataset"):
            ShardedEngine.attach(other, owner.spill_path)
        owner.close()

    def test_writer_refuses_existing_store(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        with pytest.raises(EngineError, match="already holds"):
            ShardStoreWriter(
                owner.spill_path,
                cardinalities=dataset.cardinalities,
                uniform=False,
                dataset_meta={},
            )
        owner.close()


class TestBudget:
    def test_peak_resident_bounded_by_budget(self, dataset, patterns, tmp_path):
        probe = ShardedEngine(dataset, shards=4, spill_dir=str(tmp_path))
        budget = max(  # exactly one shard resident at a time
            probe.store.shard_nbytes(shard_id)
            for shard_id in range(probe.store.shard_count)
        )
        engine = ShardedEngine.attach(
            dataset, probe.spill_path, max_resident_bytes=budget
        )
        engine.coverage_many(patterns)
        stats = engine.store.stats()
        assert stats["peak_resident_bytes"] <= budget
        assert stats["evictions"] > 0
        assert stats["over_budget_loads"] == 0
        engine.close()
        probe.close()

    def test_oversized_shard_still_loads(self, dataset, patterns, tmp_path):
        engine = ShardedEngine(
            dataset, shards=4, spill_dir=str(tmp_path), max_resident_bytes=1
        )
        serial = ShardedEngine(dataset, shards=4)
        assert list(engine.coverage_many(patterns)) == list(
            serial.coverage_many(patterns)
        )
        stats = engine.store.stats()
        assert stats["over_budget_loads"] > 0
        assert stats["resident_shards"] == 1
        engine.close()

    def test_unlimited_budget_reuses_resident_shards(
        self, dataset, patterns, tmp_path
    ):
        engine = ShardedEngine(
            dataset, shards=4, spill_dir=str(tmp_path), mask_cache_size=0
        )
        engine.coverage_many(patterns)
        engine.coverage_many(patterns)
        stats = engine.store.stats()
        # Words and counts are independent residency units: the match pass
        # loads each shard's word block once, the (non-uniform) counting
        # pass each multiplicity vector once — and nothing twice.
        assert stats["loads"] == 2 * engine.shard_count
        assert stats["words_loads"] == engine.shard_count
        assert stats["counts_loads"] == engine.shard_count
        assert stats["evictions"] == 0
        assert stats["hits"] > 0
        engine.close()

    def test_count_only_stream_charges_only_multiplicities(self, tmp_path):
        """Words/counts residency split (the ROADMAP next-step).

        A count-heavy stream — batched counting over already-built masks —
        reads only the multiplicity vectors.  Budget the store below what
        whole-shard accounting would need: under the old scheme every load
        charged words + counts and would blow (or over-budget-load) this
        budget; with the split the stream stays within it and never makes
        a word block resident.
        """
        # High-cardinality schema so the word blocks dwarf the counts
        # (Σ c_i rows per word column vs a fixed 64 counts per word), and
        # every row duplicated so the dataset is non-uniform.
        base = random_categorical_dataset(1500, (120, 80, 40, 16), seed=3, skew=0.4)
        from repro.data.dataset import Dataset

        dataset = Dataset(base.schema, np.vstack([base.rows, base.rows]))
        probe = ShardedEngine(dataset, shards=4, spill_dir=str(tmp_path))
        store = probe.store
        counts_bytes = sum(
            np.load(os.path.join(probe.spill_path, entry["counts_file"])).nbytes
            for entry in store.manifest["shards"]
        )
        min_full_shard = min(
            store.shard_nbytes(shard_id) for shard_id in range(store.shard_count)
        )
        # All multiplicity vectors fit; no single whole shard would have.
        budget = counts_bytes
        assert budget < min_full_shard
        engine = ShardedEngine.attach(
            dataset, probe.spill_path, max_resident_bytes=budget, mask_cache_size=0
        )
        masks = [engine.full_mask()]
        rng = np.random.default_rng(7)
        for _ in range(6):
            mask = engine.full_mask()
            mask &= rng.integers(0, 2**63, size=mask.shape, dtype=np.uint64)
            masks.append(mask)
        for _ in range(3):
            engine.count_many(masks)
            for mask in masks:
                engine.count(mask)
        stats = engine.store.stats()
        assert stats["words_loads"] == 0
        assert stats["resident_words_bytes"] == 0
        assert stats["peak_resident_bytes"] <= budget
        assert stats["over_budget_loads"] == 0
        # The split is observable through the engine's cache_info too.
        assert engine.cache_info()["store"]["counts_loads"] > 0
        engine.close()
        probe.close()

    def test_budget_requires_spill_dir(self, dataset):
        with pytest.raises(ReproError, match="requires the out-of-core mode"):
            ShardedEngine(dataset, shards=2, max_resident_bytes=1024)

    def test_bad_budget_rejected(self, dataset, tmp_path):
        with pytest.raises(ReproError, match="max_resident_bytes"):
            ShardedEngine(
                dataset, shards=2, spill_dir=str(tmp_path), max_resident_bytes=0
            )


class TestProcessFanOut:
    def test_process_results_match_serial(self, dataset, patterns, tmp_path):
        serial = ShardedEngine(dataset, shards=3)
        pooled = ShardedEngine(
            dataset,
            shards=3,
            workers=2,
            workers_mode="process",
            spill_dir=str(tmp_path),
        )
        try:
            assert pooled.effective_workers_mode == "process"
            assert list(pooled.coverage_many(patterns)) == list(
                serial.coverage_many(patterns)
            )
            for pattern in patterns:
                assert pooled.coverage(pattern) == serial.coverage(pattern)
            family = pooled.restrict_children(pooled.full_mask(), 1)
            expected = serial.restrict_children(serial.full_mask(), 1)
            for child, reference in zip(family, expected):
                assert np.array_equal(
                    pooled.mask_to_bool(child), serial.mask_to_bool(reference)
                )
        finally:
            pooled.close()
            serial.close()

    def test_falls_back_to_threads_without_fork(
        self, dataset, patterns, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(sharded_module, "_fork_available", lambda: False)
        engine = ShardedEngine(
            dataset,
            shards=3,
            workers=2,
            workers_mode="process",
            spill_dir=str(tmp_path),
        )
        try:
            assert engine.effective_workers_mode == "thread"
            serial = ShardedEngine(dataset, shards=3)
            assert list(engine.coverage_many(patterns)) == list(
                serial.coverage_many(patterns)
            )
        finally:
            engine.close()

    def test_process_mode_requires_spill_dir(self, dataset):
        with pytest.raises(ReproError, match="out-of-core"):
            ShardedEngine(dataset, shards=2, workers=2, workers_mode="process")

    def test_process_mode_requires_a_real_pool(self, dataset, tmp_path):
        for workers in (None, 1):
            with pytest.raises(ReproError, match="requires workers"):
                ShardedEngine(
                    dataset,
                    shards=2,
                    workers=workers,
                    workers_mode="process",
                    spill_dir=str(tmp_path),
                )
        # Nothing was spilled by the rejected constructions.
        assert spill_dirs(tmp_path) == []

    def test_workers_mode_validated(self, dataset, tmp_path):
        with pytest.raises(ReproError, match="workers_mode"):
            ShardedEngine(
                dataset, shards=2, spill_dir=str(tmp_path), workers_mode="mpi"
            )

    def test_run_shard_op_kernels_in_process(self, dataset, tmp_path):
        """The pool entry point, exercised in-process for determinism."""
        engine = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        serial = ShardedEngine(dataset, shards=2)
        path = engine.spill_path
        shard = engine.shard_infos[0]
        window = slice(shard.word_start, shard.word_stop)
        mask = engine.match_mask(Pattern.of(1, X, X))
        partial = run_shard_op((path, 0, "count", mask[window]))
        other = run_shard_op(
            (path, 1, "count", mask[engine.shard_infos[1].word_start :])
        )
        assert partial + other == serial.coverage(Pattern.of(1, X, X))
        matrix = np.stack([mask, engine.full_mask()])
        rows = run_shard_op((path, 0, "count_rows", matrix[:, window]))
        assert rows.shape == (2,)
        matched = run_shard_op((path, 0, "match", (engine.full_mask()[window], [0])))
        assert matched.shape == (shard.word_stop - shard.word_start,)
        family = run_shard_op((path, 0, "children", (mask[window], 0, 3)))
        assert family.shape[0] == 3
        with pytest.raises(EngineError, match="unknown shard op"):
            run_shard_op((path, 0, "transmogrify", None))
        engine.close()


class TestResolutionAndTemplates:
    def test_resolve_engine_forwards_out_of_core_options(self, dataset, tmp_path):
        engine = resolve_engine(
            "sharded",
            dataset,
            shards=3,
            spill_dir=str(tmp_path),
            max_resident_bytes=1 << 16,
            workers_mode="thread",
        )
        assert isinstance(engine, ShardedEngine)
        assert engine.out_of_core
        assert engine.max_resident_bytes == 1 << 16
        engine.close()

    def test_template_carries_workers_mode(self, dataset, tmp_path):
        engine = ShardedEngine(
            dataset,
            shards=3,
            workers=2,
            workers_mode="process",
            spill_dir=str(tmp_path),
        )
        options = engine._template_options()
        assert options["workers_mode"] == "process"
        assert options["spill_dir"] == str(tmp_path)
        engine.close()

    def test_in_memory_template_has_no_spill(self, dataset):
        engine = ShardedEngine(dataset, shards=3)
        options = engine._template_options()
        assert options["spill_dir"] is None
        assert options["max_resident_bytes"] is None

    def test_attach_validation_failure_releases_store(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        with pytest.raises(ReproError, match="worker count"):
            ShardedEngine.attach(dataset, owner.spill_path, workers=0)
        # The spill directory stays intact and attachable afterwards.
        attached = ShardedEngine.attach(dataset, owner.spill_path)
        assert attached.coverage(Pattern.root(3)) == dataset.n
        attached.close()
        owner.close()

    def test_attach_spill_root_is_parent(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        attached = ShardedEngine.attach(dataset, owner.spill_path)
        rebuilt = attached.template()(dataset)
        # An attached engine's template spills siblings of the original.
        assert os.path.dirname(rebuilt.spill_path) == str(tmp_path)
        rebuilt.close()
        attached.close()
        owner.close()


class TestStoreUnit:
    def test_weighted_count_empty_window(self):
        assert weighted_count(np.zeros(0, dtype=np.uint64), None) == 0

    def test_store_open_missing_directory(self, tmp_path):
        with pytest.raises(EngineError, match="not a shard store"):
            MmapShardStore.open(str(tmp_path / "nope"))

    def test_store_close_is_idempotent(self, dataset, tmp_path):
        engine = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        store = engine.store
        engine.close()
        store.close()
        assert store.closed

    def test_store_layout_accessors(self, dataset, tmp_path):
        engine = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        store = engine.store
        assert store.shard_count == 2
        assert store.total_words == sum(
            info.word_stop - info.word_start for info in engine.shard_infos
        )
        assert store.row_offsets == [0, 3, 6, 8]  # cumulative cardinalities
        assert store.uniform is False  # n=80 over 18 combos: duplicates
        # index_nbytes counts membership words only (same basis as the
        # in-memory engines); data_nbytes adds the spilled multiplicities.
        assert engine.index_nbytes == store.words_nbytes
        assert store.data_nbytes > store.words_nbytes
        engine.close()

    def test_missing_shard_file_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        path = owner.spill_path
        os.remove(os.path.join(path, "shard_0002.words.npy"))
        with pytest.raises(EngineError, match="missing shard file"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_unparseable_manifest_raises(self, dataset, tmp_path):
        owner = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        path = owner.spill_path
        with open(os.path.join(path, "manifest.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(EngineError, match="unreadable shard-store manifest"):
            ShardedEngine.attach(dataset, path)
        owner.close()

    def test_writer_rejects_shards_after_finish(self, dataset, tmp_path):
        writer = ShardStoreWriter(
            tmp_path / "store",
            cardinalities=dataset.cardinalities,
            uniform=True,
            dataset_meta={},
        )
        block = np.zeros((sum(dataset.cardinalities), 1), dtype=np.uint64)
        writer.add_shard(block, None, unique_start=0, unique_stop=1, row_count=1)
        store = writer.finish(owns_files=True)
        with pytest.raises(EngineError, match="already finished"):
            writer.add_shard(
                block, None, unique_start=1, unique_stop=2, row_count=1
            )
        with pytest.raises(EngineError, match="already finished"):
            writer.finish()
        store.close()

    def test_writer_rejects_bad_block_shape(self, dataset, tmp_path):
        writer = ShardStoreWriter(
            tmp_path / "store",
            cardinalities=dataset.cardinalities,
            uniform=False,
            dataset_meta={},
        )
        with pytest.raises(EngineError, match="shard block"):
            writer.add_shard(
                np.zeros((2, 1), dtype=np.uint64),
                np.zeros(64, dtype=np.int64),
                unique_start=0,
                unique_stop=1,
                row_count=1,
            )
        with pytest.raises(EngineError, match="requires shard counts"):
            writer.add_shard(
                np.zeros((sum(dataset.cardinalities), 1), dtype=np.uint64),
                None,
                unique_start=0,
                unique_stop=1,
                row_count=1,
            )
