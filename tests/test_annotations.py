"""Guard: every public annotation in the package must resolve.

``from __future__ import annotations`` defers evaluation, so a missing
typing import only surfaces when somebody calls ``typing.get_type_hints``
(dataclasses, IDEs, doc tooling).  This test calls it for every function
and method in the package.
"""

import importlib
import inspect
import pkgutil
import typing

import repro


def _walk():
    yield repro
    for mod_info in pkgutil.walk_packages(repro.__path__, "repro."):
        if mod_info.name.endswith("__main__"):
            continue
        yield importlib.import_module(mod_info.name)


def test_all_annotations_resolve():
    failures = []
    for module in _walk():
        for name, obj in vars(module).items():
            if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                try:
                    typing.get_type_hints(obj)
                except Exception as error:  # noqa: BLE001 - reporting all
                    failures.append(f"{module.__name__}.{name}: {error}")
            elif inspect.isclass(obj) and obj.__module__ == module.__name__:
                for method_name, method in vars(obj).items():
                    if inspect.isfunction(method):
                        try:
                            typing.get_type_hints(method)
                        except Exception as error:  # noqa: BLE001
                            failures.append(
                                f"{module.__name__}.{name}.{method_name}: {error}"
                            )
    assert not failures, "\n".join(sorted(set(failures)))
