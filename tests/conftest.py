"""Shared fixtures: the paper's running examples and small random data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pattern import Pattern, parse_patterns
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset


@pytest.fixture
def example1_dataset() -> Dataset:
    """Example 1 (§III-A): three binary attributes, five tuples.

    With τ = 1 the only MUP is ``1XX`` (plus eight dominated uncovered
    patterns the naive algorithm must filter out).
    """
    return Dataset.from_strings(
        ["010", "001", "000", "011", "001"],
        schema=Schema.binary(3),
    )


@pytest.fixture
def example2_space() -> PatternSpace:
    """Example 2 (§IV): five attributes, A2 and A3 ternary, others binary."""
    return PatternSpace([2, 3, 3, 2, 2])


@pytest.fixture
def example2_mups():
    """The MUPs of Example 2 (Figure 8), P1..P7 in paper order."""
    return parse_patterns(
        ["XX01X", "1X20X", "XXXX1", "02XXX", "XX11X", "111XX", "X020X"]
    )


@pytest.fixture
def example2_level2_targets(example2_mups):
    """The paper's M_λ for λ = 2: P1 to P6 (P7 has level 3)."""
    return list(example2_mups[:6])


def make_random_dataset(
    seed: int, n: int = 40, cardinalities=(2, 3, 2), skew: float = 0.8
) -> Dataset:
    """Small seeded dataset for brute-force cross-checks."""
    return random_categorical_dataset(n, cardinalities, seed=seed, skew=skew)


@pytest.fixture
def random_dataset_factory():
    return make_random_dataset
