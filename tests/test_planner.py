"""The workload-aware auto planner: escalation ladder and constraints.

Plans are deterministic functions of ``(WorkloadStats, requested
EngineConfig)``; these tests pin the escalation boundaries — dense →
packed → sharded(+workers) → out-of-core — and that explicitly requested
knobs act as constraints, including the acceptance pin that a projected
packed index above the memory budget selects the out-of-core mode.
"""

import pytest

from repro.core.engine import (
    AUTO,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    WorkloadStats,
    available_memory_bytes,
    plan_engine,
    resolve_engine,
)
from repro.core.engine.planner import (
    DENSE_MAX_INDEX_BYTES,
    PACKED_MAX_INDEX_BYTES,
    SHARD_TARGET_BYTES,
)
from repro.core.mups.base import find_mups
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError


def stats_for(
    packed_bytes,
    dense_bytes=None,
    unique=1 << 20,
    budget=1 << 30,
    cpus=1,
    rows=1 << 20,
):
    """A hand-rolled stats snapshot with the projections under test."""
    return WorkloadStats(
        rows=rows,
        d=3,
        cardinalities=(4, 4, 4),
        projected_unique=unique,
        projected_packed_bytes=packed_bytes,
        projected_dense_bytes=(
            dense_bytes if dense_bytes is not None else packed_bytes * 8
        ),
        memory_budget_bytes=budget,
        cpu_count=cpus,
    )


class TestEscalation:
    def test_tiny_index_plans_dense(self):
        plan = plan_engine(stats_for(64, dense_bytes=512))
        assert plan.config == EngineConfig(backend="dense")
        assert any("dense" in line for line in plan.rationale)

    def test_mid_size_index_plans_packed(self):
        plan = plan_engine(
            stats_for(1 << 20, dense_bytes=DENSE_MAX_INDEX_BYTES + 1)
        )
        assert plan.config == EngineConfig(backend="packed")

    def test_large_index_plans_sharded(self):
        plan = plan_engine(stats_for(PACKED_MAX_INDEX_BYTES + 1))
        assert plan.config.backend == "sharded"
        assert plan.config.spill_dir is None
        # Shards sized near the per-shard target.
        assert plan.config.shards >= (
            (PACKED_MAX_INDEX_BYTES + 1) // SHARD_TARGET_BYTES
        )

    def test_index_over_budget_plans_out_of_core(self):
        """Acceptance pin: projected packed bytes > memory budget selects
        the out-of-core mode with the budget as the resident ceiling."""
        budget = 16 << 20
        plan = plan_engine(stats_for(1 << 30, budget=budget))
        config = plan.config
        assert config.backend == "sharded"
        assert config.spill_dir is not None
        assert config.max_resident_bytes == budget
        assert any("out-of-core" in line for line in plan.rationale)

    def test_requested_budget_overrides_probed_memory(self):
        requested = EngineConfig(backend=AUTO, max_resident_bytes=128)
        plan = plan_engine(stats_for(1 << 20, budget=1 << 40), requested)
        assert plan.stats.memory_budget_bytes == 128
        assert plan.config.max_resident_bytes == 128
        assert plan.config.spill_dir is not None

    def test_workers_planned_on_multicore_large_indices(self):
        plan = plan_engine(
            stats_for(PACKED_MAX_INDEX_BYTES * 4, cpus=8)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.workers is not None and plan.config.workers >= 2

    def test_serial_on_single_core(self):
        plan = plan_engine(stats_for(PACKED_MAX_INDEX_BYTES * 4, cpus=1))
        assert plan.config.workers is None


class TestConstraints:
    def test_explicit_shards_force_sharded(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64), EngineConfig(backend=AUTO, shards=3)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.shards == 3

    def test_explicit_workers_force_sharded(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64), EngineConfig(backend=AUTO, workers=2)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.workers == 2

    def test_explicit_spill_dir_forces_out_of_core(self, tmp_path):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, spill_dir=str(tmp_path)),
        )
        assert plan.config.backend == "sharded"
        assert plan.config.spill_dir == str(tmp_path)
        # Budget stays unlimited: the index fits, spill was a choice.
        assert plan.config.max_resident_bytes is None

    def test_process_mode_forces_out_of_core(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, workers=2, workers_mode="process"),
        )
        assert plan.config.workers_mode == "process"
        assert plan.config.spill_dir is not None

    def test_mask_cache_size_passes_through(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, mask_cache_size=0),
        )
        assert plan.config.mask_cache_size == 0

    def test_hand_picked_backend_short_circuits(self):
        plan = plan_engine(stats_for(1 << 40), EngineConfig(backend="dense"))
        assert plan.config == EngineConfig(backend="dense")
        assert "hand-picked" in plan.rationale[0]


class TestStatsCollection:
    def test_projected_unique_capped_by_rows_and_combinations(self):
        small_space = random_categorical_dataset(500, (2, 2), seed=1, skew=1.0)
        stats = WorkloadStats.of(small_space)
        assert stats.projected_unique == 4  # Π c_i < n
        sparse = random_categorical_dataset(10, (9, 9, 9), seed=1, skew=1.0)
        stats = WorkloadStats.of(sparse)
        assert stats.projected_unique == 10  # n < Π c_i

    def test_projections_follow_the_packed_layout(self):
        dataset = random_categorical_dataset(200, (3, 3, 2), seed=2, skew=1.0)
        stats = WorkloadStats.of(dataset)
        words = (stats.projected_unique + 63) // 64
        assert stats.projected_packed_bytes == sum((3, 3, 2)) * words * 8
        assert stats.projected_dense_bytes == sum((3, 3, 2)) * stats.projected_unique

    def test_default_budget_comes_from_available_memory(self):
        dataset = random_categorical_dataset(20, (2, 2), seed=2, skew=1.0)
        stats = WorkloadStats.of(dataset)
        assert 0 < stats.memory_budget_bytes <= available_memory_bytes()

    def test_memory_probe_never_raises(self):
        assert available_memory_bytes() >= 1

    def test_memory_probe_fallbacks(self, monkeypatch):
        import builtins

        import repro.core.engine.planner as planner

        real_open = builtins.open

        def no_meminfo(path, *args, **kwargs):
            if path == "/proc/meminfo":
                raise OSError("no procfs")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_meminfo)
        # sysconf path (total physical memory) still answers...
        assert available_memory_bytes() >= 1
        # ...and with sysconf gone too, the constant fallback holds.
        monkeypatch.setattr(
            planner.os, "sysconf", lambda name: (_ for _ in ()).throw(ValueError())
        )
        assert available_memory_bytes() == planner.FALLBACK_MEMORY_BYTES

    def test_bad_stats_rejected(self):
        with pytest.raises(EngineError, match="rows"):
            stats_for(64, rows=-1)
        with pytest.raises(EngineError, match="memory budget"):
            stats_for(64, budget=0)


class TestEndToEnd:
    def test_auto_resolves_and_matches_packed(self):
        dataset = random_categorical_dataset(80, (3, 3, 2), seed=7, skew=0.8)
        auto = find_mups(dataset, threshold=4, engine=AUTO)
        packed = find_mups(dataset, threshold=4, engine="packed")
        assert auto.as_set() == packed.as_set()

    def test_auto_under_budget_builds_out_of_core_engine(self, tmp_path):
        dataset = random_categorical_dataset(80, (3, 3, 2), seed=7, skew=0.8)
        config = EngineConfig(
            backend=AUTO, spill_dir=str(tmp_path), max_resident_bytes=16
        )
        engine = resolve_engine(config, dataset)
        try:
            assert isinstance(engine, ShardedEngine)
            assert engine.out_of_core
            assert engine.max_resident_bytes == 16
            reference = PackedBitsetEngine(dataset)
            from repro.core.pattern import Pattern

            root = Pattern.root(dataset.d)
            assert engine.coverage(root) == reference.coverage(root)
        finally:
            engine.close()

    def test_plan_build_helper(self):
        dataset = random_categorical_dataset(30, (2, 2, 2), seed=7, skew=1.0)
        plan = plan_engine(dataset)
        engine = plan.build(dataset)
        assert isinstance(engine, DenseBoolEngine)

    def test_describe_renders_stats_and_rationale(self):
        plan = plan_engine(stats_for(1 << 30, budget=16 << 20))
        text = plan.describe()
        assert "engine plan: backend=sharded" in text
        assert "memory budget" in text
        assert "out-of-core" in text
