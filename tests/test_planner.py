"""The workload-aware auto planner: escalation ladder and constraints.

Plans are deterministic functions of ``(WorkloadStats, requested
EngineConfig)``; these tests pin the escalation boundaries — dense →
packed → sharded(+workers) → out-of-core — and that explicitly requested
knobs act as constraints, including the acceptance pin that a projected
packed index above the memory budget selects the out-of-core mode.
"""

import pytest

from repro.core.engine import (
    AUTO,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    WorkloadStats,
    available_memory_bytes,
    invalidate_stats_cache,
    numba_available,
    plan_engine,
    resolve_engine,
    set_available_memory_bytes,
    stats_cache_info,
)
from repro.core.engine.kernels import REPRO_KERNELS_ENV
from repro.core.engine.planner import (
    BATCH_LATENCY_TARGET_SECONDS,
    DENSE_MAX_INDEX_BYTES,
    JIT_SCAN_SPEEDUP,
    PACKED_MAX_INDEX_BYTES,
    SHARD_TARGET_BYTES,
    _single_index_ceiling,
)
from repro.core.mups.base import find_mups
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError


@pytest.fixture(autouse=True)
def _pin_python_kernels(monkeypatch):
    """Deterministic boundaries whether or not numba is installed.

    The escalation pins in this module assume the point/python corner of
    the cost model (where the ceiling equals ``PACKED_MAX_INDEX_BYTES``);
    tier-specific tests override the environment themselves.
    """
    monkeypatch.setenv(REPRO_KERNELS_ENV, "python")
    invalidate_stats_cache()
    yield
    invalidate_stats_cache()


def stats_for(
    packed_bytes,
    dense_bytes=None,
    unique=1 << 20,
    budget=1 << 30,
    cpus=1,
    rows=1 << 20,
):
    """A hand-rolled stats snapshot with the projections under test."""
    return WorkloadStats(
        rows=rows,
        d=3,
        cardinalities=(4, 4, 4),
        projected_unique=unique,
        projected_packed_bytes=packed_bytes,
        projected_dense_bytes=(
            dense_bytes if dense_bytes is not None else packed_bytes * 8
        ),
        memory_budget_bytes=budget,
        cpu_count=cpus,
    )


class TestEscalation:
    def test_tiny_index_plans_dense(self):
        plan = plan_engine(stats_for(64, dense_bytes=512))
        assert plan.config == EngineConfig(backend="dense")
        assert any("dense" in line for line in plan.rationale)

    def test_mid_size_index_plans_packed(self):
        plan = plan_engine(
            stats_for(1 << 20, dense_bytes=DENSE_MAX_INDEX_BYTES + 1)
        )
        assert plan.config == EngineConfig(backend="packed")

    def test_large_index_plans_sharded(self):
        plan = plan_engine(stats_for(PACKED_MAX_INDEX_BYTES + 1))
        assert plan.config.backend == "sharded"
        assert plan.config.spill_dir is None
        # Shards sized near the per-shard target.
        assert plan.config.shards >= (
            (PACKED_MAX_INDEX_BYTES + 1) // SHARD_TARGET_BYTES
        )

    def test_index_over_budget_plans_out_of_core(self):
        """Acceptance pin: projected packed bytes > memory budget selects
        the out-of-core mode with the budget as the resident ceiling."""
        budget = 16 << 20
        plan = plan_engine(stats_for(1 << 30, budget=budget))
        config = plan.config
        assert config.backend == "sharded"
        assert config.spill_dir is not None
        assert config.max_resident_bytes == budget
        assert any("out-of-core" in line for line in plan.rationale)

    def test_requested_budget_overrides_probed_memory(self):
        requested = EngineConfig(backend=AUTO, max_resident_bytes=128)
        plan = plan_engine(stats_for(1 << 20, budget=1 << 40), requested)
        assert plan.stats.memory_budget_bytes == 128
        assert plan.config.max_resident_bytes == 128
        assert plan.config.spill_dir is not None

    def test_workers_planned_on_multicore_large_indices(self):
        plan = plan_engine(
            stats_for(PACKED_MAX_INDEX_BYTES * 4, cpus=8)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.workers is not None and plan.config.workers >= 2

    def test_serial_on_single_core(self):
        plan = plan_engine(stats_for(PACKED_MAX_INDEX_BYTES * 4, cpus=1))
        assert plan.config.workers is None


class TestConstraints:
    def test_explicit_shards_force_sharded(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64), EngineConfig(backend=AUTO, shards=3)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.shards == 3

    def test_explicit_workers_force_sharded(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64), EngineConfig(backend=AUTO, workers=2)
        )
        assert plan.config.backend == "sharded"
        assert plan.config.workers == 2

    def test_explicit_spill_dir_forces_out_of_core(self, tmp_path):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, spill_dir=str(tmp_path)),
        )
        assert plan.config.backend == "sharded"
        assert plan.config.spill_dir == str(tmp_path)
        # Budget stays unlimited: the index fits, spill was a choice.
        assert plan.config.max_resident_bytes is None

    def test_process_mode_forces_out_of_core(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, workers=2, workers_mode="process"),
        )
        assert plan.config.workers_mode == "process"
        assert plan.config.spill_dir is not None

    def test_mask_cache_size_passes_through(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, mask_cache_size=0),
        )
        assert plan.config.mask_cache_size == 0

    def test_hand_picked_backend_short_circuits(self):
        plan = plan_engine(stats_for(1 << 40), EngineConfig(backend="dense"))
        assert plan.config == EngineConfig(backend="dense")
        assert "hand-picked" in plan.rationale[0]


class TestStatsCollection:
    def test_projected_unique_capped_by_rows_and_combinations(self):
        small_space = random_categorical_dataset(500, (2, 2), seed=1, skew=1.0)
        stats = WorkloadStats.of(small_space)
        assert stats.projected_unique == 4  # Π c_i < n
        sparse = random_categorical_dataset(10, (9, 9, 9), seed=1, skew=1.0)
        stats = WorkloadStats.of(sparse)
        assert stats.projected_unique == 10  # n < Π c_i

    def test_projections_follow_the_packed_layout(self):
        dataset = random_categorical_dataset(200, (3, 3, 2), seed=2, skew=1.0)
        stats = WorkloadStats.of(dataset)
        words = (stats.projected_unique + 63) // 64
        assert stats.projected_packed_bytes == sum((3, 3, 2)) * words * 8
        assert stats.projected_dense_bytes == sum((3, 3, 2)) * stats.projected_unique

    def test_default_budget_comes_from_available_memory(self):
        dataset = random_categorical_dataset(20, (2, 2), seed=2, skew=1.0)
        stats = WorkloadStats.of(dataset)
        assert 0 < stats.memory_budget_bytes <= available_memory_bytes()

    def test_memory_probe_never_raises(self):
        assert available_memory_bytes() >= 1

    def test_memory_probe_fallbacks(self, monkeypatch):
        import builtins

        import repro.core.engine.planner as planner

        real_open = builtins.open

        def no_meminfo(path, *args, **kwargs):
            if path == "/proc/meminfo":
                raise OSError("no procfs")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_meminfo)
        # sysconf path (total physical memory) still answers...
        assert planner._probe_available_memory() >= 1
        # ...and with sysconf gone too, the constant fallback holds.
        monkeypatch.setattr(
            planner.os, "sysconf", lambda name: (_ for _ in ()).throw(ValueError())
        )
        assert planner._probe_available_memory() == planner.FALLBACK_MEMORY_BYTES

    def test_memory_probe_cached_per_process(self, monkeypatch):
        import repro.core.engine.planner as planner

        first = available_memory_bytes()
        # With the probe gone entirely, the cached value still answers —
        # the probe ran at most once per process.
        monkeypatch.setattr(
            planner,
            "_probe_available_memory",
            lambda: (_ for _ in ()).throw(AssertionError("re-probed")),
        )
        assert available_memory_bytes() == first

    def test_memory_override_hook(self):
        try:
            set_available_memory_bytes(1 << 20)
            assert available_memory_bytes() == 1 << 20
            with pytest.raises(EngineError, match="override"):
                set_available_memory_bytes(0)
        finally:
            set_available_memory_bytes(None)
        assert available_memory_bytes() >= 1

    def test_memory_override_reaches_the_budget(self):
        dataset = random_categorical_dataset(20, (2, 2), seed=3, skew=1.0)
        try:
            set_available_memory_bytes(1 << 20)
            stats = WorkloadStats.of(dataset)
            assert stats.memory_budget_bytes <= 1 << 20
        finally:
            set_available_memory_bytes(None)

    def test_bad_stats_rejected(self):
        with pytest.raises(EngineError, match="rows"):
            stats_for(64, rows=-1)
        with pytest.raises(EngineError, match="memory budget"):
            stats_for(64, budget=0)


class TestCostModel:
    def test_point_python_corner_preserves_legacy_boundary(self):
        assert _single_index_ceiling("point", "python") == PACKED_MAX_INDEX_BYTES

    def test_batch_and_jit_each_raise_the_ceiling(self):
        point_py = _single_index_ceiling("point", "python")
        assert _single_index_ceiling("batch", "python") > point_py
        assert _single_index_ceiling("point", "jit") > point_py
        assert _single_index_ceiling("batch", "jit") > max(
            _single_index_ceiling("batch", "python"),
            _single_index_ceiling("point", "jit"),
        )
        assert JIT_SCAN_SPEEDUP > 1.0
        assert BATCH_LATENCY_TARGET_SECONDS > 0

    def test_shapes_plan_differently_on_the_same_stats(self):
        """Acceptance pin: the same workload, queried point-wise vs in
        level sweeps, crosses the packed->sharded boundary differently."""
        stats = stats_for(PACKED_MAX_INDEX_BYTES + 1)
        point = plan_engine(stats, query_shape="point")
        batch = plan_engine(stats, query_shape="batch")
        assert point.config.backend == "sharded"
        assert batch.config.backend == "packed"
        assert any("point-heavy" in line for line in point.rationale)
        assert any("batch-heavy" in line for line in batch.rationale)

    def test_algorithm_shapes_reach_describe(self):
        """deepdiver (point) and apriori (batch) rationales differ on the
        same dataset."""
        from repro.core.mups.base import algorithm_query_shape

        assert algorithm_query_shape("deepdiver") == "point"
        assert algorithm_query_shape("apriori") == "batch"
        dataset = random_categorical_dataset(80, (3, 3, 2), seed=7, skew=0.8)
        point = plan_engine(
            dataset, query_shape=algorithm_query_shape("deepdiver")
        )
        batch = plan_engine(
            dataset, query_shape=algorithm_query_shape("apriori")
        )
        assert "query shape 'point'" in point.describe()
        assert "query shape 'batch'" in batch.describe()
        assert point.describe() != batch.describe()

    def test_describe_renders_the_cost_model(self):
        text = plan_engine(stats_for(1 << 20)).describe()
        assert "cost model:" in text
        assert "single-index ceiling" in text

    def test_invalid_shape_rejected(self):
        with pytest.raises(EngineError, match="query_shape"):
            plan_engine(stats_for(64), query_shape="diagonal")

    def test_jit_request_without_numba_is_refused(self):
        if numba_available():
            pytest.skip("numba installed; forced-jit refusal unreachable")
        with pytest.raises(EngineError, match="jit"):
            plan_engine(
                stats_for(64), EngineConfig(backend=AUTO, kernel_tier="jit")
            )

    def test_plan_never_assumes_an_unavailable_tier(self):
        plan = plan_engine(stats_for(1 << 20))
        assert plan.stats.kernel_tier in ("jit", "python")
        if not numba_available():
            assert plan.stats.kernel_tier == "python"

    def test_planned_config_carries_requested_tier_verbatim(self):
        plan = plan_engine(
            stats_for(64, dense_bytes=64),
            EngineConfig(backend=AUTO, kernel_tier="python"),
        )
        assert plan.config.backend == "dense"
        assert plan.config.kernel_tier == "python"
        # ...and an unset tier stays unset, so planned configs stay
        # portable across machines with different tiers available.
        assert plan_engine(stats_for(64, dense_bytes=64)).config.kernel_tier is None


class TestStatsMemoization:
    def test_stats_of_memoizes_per_fingerprint(self):
        dataset = random_categorical_dataset(50, (3, 2), seed=5, skew=1.0)
        before = stats_cache_info()
        first = WorkloadStats.of(dataset)
        second = WorkloadStats.of(dataset)
        after = stats_cache_info()
        assert first is second
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1
        assert after["entries"] >= 1

    def test_distinct_budgets_are_distinct_entries(self):
        dataset = random_categorical_dataset(50, (3, 2), seed=5, skew=1.0)
        a = WorkloadStats.of(dataset, memory_budget=1 << 20)
        b = WorkloadStats.of(dataset, memory_budget=1 << 21)
        assert a is not b
        assert a.memory_budget_bytes != b.memory_budget_bytes

    def test_invalidate_by_fingerprint_is_selective(self):
        import repro.core.engine.planner as planner

        one = random_categorical_dataset(50, (3, 2), seed=5, skew=1.0)
        other = random_categorical_dataset(60, (2, 2, 2), seed=6, skew=1.0)
        WorkloadStats.of(one)
        WorkloadStats.of(other)
        invalidate_stats_cache(one.content_fingerprint())
        remaining = {key[0] for key in planner._STATS_CACHE}
        assert one.content_fingerprint() not in remaining
        assert other.content_fingerprint() in remaining

    def test_incremental_delivery_invalidates(self):
        import repro.core.engine.planner as planner
        from repro.core.incremental import IncrementalMupIndex

        dataset = random_categorical_dataset(30, (2, 2), seed=9, skew=1.0)
        fingerprint = dataset.content_fingerprint()
        index = IncrementalMupIndex(dataset, threshold=2, engine=AUTO)
        assert any(key[0] == fingerprint for key in planner._STATS_CACHE)
        index.add_rows([[0, 1]])
        # The pre-delivery snapshot is stale the moment rows land.
        assert all(key[0] != fingerprint for key in planner._STATS_CACHE)


class TestEndToEnd:
    def test_auto_resolves_and_matches_packed(self):
        dataset = random_categorical_dataset(80, (3, 3, 2), seed=7, skew=0.8)
        auto = find_mups(dataset, threshold=4, engine=AUTO)
        packed = find_mups(dataset, threshold=4, engine="packed")
        assert auto.as_set() == packed.as_set()

    def test_auto_under_budget_builds_out_of_core_engine(self, tmp_path):
        dataset = random_categorical_dataset(80, (3, 3, 2), seed=7, skew=0.8)
        config = EngineConfig(
            backend=AUTO, spill_dir=str(tmp_path), max_resident_bytes=16
        )
        engine = resolve_engine(config, dataset)
        try:
            assert isinstance(engine, ShardedEngine)
            assert engine.out_of_core
            assert engine.max_resident_bytes == 16
            reference = PackedBitsetEngine(dataset)
            from repro.core.pattern import Pattern

            root = Pattern.root(dataset.d)
            assert engine.coverage(root) == reference.coverage(root)
        finally:
            engine.close()

    def test_plan_build_helper(self):
        dataset = random_categorical_dataset(30, (2, 2, 2), seed=7, skew=1.0)
        plan = plan_engine(dataset)
        engine = plan.build(dataset)
        assert isinstance(engine, DenseBoolEngine)

    def test_describe_renders_stats_and_rationale(self):
        plan = plan_engine(stats_for(1 << 30, budget=16 << 20))
        text = plan.describe()
        assert "engine plan: backend=sharded" in text
        assert "memory budget" in text
        assert "out-of-core" in text


class TestStatsCacheBound:
    """Regression: the stats memo is LRU-bounded and thread-consistent.

    The memo used to be an unlocked, unbounded module dict: a long-lived
    server planning for many datasets grew it without limit, and
    concurrent ``WorkloadStats.of`` calls raced on insert, so callers
    could end up holding different snapshot instances for one dataset.
    """

    @staticmethod
    def _dataset(seed, n):
        from repro.data.synthetic import random_categorical_dataset

        # Distinct row counts guarantee distinct content fingerprints.
        return random_categorical_dataset(n, (2, 2), seed=seed, skew=1.0)

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        from repro.core.engine import planner

        invalidate_stats_cache()
        monkeypatch.setattr(planner, "STATS_CACHE_MAX_ENTRIES", 3)
        before = stats_cache_info()
        datasets = [self._dataset(seed, n=10 + seed) for seed in range(6)]
        snapshots = [WorkloadStats.of(ds) for ds in datasets]
        info = stats_cache_info()
        assert info["entries"] <= 3
        assert info["max_entries"] == 3
        assert info["misses"] - before["misses"] == 6
        assert info["evictions"] - before["evictions"] >= 3
        # The newest entries survived: re-requesting is a hit that returns
        # the memoized instance, not a rebuild.
        assert WorkloadStats.of(datasets[-1]) is snapshots[-1]
        after = stats_cache_info()
        assert after["hits"] == info["hits"] + 1
        # The oldest was evicted: re-requesting is a fresh miss.
        WorkloadStats.of(datasets[0])
        assert stats_cache_info()["misses"] == after["misses"] + 1

    def test_threaded_of_shares_one_snapshot(self):
        import threading

        invalidate_stats_cache()
        dataset = self._dataset(seed=99, n=40)
        before = stats_cache_info()
        n_threads, iterations = 8, 25
        barrier = threading.Barrier(n_threads)
        results = []

        def worker():
            barrier.wait()
            for _ in range(iterations):
                results.append(WorkloadStats.of(dataset))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Memoization promise: every caller shares the first-inserted
        # instance, even the threads that lost the insert race.
        assert len(results) == n_threads * iterations
        assert all(snapshot is results[0] for snapshot in results)
        info = stats_cache_info()
        # Counter accuracy under contention: each call is exactly one hit
        # or one miss, never both, never neither.
        assert (info["hits"] - before["hits"]) + (
            info["misses"] - before["misses"]
        ) == n_threads * iterations
        assert info["misses"] - before["misses"] >= 1
