"""Property-based equivalence of the coverage-engine backends (hypothesis).

The ``packed`` engine must be observationally identical to the ``dense``
reference on every query family — point coverage, mask threading, batched
frontier evaluation, and whole MUP identification runs.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.coverage import CoverageOracle
from repro.core.engine import DenseBoolEngine, PackedBitsetEngine, resolve_engine
from repro.core.mups.base import find_mups
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset, Schema


@st.composite
def datasets(draw, max_d: int = 4, max_card: int = 4, max_n: int = 40):
    d = draw(st.integers(min_value=1, max_value=max_d))
    cardinalities = draw(
        st.lists(st.integers(min_value=1, max_value=max_card), min_size=d, max_size=d)
    )
    n = draw(st.integers(min_value=0, max_value=max_n))
    rows = [
        [draw(st.integers(min_value=0, max_value=c - 1)) for c in cardinalities]
        for _ in range(n)
    ]
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    array = np.asarray(rows, dtype=np.int32).reshape(n, d)
    return Dataset(schema, array)


@st.composite
def dataset_and_patterns(draw, max_patterns: int = 8):
    dataset = draw(datasets())
    k = draw(st.integers(min_value=0, max_value=max_patterns))
    patterns = []
    for _ in range(k):
        values = [
            draw(st.sampled_from([X] + list(range(c))))
            for c in dataset.cardinalities
        ]
        patterns.append(Pattern(values))
    return dataset, patterns


def _engines(dataset):
    return DenseBoolEngine(dataset), PackedBitsetEngine(dataset)


@given(dataset_and_patterns())
def test_point_coverage_identical(case):
    dataset, patterns = case
    dense, packed = _engines(dataset)
    for pattern in patterns:
        assert dense.coverage(pattern) == packed.coverage(pattern)


@given(dataset_and_patterns())
def test_match_masks_select_same_rows(case):
    dataset, patterns = case
    dense, packed = _engines(dataset)
    for pattern in patterns:
        dense_bits = dense.mask_to_bool(dense.match_mask(pattern))
        packed_bits = packed.mask_to_bool(packed.match_mask(pattern))
        assert np.array_equal(dense_bits, packed_bits)


@given(dataset_and_patterns())
@settings(max_examples=40)
def test_coverage_many_matches_pointwise(case):
    dataset, patterns = case
    dense, packed = _engines(dataset)
    batched_dense = dense.coverage_many(patterns)
    batched_packed = packed.coverage_many(patterns)
    pointwise = [dense.coverage(p) for p in patterns]
    assert list(batched_dense) == pointwise
    assert list(batched_packed) == pointwise


@given(dataset_and_patterns())
@settings(max_examples=40)
def test_restrict_children_partitions_the_mask(case):
    dataset, patterns = case
    dense, packed = _engines(dataset)
    for pattern in patterns:
        free = pattern.nondeterministic_indices()
        if not free:
            continue
        attribute = free[0]
        for engine in (dense, packed):
            mask = engine.match_mask(pattern)
            family = engine.restrict_children(mask, attribute)
            assert len(family) == dataset.cardinalities[attribute]
            family_counts = engine.count_many(family)
            # The sibling family partitions the parent's matches.
            assert int(family_counts.sum()) == engine.count(mask)
            for value, child_mask in enumerate(family):
                direct = engine.restrict(mask, attribute, value)
                assert np.array_equal(
                    engine.mask_to_bool(child_mask), engine.mask_to_bool(direct)
                )


@given(datasets())
@settings(max_examples=40)
def test_mask_threading_identical_across_engines(dataset):
    dense_oracle = CoverageOracle(dataset, engine="dense")
    packed_oracle = CoverageOracle(dataset, engine="packed")
    space = PatternSpace.for_dataset(dataset)
    rng = np.random.default_rng(7)
    for _ in range(5):
        pattern = space.random_pattern(rng)
        for oracle in (dense_oracle, packed_oracle):
            mask = oracle.full_mask()
            for index in pattern.deterministic_indices():
                mask = oracle.restrict_mask(mask, index, pattern[index])
            assert oracle.coverage_of_mask(mask) == dense_oracle.coverage(pattern)


@given(datasets(max_d=3, max_card=3, max_n=25))
@settings(max_examples=25, deadline=None)
def test_mup_sets_identical_across_engines(dataset):
    for algorithm in ("naive", "apriori", "pattern_breaker", "deepdiver"):
        dense_result = find_mups(
            dataset, threshold=2, algorithm=algorithm, engine="dense"
        )
        packed_result = find_mups(
            dataset, threshold=2, algorithm=algorithm, engine="packed"
        )
        assert dense_result.as_set() == packed_result.as_set()


@given(datasets())
@settings(max_examples=30)
def test_packed_index_is_smaller(dataset):
    dense, packed = _engines(dataset)
    if dense.unique_count > 8:
        assert packed.index_nbytes < dense.index_nbytes
    # resolve_engine round-trips names, classes, and instances.
    assert resolve_engine("packed", dataset).name == "packed"
    assert resolve_engine(PackedBitsetEngine, dataset).name == "packed"
    assert resolve_engine(packed, dataset) is packed
    assert resolve_engine(None, dataset).name == "dense"
