"""Property suite pinning the amortized threshold sweep.

Three families of guarantees:

* **Equivalence** — ``sweep_mups(...).mups_at(τ)`` is bit-identical to an
  independent ``find_mups`` run at every τ in the swept range, on every
  coverage-engine backend (dense / packed / compressed / auto), over
  scenario-generated datasets (zipf marginals, latent-factor correlation,
  planted MUPs with known ground truth);
* **Monotonicity** — as τ grows the uncovered space only grows, so every
  MUP at a smaller τ is dominated-by-or-equal-to some MUP at any larger τ
  (the frontier nests upward);
* **Breakpoints** — each frontier pattern's τ* interval endpoints are
  exact: the pattern is a MUP at ``appears_at`` and ``disappears_above``
  and not a MUP just outside them.

The normal-suite legs run a fixed-seed (derandomized) profile; the
``-m slow`` job layers a deeper randomized sweep on top.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.sweep import sweep_mups
from repro.core.mups import find_mups
from repro.core.pattern import Pattern, X
from repro.data.scenarios import (
    SCENARIO_FAMILIES,
    planted_mup_dataset,
    scenario_dataset,
    zipfian_cardinalities,
)

#: Backends the equivalence leg sweeps (the ISSUE's required matrix).
BACKENDS = ("dense", "packed", "compressed", "auto")


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------
@st.composite
def sweep_cases(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    if draw(st.booleans()):
        cardinalities = zipfian_cardinalities(
            d,
            seed=draw(st.integers(min_value=0, max_value=64)),
            max_cardinality=6,
        )
    else:
        cardinalities = tuple(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=5),
                    min_size=d,
                    max_size=d,
                )
            )
        )
    family = draw(st.sampled_from(SCENARIO_FAMILIES))
    n = draw(st.integers(min_value=0, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    dataset = scenario_dataset(
        family,
        n,
        cardinalities,
        seed=seed,
        skew=draw(st.sampled_from([0.6, 1.1, 2.0])),
        correlation=draw(st.sampled_from([0.0, 0.5, 1.0])),
    )
    thresholds = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(2, n + 2)),
            min_size=1,
            max_size=5,
        )
    )
    return dataset, sorted(set(thresholds))


@st.composite
def planted_cases(draw):
    d = draw(st.integers(min_value=2, max_value=4))
    cardinalities = tuple(
        draw(
            st.lists(
                st.integers(min_value=2, max_value=4), min_size=d, max_size=d
            )
        )
    )
    # One planted pattern with 1..d deterministic values keeps the
    # non-domination precondition trivially satisfied.
    level = draw(st.integers(min_value=1, max_value=d))
    indices = draw(
        st.permutations(list(range(d))).map(lambda p: sorted(p[:level]))
    )
    values = [X] * d
    for index in indices:
        values[index] = draw(
            st.integers(min_value=0, max_value=cardinalities[index] - 1)
        )
    threshold = draw(st.integers(min_value=1, max_value=4))
    dataset = planted_mup_dataset(
        cardinalities,
        [Pattern(values)],
        threshold=threshold,
        n=draw(st.integers(min_value=0, max_value=64)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    return dataset, Pattern(values), threshold


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------
def _check_equivalence(dataset, thresholds, backend):
    sweep = sweep_mups(dataset, thresholds, engine=backend)
    lo, hi = sweep.tau_min, sweep.tau_max
    # Every integer τ in the closed range, not only the queried settings:
    # the frontier intervals claim to classify all of them.
    for tau in range(lo, hi + 1):
        amortized = sweep.mups_at(tau)
        independent = find_mups(dataset, threshold=tau, engine=backend)
        assert amortized.mups == independent.mups, (backend, tau)
        assert amortized.threshold == independent.threshold


def _check_nesting(dataset, thresholds):
    sweep = sweep_mups(dataset, thresholds)
    previous = None
    for tau in range(sweep.tau_min, sweep.tau_max + 1):
        current = sweep.mups_at(tau).mups
        if previous is not None:
            for mup in previous:
                assert any(q.covers(mup) for q in current), (tau, mup)
        previous = current


def _check_breakpoints(dataset, thresholds):
    sweep = sweep_mups(dataset, thresholds)
    lo, hi = sweep.tau_min, sweep.tau_max
    for point in sweep.frontier:
        start = point.appears_at
        assert point.is_mup_at(max(start, lo))
        if lo <= start - 1:
            assert not point.is_mup_at(start - 1)
        stop = point.disappears_above
        if stop is not None:
            assert point.is_mup_at(min(stop, hi)) or stop < lo
            if stop + 1 <= hi:
                assert not point.is_mup_at(stop + 1)
        # Cross-check interval membership against the classified sets.
        for tau in range(lo, hi + 1):
            in_set = point.pattern in sweep.mups_at(tau)
            assert in_set == point.is_mup_at(tau), (point, tau)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@given(sweep_cases())
@settings(max_examples=15, deadline=None, derandomize=True)
def test_sweep_matches_independent_runs(backend, case):
    """Bit-identical MUP sets at every τ in range, on every backend."""
    dataset, thresholds = case
    _check_equivalence(dataset, thresholds, backend)


@given(sweep_cases())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_sweep_frontier_nests_upward(case):
    """Every MUP at τ is covered by some MUP at τ+1 (frontier moves up)."""
    dataset, thresholds = case
    _check_nesting(dataset, thresholds)


@given(sweep_cases())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_sweep_breakpoints_are_exact(case):
    """τ* endpoints match the classified MUP sets exactly."""
    dataset, thresholds = case
    _check_breakpoints(dataset, thresholds)


@given(planted_cases())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_sweep_recovers_planted_mups(case):
    """Constructed ground truth: the planted pattern is in the MUP set."""
    dataset, planted, threshold = case
    sweep = sweep_mups(dataset, [threshold])
    assert planted in sweep.mups_at(threshold)
    # And the independent run agrees (the construction is algorithm-free).
    assert planted in find_mups(dataset, threshold=threshold)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@given(sweep_cases())
@settings(max_examples=50, deadline=None)
def test_sweep_matches_independent_runs_deep(backend, case):
    """Slow-job profile: a deeper randomized equivalence sweep."""
    dataset, thresholds = case
    _check_equivalence(dataset, thresholds, backend)
