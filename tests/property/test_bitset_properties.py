"""Property-based tests for the packed bit vector."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given

from repro.data.bitset import BitVector


@st.composite
def bool_arrays(draw, max_len: int = 300):
    length = draw(st.integers(min_value=0, max_value=max_len))
    bits = draw(st.lists(st.booleans(), min_size=length, max_size=length))
    return np.asarray(bits, dtype=bool)


@st.composite
def paired_bool_arrays(draw, max_len: int = 300):
    length = draw(st.integers(min_value=0, max_value=max_len))
    a = draw(st.lists(st.booleans(), min_size=length, max_size=length))
    b = draw(st.lists(st.booleans(), min_size=length, max_size=length))
    return np.asarray(a, dtype=bool), np.asarray(b, dtype=bool)


@given(bool_arrays())
def test_roundtrip(flags):
    assert np.array_equal(BitVector.from_bool_array(flags).to_bool_array(), flags)


@given(bool_arrays())
def test_count_matches_sum(flags):
    assert BitVector.from_bool_array(flags).count() == int(flags.sum())


@given(paired_bool_arrays())
def test_and_matches_numpy(pair):
    a, b = pair
    result = BitVector.from_bool_array(a) & BitVector.from_bool_array(b)
    assert np.array_equal(result.to_bool_array(), a & b)


@given(paired_bool_arrays())
def test_or_matches_numpy(pair):
    a, b = pair
    result = BitVector.from_bool_array(a) | BitVector.from_bool_array(b)
    assert np.array_equal(result.to_bool_array(), a | b)


@given(bool_arrays())
def test_invert_matches_numpy(flags):
    result = ~BitVector.from_bool_array(flags)
    assert np.array_equal(result.to_bool_array(), ~flags)


@given(paired_bool_arrays())
def test_intersects_iff_common_bit(pair):
    a, b = pair
    va, vb = BitVector.from_bool_array(a), BitVector.from_bool_array(b)
    assert va.intersects(vb) == bool((a & b).any())


@given(bool_arrays())
def test_indices_are_set_positions(flags):
    vector = BitVector.from_bool_array(flags)
    assert list(vector.indices()) == list(np.nonzero(flags)[0])
