"""Property-based tests for coverage enhancement (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.coverage import CoverageOracle
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.greedy import enhance_coverage, greedy_cover
from repro.core.enhancement.hitting_set import naive_greedy_cover
from repro.core.mups import deepdiver
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset, Schema


@st.composite
def space_and_targets(draw):
    d = draw(st.integers(min_value=2, max_value=4))
    cardinalities = draw(
        st.lists(st.integers(min_value=2, max_value=3), min_size=d, max_size=d)
    )
    space = PatternSpace(cardinalities)
    count = draw(st.integers(min_value=1, max_value=6))
    targets = set()
    for _ in range(count):
        values = []
        for c in cardinalities:
            values.append(draw(st.sampled_from([X] + list(range(c)))))
        pattern = Pattern(values)
        if pattern.level > 0:
            targets.add(pattern)
    return space, sorted(targets)


@given(space_and_targets())
@settings(max_examples=50, deadline=None)
def test_greedy_hits_every_target(case):
    space, targets = case
    plan = greedy_cover(targets, space)
    assert not plan.unhittable
    remaining = set(targets)
    for combo in plan.combinations:
        remaining -= {t for t in remaining if t.matches(combo)}
    assert not remaining


@given(space_and_targets())
@settings(max_examples=30, deadline=None)
def test_greedy_and_naive_both_within_greedy_guarantee(case):
    # Both implementations are greedy, but tie-breaking among equally good
    # picks can legitimately change the final cover size (hypothesis found
    # the counterexample {X0, 0X, 1X, 11}: 2 vs 3 picks).  The true shared
    # invariants: both covers are complete, and both sizes respect the
    # greedy H_m approximation against the optimum, hence against each
    # other within an H_m factor.
    import math

    space, targets = case
    fast = greedy_cover(targets, space)
    slow = naive_greedy_cover(targets, space)
    for plan in (fast, slow):
        remaining = set(targets)
        for combo in plan.combinations:
            remaining -= {t for t in remaining if t.matches(combo)}
        assert not remaining
    if targets:
        harmonic = sum(1.0 / k for k in range(1, len(targets) + 1))
        larger = max(len(fast.combinations), len(slow.combinations))
        smaller = max(1, min(len(fast.combinations), len(slow.combinations)))
        assert larger <= math.ceil(harmonic * smaller)


@given(space_and_targets())
@settings(max_examples=30, deadline=None)
def test_each_pick_is_greedy_maximal(case):
    space, targets = case
    plan = greedy_cover(targets, space)
    remaining = set(targets)
    for combo in plan.combinations:
        hits = {t for t in remaining if t.matches(combo)}
        best = max(
            len({t for t in remaining if t.matches(c)})
            for c in space.all_combinations()
        )
        assert len(hits) == best
        remaining -= hits


@st.composite
def dataset_tau_level(draw):
    d = draw(st.integers(min_value=2, max_value=3))
    cardinalities = draw(
        st.lists(st.integers(min_value=2, max_value=3), min_size=d, max_size=d)
    )
    n = draw(st.integers(min_value=1, max_value=40))
    rows = [
        [draw(st.integers(min_value=0, max_value=c - 1)) for c in cardinalities]
        for _ in range(n)
    ]
    tau = draw(st.integers(min_value=1, max_value=4))
    level = draw(st.integers(min_value=0, max_value=d))
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    return Dataset(schema, np.asarray(rows, dtype=np.int32)), tau, level


@given(dataset_tau_level())
@settings(max_examples=40, deadline=None)
def test_enhancement_reaches_requested_level(case):
    dataset, tau, level = case
    mups = deepdiver(dataset, tau).mups
    result, enhanced = enhance_coverage(dataset, mups, level=level, threshold=tau)
    assert not result.unhittable  # no validation oracle, so all hittable
    after = deepdiver(enhanced, tau)
    assert after.max_covered_level(dataset.d) >= level


@given(dataset_tau_level())
@settings(max_examples=30, deadline=None)
def test_expansion_matches_bruteforce(case):
    dataset, tau, level = case
    oracle = CoverageOracle(dataset)
    space = PatternSpace.for_dataset(dataset)
    mups = deepdiver(dataset, tau).mups
    targets = set(uncovered_at_level(mups, space, level))
    brute = {
        p
        for p in space.all_patterns()
        if p.level == level and oracle.coverage(p) < tau
    }
    assert targets == brute
