"""Planner properties: determinism and validity over arbitrary stats.

The planner must be a pure function — for a fixed :class:`WorkloadStats`
snapshot and requested config, repeated planning yields the identical
:class:`EnginePlan` — and every emitted plan must be concrete (never
``auto``) and pass :meth:`EngineConfig.validate` so it can always build.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.engine import AUTO, EngineConfig, WorkloadStats, plan_engine

_WORD_BITS = 64


@st.composite
def workload_stats(draw):
    d = draw(st.integers(min_value=1, max_value=6))
    cardinalities = tuple(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=64), min_size=d, max_size=d
            )
        )
    )
    rows = draw(st.integers(min_value=0, max_value=1 << 40))
    combinations = 1
    for cardinality in cardinalities:
        combinations *= cardinality
    unique = min(rows, combinations)
    words = (unique + _WORD_BITS - 1) // _WORD_BITS
    row_total = sum(cardinalities)
    return WorkloadStats(
        rows=rows,
        d=d,
        cardinalities=cardinalities,
        projected_unique=unique,
        projected_packed_bytes=row_total * words * 8,
        projected_dense_bytes=row_total * unique,
        memory_budget_bytes=draw(st.integers(min_value=1, max_value=1 << 42)),
        cpu_count=draw(st.integers(min_value=1, max_value=64)),
    )


@st.composite
def auto_requests(draw):
    shards = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=64)))
    workers = draw(st.one_of(st.none(), st.integers(min_value=2, max_value=8)))
    workers_mode = draw(st.sampled_from([None, "thread"]))
    if workers is not None and draw(st.booleans()):
        workers_mode = "process"
    array_cutoff = None
    run_cutoff = None
    if shards is None and workers is None and workers_mode is None:
        # Container thresholds force the compressed backend; the validator
        # rejects combining them with the sharded-forcing knobs.
        array_cutoff = draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 16))
        )
        run_cutoff = draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 12))
        )
    return EngineConfig(
        backend=AUTO,
        shards=shards,
        workers=workers,
        workers_mode=workers_mode,
        max_resident_bytes=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 40))
        ),
        mask_cache_size=draw(st.sampled_from([None, 0, 16])),
        array_cutoff=array_cutoff,
        run_cutoff=run_cutoff,
    )


@given(workload_stats(), auto_requests())
@settings(max_examples=200, deadline=None)
def test_plans_are_deterministic_for_a_fixed_stats_snapshot(stats, requested):
    first = plan_engine(stats, requested)
    second = plan_engine(stats, requested)
    assert first == second
    assert first.rationale == second.rationale


@given(workload_stats(), auto_requests())
@settings(max_examples=200, deadline=None)
def test_every_emitted_plan_is_concrete_and_valid(stats, requested):
    plan = plan_engine(stats, requested)
    config = plan.config
    assert config.backend != AUTO
    config.validate()  # must never raise
    # Requested constraints survive into the plan.
    if requested.shards is not None:
        assert config.shards == requested.shards
    if requested.workers is not None:
        assert config.workers == requested.workers
    if requested.mask_cache_size is not None:
        assert config.mask_cache_size == requested.mask_cache_size
    forced_compressed = (
        requested.array_cutoff is not None or requested.run_cutoff is not None
    )
    if forced_compressed:
        # Container thresholds are constraints: the plan must honour them.
        assert config.backend == "compressed"
        assert config.array_cutoff == requested.array_cutoff
        assert config.run_cutoff == requested.run_cutoff
        return
    # The acceptance invariant: over-budget projections go out-of-core —
    # unless the sparse domain's compressed index fits the budget in RAM,
    # in which case spilling to disk would be strictly worse.
    budget = (
        requested.max_resident_bytes
        if requested.max_resident_bytes is not None
        else stats.memory_budget_bytes
    )
    if stats.projected_packed_bytes > budget:
        if config.backend == "compressed":
            assert stats.projected_compressed_bytes <= budget
        else:
            assert config.backend == "sharded"
            assert config.spill_dir is not None
            assert config.max_resident_bytes == budget
