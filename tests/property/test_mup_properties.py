"""Property-based cross-checks of the MUP identification algorithms."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.coverage import CoverageOracle
from repro.core.mups import (
    apriori_mups,
    deepdiver,
    naive_mups,
    pattern_breaker,
    pattern_combiner,
)
from repro.data.dataset import Dataset, Schema


@st.composite
def dataset_and_threshold(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    cardinalities = draw(
        st.lists(st.integers(min_value=1, max_value=3), min_size=d, max_size=d)
    )
    n = draw(st.integers(min_value=0, max_value=30))
    rows = [
        [draw(st.integers(min_value=0, max_value=c - 1)) for c in cardinalities]
        for _ in range(n)
    ]
    tau = draw(st.integers(min_value=1, max_value=6))
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    array = np.asarray(rows, dtype=np.int32).reshape(n, d)
    return Dataset(schema, array), tau


@given(dataset_and_threshold())
@settings(max_examples=60, deadline=None)
def test_all_algorithms_agree(case):
    dataset, tau = case
    reference = naive_mups(dataset, tau).as_set()
    assert pattern_breaker(dataset, tau).as_set() == reference
    assert pattern_combiner(dataset, tau).as_set() == reference
    assert deepdiver(dataset, tau).as_set() == reference
    assert apriori_mups(dataset, tau).as_set() == reference


@given(dataset_and_threshold())
@settings(max_examples=40, deadline=None)
def test_mup_definition(case):
    dataset, tau = case
    oracle = CoverageOracle(dataset)
    for mup in deepdiver(dataset, tau):
        assert oracle.coverage(mup) < tau
        for parent in mup.parents():
            assert oracle.coverage(parent) >= tau


@given(dataset_and_threshold())
@settings(max_examples=40, deadline=None)
def test_mups_are_an_antichain(case):
    dataset, tau = case
    mups = list(deepdiver(dataset, tau))
    for i, a in enumerate(mups):
        for b in mups[i + 1 :]:
            assert not a.dominates(b) and not b.dominates(a)


@given(dataset_and_threshold())
@settings(max_examples=30, deadline=None)
def test_every_uncovered_pattern_is_dominated_by_a_mup(case):
    from repro.core.pattern_graph import PatternSpace

    dataset, tau = case
    oracle = CoverageOracle(dataset)
    space = PatternSpace.for_dataset(dataset)
    mups = set(deepdiver(dataset, tau))
    for pattern in space.all_patterns():
        if oracle.coverage(pattern) < tau:
            assert any(m == pattern or m.dominates(pattern) for m in mups)
        else:
            assert not any(m == pattern or m.dominates(pattern) for m in mups)
