"""Cross-engine observational-equivalence property suite (hypothesis).

Every registered coverage engine — ``dense``, ``packed``, ``sharded`` at
several shard counts, the out-of-core sharded engine (spilled to a
temporary directory, with eviction forced by a one-shard resident budget),
whatever the ``auto`` planner emits for the generated dataset, and
``compressed`` at stock and adversarial container thresholds
— with the hot-mask cache both enabled and disabled, must give
bit-identical answers on every query family: point coverage, batched
``count_many`` / ``coverage_many``, sibling families from
``restrict_children``, and whole ``find_mups`` runs across all five
identification algorithms.  The dense engine is the reference; everything
else is compared against it.

The out-of-core engine additionally carries a crash-safety property:
re-opening a finished spill directory from its manifest
(:meth:`ShardedEngine.attach`) answers every query identically to the
engine that wrote it.
"""

import tempfile
from contextlib import contextmanager

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.engine import (
    AUTO,
    CompressedEngine,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    resolve_engine,
)
from repro.core.mups.base import ALGORITHMS, find_mups
from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset, Schema

#: Shard counts exercised: degenerate (1), even split, and more shards
#: than some generated datasets have rows (exercising the clamp).
SHARD_COUNTS = (1, 2, 7)

#: Shard count of the out-of-core configuration in the engine matrix.
OOC_SHARDS = 3

ALL_ALGORITHMS = ("naive", "apriori", "pattern_breaker", "pattern_combiner", "deepdiver")


@st.composite
def datasets(draw, max_d: int = 4, max_card: int = 4, max_n: int = 40):
    d = draw(st.integers(min_value=1, max_value=max_d))
    cardinalities = draw(
        st.lists(st.integers(min_value=1, max_value=max_card), min_size=d, max_size=d)
    )
    n = draw(st.integers(min_value=0, max_value=max_n))
    rows = [
        [draw(st.integers(min_value=0, max_value=c - 1)) for c in cardinalities]
        for _ in range(n)
    ]
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    array = np.asarray(rows, dtype=np.int32).reshape(n, d)
    return Dataset(schema, array)


@st.composite
def dataset_and_patterns(draw, max_patterns: int = 6):
    dataset = draw(datasets())
    k = draw(st.integers(min_value=0, max_value=max_patterns))
    patterns = []
    for _ in range(k):
        values = [
            draw(st.sampled_from([X] + list(range(c))))
            for c in dataset.cardinalities
        ]
        patterns.append(Pattern(values))
    return dataset, patterns


@contextmanager
def engine_matrix(dataset, mask_cache_size):
    """One engine per backend configuration under test, dense first.

    The matrix ends with the out-of-core sharded engine — spilled into a
    temporary directory and starved with ``max_resident_bytes=1`` so every
    shard load evicts the previous one (a one-shard resident set) — a
    socket-mode engine (spawn-local distributed workers answering over
    length-prefixed frames, falling back to serial scans where ``fork``
    is unavailable or the dataset clamps to one shard), and whatever the
    ``auto`` planner picks for the dataset, so every plan the planner can
    emit stays observationally equivalent too.
    """
    with tempfile.TemporaryDirectory(prefix="repro-equiv-") as root:
        engines = [
            DenseBoolEngine(dataset, mask_cache_size=mask_cache_size),
            PackedBitsetEngine(dataset, mask_cache_size=mask_cache_size),
        ]
        for shards in SHARD_COUNTS:
            engines.append(
                ShardedEngine(dataset, shards=shards, mask_cache_size=mask_cache_size)
            )
        engines.append(
            ShardedEngine(
                dataset,
                shards=OOC_SHARDS,
                mask_cache_size=mask_cache_size,
                spill_dir=root,
                max_resident_bytes=1,
            )
        )
        engines.append(
            ShardedEngine(
                dataset,
                shards=OOC_SHARDS,
                workers=2,
                workers_mode="socket",
                mask_cache_size=mask_cache_size,
                spill_dir=root,
            )
        )
        engines.append(
            resolve_engine(
                EngineConfig(backend=AUTO, mask_cache_size=mask_cache_size),
                dataset,
            )
        )
        # Compressed at stock thresholds (sorted-array/run containers on
        # these small domains) and at adversarial ones (array_cutoff=1
        # forces bitmap containers, run_cutoff=1 rejects multi-run chunks),
        # so every container pairing is exercised.
        engines.append(
            CompressedEngine(dataset, mask_cache_size=mask_cache_size)
        )
        engines.append(
            CompressedEngine(
                dataset,
                mask_cache_size=mask_cache_size,
                array_cutoff=1,
                run_cutoff=1,
            )
        )
        try:
            yield engines
        finally:
            for engine in engines:
                engine.close()


@given(dataset_and_patterns(), st.sampled_from([0, 1024]))
@settings(max_examples=40, deadline=None)
def test_point_coverage_identical(case, cache_size):
    dataset, patterns = case
    with engine_matrix(dataset, cache_size) as (reference, *others):
        for pattern in patterns:
            expected = reference.coverage(pattern)
            for engine in others:
                assert engine.coverage(pattern) == expected, engine.name
            # Re-query so cached configurations serve the mask from the cache.
            for engine in [reference, *others]:
                assert engine.coverage(pattern) == expected, engine.name


@given(dataset_and_patterns(), st.sampled_from([0, 1024]))
@settings(max_examples=40, deadline=None)
def test_count_many_identical(case, cache_size):
    dataset, patterns = case
    with engine_matrix(dataset, cache_size) as (reference, *others):
        expected = list(
            reference.count_many([reference.match_mask(p) for p in patterns])
        )
        assert expected == [reference.coverage(p) for p in patterns]
        for engine in others:
            masks = [engine.match_mask(p) for p in patterns]
            assert list(engine.count_many(masks)) == expected, engine.name
            assert list(engine.coverage_many(patterns)) == expected, engine.name


@given(dataset_and_patterns(), st.sampled_from([0, 16]))
@settings(max_examples=30, deadline=None)
def test_restrict_children_identical(case, cache_size):
    dataset, patterns = case
    with engine_matrix(dataset, cache_size) as (reference, *others):
        for pattern in patterns:
            free = pattern.nondeterministic_indices()
            if not free:
                continue
            attribute = free[-1]
            expected_family = [
                reference.mask_to_bool(child)
                for child in reference.restrict_children(
                    reference.match_mask(pattern), attribute
                )
            ]
            for engine in others:
                family = engine.restrict_children(
                    engine.match_mask(pattern), attribute
                )
                assert len(family) == dataset.cardinalities[attribute]
                for child, expected in zip(family, expected_family):
                    assert np.array_equal(
                        engine.mask_to_bool(child), expected
                    ), engine.name
                # The sibling family partitions the parent's matches.
                counts = engine.count_many(family)
                assert int(counts.sum()) == engine.coverage(pattern), engine.name


@given(datasets(max_d=3, max_card=3, max_n=25), st.sampled_from([0, 1024]))
@settings(max_examples=15, deadline=None)
def test_full_mup_runs_identical_across_all_algorithms(dataset, cache_size):
    assert set(ALL_ALGORITHMS) == set(ALGORITHMS), "algorithm registry drifted"
    for algorithm in ALL_ALGORITHMS:
        reference = find_mups(
            dataset,
            threshold=2,
            algorithm=algorithm,
            engine=DenseBoolEngine(dataset, mask_cache_size=cache_size),
        )
        with engine_matrix(dataset, cache_size) as (_, *others):
            for engine in others:
                result = find_mups(
                    dataset, threshold=2, algorithm=algorithm, engine=engine
                )
                assert result.as_set() == reference.as_set(), (
                    algorithm,
                    engine.name,
                )


@given(datasets(max_d=3, max_card=3, max_n=25))
@settings(max_examples=15, deadline=None)
def test_auto_planned_engine_mups_match_packed(dataset):
    """Every plan the auto planner emits builds an engine whose MUP sets
    match the packed reference on small datasets (the planner satellite)."""
    reference = find_mups(dataset, threshold=2, engine="packed")
    result = find_mups(dataset, threshold=2, engine=AUTO)
    assert result.as_set() == reference.as_set()
    # A memory-starved auto plan (escalating out-of-core) agrees too.
    with tempfile.TemporaryDirectory(prefix="repro-auto-") as root:
        starved = find_mups(
            dataset,
            threshold=2,
            engine=EngineConfig(
                backend=AUTO, spill_dir=root, max_resident_bytes=1
            ),
        )
    assert starved.as_set() == reference.as_set()


@given(datasets(max_n=30))
@settings(max_examples=20, deadline=None)
def test_sharded_workers_match_serial(dataset):
    serial = ShardedEngine(dataset, shards=3, workers=None)
    pooled = ShardedEngine(dataset, shards=3, workers=2)
    try:
        patterns = [Pattern.root(dataset.d)]
        for value in range(dataset.cardinalities[0]):
            patterns.append(Pattern.root(dataset.d).with_value(0, value))
        assert list(serial.coverage_many(patterns)) == list(
            pooled.coverage_many(patterns)
        )
        family_serial = serial.restrict_children(serial.full_mask(), 0)
        family_pooled = pooled.restrict_children(pooled.full_mask(), 0)
        for a, b in zip(family_serial, family_pooled):
            assert np.array_equal(serial.mask_to_bool(a), pooled.mask_to_bool(b))
    finally:
        pooled.close()


@given(dataset_and_patterns())
@settings(max_examples=25, deadline=None)
def test_reopening_spill_directory_answers_identically(case):
    """Crash safety: a finished spill directory is a complete index.

    Whatever the writing engine answered, an engine attached to the same
    directory from its manifest (a fresh process after a crash) must answer
    identically — point coverage, batched counts, and sibling families.
    """
    dataset, patterns = case
    with tempfile.TemporaryDirectory(prefix="repro-reopen-") as root:
        writer = ShardedEngine(dataset, shards=2, spill_dir=root)
        expected_points = [writer.coverage(p) for p in patterns]
        expected_batch = list(writer.coverage_many(patterns))
        reopened = ShardedEngine.attach(
            dataset, writer.spill_path, max_resident_bytes=1
        )
        try:
            assert [reopened.coverage(p) for p in patterns] == expected_points
            assert list(reopened.coverage_many(patterns)) == expected_batch
            family_a = writer.restrict_children(writer.full_mask(), 0)
            family_b = reopened.restrict_children(reopened.full_mask(), 0)
            for a, b in zip(family_a, family_b):
                assert np.array_equal(
                    writer.mask_to_bool(a), reopened.mask_to_bool(b)
                )
        finally:
            reopened.close()
            writer.close()


@given(dataset_and_patterns())
@settings(max_examples=25, deadline=None)
def test_cached_masks_are_isolated_copies(case):
    """Mutating a handed-out mask must not corrupt the cache."""
    dataset, patterns = case
    # One engine per mask representation; no spill needed for this test.
    engines = [
        DenseBoolEngine(dataset, mask_cache_size=64),
        PackedBitsetEngine(dataset, mask_cache_size=64),
        ShardedEngine(dataset, shards=SHARD_COUNTS[0], mask_cache_size=64),
    ]
    for engine in engines:
        for pattern in patterns:
            before = engine.coverage(pattern)
            mask = engine.match_mask(pattern)
            # Clobber the caller's copy in place (ndarray masks for dense
            # and sharded, BitVector for packed).
            if dataset.d >= 1 and dataset.cardinalities[0] >= 1:
                if hasattr(mask, "iand"):
                    mask.iand(engine.value_mask(0, 0))
                else:
                    mask &= engine.value_mask(0, 0)
            assert engine.coverage(pattern) == before, engine.name
