"""Differential fuzz harness: random workloads in lockstep on every backend.

The cross-engine equivalence suite checks each query family in isolation;
this harness checks the *interleavings*.  Hypothesis generates a random
dataset — half the time uniform-random rows, half the time a realistic
:mod:`repro.data.scenarios` draw (zipf marginals, latent-factor
correlation) — plus a random sequence of ``coverage`` / ``coverage_many``
(with and without the sweep's count-reuse memo) / ``coverage_of_masks`` /
``restrict_children`` / cache-churn /
``template()``-rebuild calls, and executes the sequence in lockstep on the
``dense`` reference and every other backend — ``packed``, ``sharded``,
the out-of-core sharded engine (one-shard resident budget), whatever the
``auto`` planner picks, and ``compressed`` at randomized container
thresholds.  After every step the answers must be bit-identical and the
hot-mask cache accounting (hits / misses / entries, which the shared base
class drives identically for every backend) must agree with the
reference.

Two profiles run it: the normal suite uses a fixed-seed (derandomized)
profile so CI is deterministic, and the ``-m slow`` job layers a deeper
randomized sweep on top (``test_engine_fuzz_deep``).  Past
counterexamples live in ``engine_fuzz_corpus.json`` next to this file and
replay on every run — append a shrunk case there whenever the fuzzer
finds a new one.
"""

import json
import tempfile
from pathlib import Path

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.coverage import CoverageOracle
from repro.core.engine import (
    AUTO,
    CompressedEngine,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    numba_available,
    resolve_engine,
)
from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset, Schema
from repro.data.scenarios import SCENARIO_FAMILIES, scenario_dataset

CORPUS_PATH = Path(__file__).parent / "engine_fuzz_corpus.json"

#: The packed-jit leg pins the compiled kernel tier bit-identical to the
#: dense reference.  Without numba it degrades to a second python-tier
#: packed engine — the leg still runs, exercising the explicit-tier path.
_JIT_TIER = "jit" if numba_available() else "python"

#: Backend labels under differential test (dense is the reference).
#: "socket" is the distributed leg: out-of-core sharded with spawn-local
#: socket workers (degrading to threads on platforms without fork, which
#: still exercises the mode-selection path).
BACKENDS = (
    "dense",
    "packed",
    "packed-jit",
    "sharded",
    "out-of-core",
    "auto",
    "compressed",
    "socket",
)


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------
@st.composite
def _patterns(draw, cardinalities):
    values = [
        draw(st.sampled_from([X] + list(range(c)))) for c in cardinalities
    ]
    return Pattern(values)


@st.composite
def scenario_rows(draw, cardinalities):
    """Rows from a realistic scenario family (zipf tails, correlation).

    Uniform-random rows rarely produce the skewed marginals and coupled
    columns real coverage workloads have; drawing whole datasets from
    :mod:`repro.data.scenarios` points the fuzzer at those regimes.  The
    draw is reduced to ``(family, n, seed, ...)`` so hypothesis can still
    shrink it.
    """
    family = draw(st.sampled_from(SCENARIO_FAMILIES))
    n = draw(st.integers(min_value=0, max_value=32))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    skew = draw(st.sampled_from([0.5, 1.1, 2.5]))
    correlation = draw(st.sampled_from([0.0, 0.6, 1.0]))
    dataset = scenario_dataset(
        family,
        n,
        cardinalities,
        seed=seed,
        skew=skew,
        correlation=correlation,
    )
    return dataset.rows.tolist()


@st.composite
def fuzz_cases(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    cardinalities = draw(
        st.lists(st.integers(min_value=1, max_value=6), min_size=d, max_size=d)
    )
    if draw(st.booleans()):
        rows = draw(scenario_rows(cardinalities))
    else:
        n = draw(st.integers(min_value=0, max_value=32))
        rows = [
            [
                draw(st.integers(min_value=0, max_value=c - 1))
                for c in cardinalities
            ]
            for _ in range(n)
        ]
    mask_cache_size = draw(st.sampled_from([0, 2, 64]))
    array_cutoff = draw(st.sampled_from([None, 1, 4, 4096]))
    run_cutoff = draw(st.sampled_from([None, 1, 2, 1024]))
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["point", "many", "masks", "memo", "children", "churn", "rebuild"]
            )
        )
        if kind == "point":
            ops.append(("point", draw(_patterns(cardinalities))))
        elif kind in ("many", "masks", "memo"):
            batch = [
                draw(_patterns(cardinalities))
                for _ in range(draw(st.integers(min_value=0, max_value=4)))
            ]
            ops.append((kind, batch))
        elif kind == "children":
            ops.append(
                (
                    "children",
                    draw(_patterns(cardinalities)),
                    draw(st.integers(min_value=0, max_value=d - 1)),
                )
            )
        else:
            ops.append((kind,))
    return cardinalities, rows, mask_cache_size, array_cutoff, run_cutoff, ops


# ----------------------------------------------------------------------
# lockstep execution
# ----------------------------------------------------------------------
def _build_engines(dataset, mask_cache_size, array_cutoff, run_cutoff, root):
    compressed_options = {}
    if array_cutoff is not None:
        compressed_options["array_cutoff"] = array_cutoff
    if run_cutoff is not None:
        compressed_options["run_cutoff"] = run_cutoff
    return {
        "dense": DenseBoolEngine(dataset, mask_cache_size=mask_cache_size),
        "packed": PackedBitsetEngine(dataset, mask_cache_size=mask_cache_size),
        "packed-jit": PackedBitsetEngine(
            dataset, mask_cache_size=mask_cache_size, kernel_tier=_JIT_TIER
        ),
        "sharded": ShardedEngine(
            dataset, shards=3, mask_cache_size=mask_cache_size
        ),
        "out-of-core": ShardedEngine(
            dataset,
            shards=2,
            mask_cache_size=mask_cache_size,
            spill_dir=root,
            max_resident_bytes=1,
        ),
        "auto": resolve_engine(
            EngineConfig(backend=AUTO, mask_cache_size=mask_cache_size),
            dataset,
        ),
        "compressed": CompressedEngine(
            dataset, mask_cache_size=mask_cache_size, **compressed_options
        ),
        "socket": ShardedEngine(
            dataset,
            shards=3,
            workers=2,
            workers_mode="socket",
            mask_cache_size=mask_cache_size,
            spill_dir=root,
        ),
    }


def _check_cache_accounting(engines):
    """Every backend's hot-mask cache must account like the reference.

    The LRU lives in the shared base class, so an identical op sequence
    must produce identical hit/miss/entry counters on every backend (mask
    *bytes* legitimately differ per representation).
    """
    reference = engines["dense"].cache_info()
    for name, engine in engines.items():
        info = engine.cache_info()
        assert info["hits"] == reference["hits"], name
        assert info["misses"] == reference["misses"], name
        assert info["entries"] == reference["entries"], name
        assert info["max_size"] == reference["max_size"], name
        assert 0 <= info["entries"] <= max(1, info["max_size"]), name
        assert info["nbytes"] >= 0, name
        total = info["hits"] + info["misses"]
        expected_rate = (info["hits"] / total) if total else 0.0
        assert info["hit_rate"] == pytest.approx(expected_rate), name


def _apply_op(op, dataset, engines, oracles):
    kind = op[0]
    if kind == "point":
        pattern = op[1]
        expected = oracles["dense"].coverage(pattern)
        for name in BACKENDS[1:]:
            assert oracles[name].coverage(pattern) == expected, (name, pattern)
    elif kind == "many":
        batch = op[1]
        expected = list(oracles["dense"].coverage_many(batch))
        for name in BACKENDS[1:]:
            assert list(oracles[name].coverage_many(batch)) == expected, name
    elif kind == "memo":
        # The count-reuse table the amortized threshold sweep rides: a
        # second pass over the same batch must answer from the memo alone
        # (no new oracle evaluations) with bit-identical counts, and the
        # memoized counts must agree across every backend.
        batch = op[1]
        results = {}
        for name in BACKENDS:
            oracle = oracles[name]
            memo = {}
            first = list(oracle.coverage_many(batch, memo=memo))
            before = oracle.evaluations
            second = list(oracle.coverage_many(batch, memo=memo))
            assert second == first, name
            assert oracle.evaluations == before, name
            assert set(memo) == {p.values for p in batch}, name
            results[name] = first
        for name in BACKENDS[1:]:
            assert results[name] == results["dense"], name
    elif kind == "masks":
        batch = op[1]
        reference = oracles["dense"]
        expected = list(
            reference.coverage_of_masks(
                [reference.match_mask(p) for p in batch]
            )
        )
        for name in BACKENDS[1:]:
            oracle = oracles[name]
            masks = [oracle.match_mask(p) for p in batch]
            assert list(oracle.coverage_of_masks(masks)) == expected, name
    elif kind == "children":
        pattern, attribute = op[1], op[2]
        reference = engines["dense"]
        family = reference.restrict_children(
            reference.match_mask(pattern), attribute
        )
        expected_bools = [reference.mask_to_bool(child) for child in family]
        expected_counts = list(reference.count_many(family))
        for name in BACKENDS[1:]:
            engine = engines[name]
            other = engine.restrict_children(
                engine.match_mask(pattern), attribute
            )
            assert len(other) == dataset.cardinalities[attribute], name
            for child, expected in zip(other, expected_bools):
                assert np.array_equal(
                    engine.mask_to_bool(child), expected
                ), (name, pattern, attribute)
            assert list(engine.count_many(other)) == expected_counts, name
    elif kind == "churn":
        for engine in engines.values():
            engine.clear_mask_cache()
    elif kind == "rebuild":
        for name in BACKENDS:
            old = engines[name]
            template = old.template()
            old.close()
            rebuilt = resolve_engine(template, dataset)
            engines[name] = rebuilt
            oracles[name] = CoverageOracle(dataset, engine=rebuilt)
    else:  # pragma: no cover - corpus hygiene
        raise AssertionError(f"unknown fuzz op {kind!r}")


def _run_case(
    cardinalities, rows, mask_cache_size, array_cutoff, run_cutoff, ops
):
    d = len(cardinalities)
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    array = np.asarray(rows, dtype=np.int32).reshape(len(rows), d)
    dataset = Dataset(schema, array)
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as root:
        engines = _build_engines(
            dataset, mask_cache_size, array_cutoff, run_cutoff, root
        )
        oracles = {
            name: CoverageOracle(dataset, engine=engine)
            for name, engine in engines.items()
        }
        try:
            for op in ops:
                _apply_op(op, dataset, engines, oracles)
                _check_cache_accounting(engines)
        finally:
            for engine in engines.values():
                engine.close()


# ----------------------------------------------------------------------
# entry points: fixed-seed profile, deep profile, corpus replay
# ----------------------------------------------------------------------
@given(fuzz_cases())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_engine_fuzz(case):
    """Normal-suite profile: fixed seed, deterministic in CI."""
    _run_case(*case)


@pytest.mark.slow
@given(fuzz_cases())
@settings(max_examples=100, deadline=None)
def test_engine_fuzz_deep(case):
    """Slow-job profile: a deeper randomized sweep over the same space."""
    _run_case(*case)


def _load_corpus():
    with open(CORPUS_PATH) as handle:
        return json.load(handle)


def _parse_pattern(values):
    return Pattern([X if value == "X" else int(value) for value in values])


def _parse_op(entry):
    kind = entry[0]
    if kind == "point":
        return ("point", _parse_pattern(entry[1]))
    if kind in ("many", "masks", "memo"):
        return (kind, [_parse_pattern(values) for values in entry[1]])
    if kind == "children":
        return ("children", _parse_pattern(entry[1]), int(entry[2]))
    return (kind,)


CORPUS = _load_corpus()


@pytest.mark.parametrize(
    "case", CORPUS, ids=[entry["name"] for entry in CORPUS]
)
def test_engine_fuzz_corpus_replays(case):
    """Seed-corpus regression: every past counterexample replays green."""
    _run_case(
        case["cardinalities"],
        case["rows"],
        case["mask_cache_size"],
        case.get("array_cutoff"),
        case.get("run_cutoff"),
        [_parse_op(entry) for entry in case["ops"]],
    )
