"""Property-based tests for the pattern algebra (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace

MAX_D = 5


@st.composite
def spaces(draw):
    # Cardinality >= 2: with a single-valued attribute the syntactic covers
    # relation is strictly finer than match-set inclusion (X and the lone
    # value have identical matches); the library handles that consistently,
    # but the semantic-equivalence properties below assume non-degenerate
    # attributes, as the paper does.
    d = draw(st.integers(min_value=1, max_value=MAX_D))
    cardinalities = draw(
        st.lists(st.integers(min_value=2, max_value=4), min_size=d, max_size=d)
    )
    return PatternSpace(cardinalities)


@st.composite
def space_and_pattern(draw):
    space = draw(spaces())
    values = []
    for c in space.cardinalities:
        values.append(draw(st.sampled_from([X] + list(range(c)))))
    return space, Pattern(values)


@st.composite
def space_and_two_patterns(draw):
    space = draw(spaces())

    def one():
        values = []
        for c in space.cardinalities:
            values.append(draw(st.sampled_from([X] + list(range(c)))))
        return Pattern(values)

    return space, one(), one()


@st.composite
def space_pattern_combo(draw):
    space, pattern = draw(space_and_pattern())
    combo = []
    for i, c in enumerate(space.cardinalities):
        if pattern[i] == X:
            combo.append(draw(st.integers(min_value=0, max_value=c - 1)))
        else:
            combo.append(pattern[i])
    return space, pattern, tuple(combo)


@given(space_and_pattern())
def test_level_plus_free_equals_d(case):
    space, pattern = case
    assert pattern.level + len(pattern.nondeterministic_indices()) == space.d


@given(space_and_pattern())
def test_parents_have_level_minus_one_and_cover(case):
    _space, pattern = case
    for parent in pattern.parents():
        assert parent.level == pattern.level - 1
        assert parent.dominates(pattern)
        assert parent.is_parent_of(pattern)


@given(space_and_pattern())
def test_children_are_inverse_of_parents(case):
    space, pattern = case
    for child in space.children(pattern):
        assert pattern in set(child.parents())


@given(space_and_two_patterns())
def test_dominance_antisymmetric(case):
    _space, a, b = case
    if a.dominates(b):
        assert not b.dominates(a)
        assert a.level < b.level


@given(space_and_two_patterns())
def test_covers_iff_all_matches_subset(case):
    space, a, b = case
    # Exact statement: a covers b  <=>  matches(b) ⊆ matches(a).
    matches_b = set(space.combinations_matching(b))
    matches_a = set(space.combinations_matching(a))
    assert a.covers(b) == matches_b.issubset(matches_a)


@given(space_pattern_combo())
def test_matching_consistent_with_combinations(case):
    space, pattern, combo = case
    assert pattern.matches(combo)
    assert combo in set(space.combinations_matching(pattern))


@given(space_and_two_patterns())
def test_merge_intersection_covers_both(case):
    _space, a, b = case
    merged = a.merge_intersection(b)
    assert merged.covers(a)
    assert merged.covers(b)


@given(space_and_pattern())
def test_value_count_equals_enumeration(case):
    space, pattern = case
    assert space.value_count(pattern) == sum(
        1 for _ in space.combinations_matching(pattern)
    )


@given(space_and_pattern())
def test_string_roundtrip(case):
    _space, pattern = case
    assert Pattern.from_string(str(pattern)) == pattern


@given(spaces())
@settings(max_examples=30)
def test_rule1_tree_reaches_every_node_once(space):
    generated = [space.root()]
    frontier = [space.root()]
    while frontier:
        node = frontier.pop()
        children = space.rule1_children(node)
        generated.extend(children)
        frontier.extend(children)
    assert len(generated) == len(set(generated)) == space.node_count()


@given(spaces())
@settings(max_examples=30)
def test_rule2_forest_reaches_every_non_leaf_once(space):
    generated = []
    frontier = [Pattern(c) for c in space.all_combinations()]
    while frontier:
        node = frontier.pop()
        parents = space.rule2_parents(node)
        generated.extend(parents)
        frontier.extend(parents)
    non_leaves = space.node_count() - space.combination_count()
    assert len(generated) == len(set(generated)) == non_leaves
