"""Property suite pinning the generalization-lattice machinery.

Three families of guarantees:

* **Round trip** — ``drill_down`` inverts ``rollup`` exactly: for any
  coarse pattern, the union of its fine expansions' matching rows equals
  the coarse pattern's matching rows on the rolled dataset (and the
  expansions partition it, so the coverages sum);
* **Equivalence** — ``find_mups_hierarchical`` is bit-identical to an
  independent ``find_mups`` run on the equivalent ``rollup()`` dataset at
  every level of the stack, on every coverage-engine backend (dense /
  packed / compressed / auto);
* **Bucket sweep** — each ``bucketize_sweep`` point matches an
  independent ``find_mups`` over ``bucketized_dataset`` at that width,
  despite the shared drill-down count memo.

The normal-suite legs run a fixed-seed (derandomized) profile; the
``-m slow`` job layers a deeper randomized sweep on top.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.hierarchy import (
    HierarchyStack,
    bucketize_sweep,
    bucketized_dataset,
    find_mups_hierarchical,
)
from repro.core.mups import find_mups
from repro.core.pattern import Pattern, X
from repro.data.hierarchy import AttributeHierarchy, drill_down, rollup
from repro.data.scenarios import SCENARIO_FAMILIES, scenario_dataset

#: Backends the equivalence leg sweeps (the ISSUE's required matrix).
BACKENDS = ("dense", "packed", "compressed", "auto")


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------
def _block_groups(cardinality, cuts):
    """Dense group codes formed by cutting ``0..cardinality-1`` into
    contiguous blocks at the given cut points."""
    groups = []
    group = 0
    for code in range(cardinality):
        if code in cuts:
            group += 1
        groups.append(group)
    return tuple(groups)


@st.composite
def _chain(draw, name, cardinality):
    """A 1-2 level chain of block coarsenings; nested cut sets guarantee
    the refinement condition by construction."""
    fine_cuts = draw(
        st.sets(st.integers(min_value=1, max_value=cardinality - 1), max_size=4)
    )
    levels = [AttributeHierarchy.of(name, _block_groups(cardinality, fine_cuts))]
    if fine_cuts and draw(st.booleans()):
        coarse_cuts = draw(st.sets(st.sampled_from(sorted(fine_cuts))))
        levels.append(
            AttributeHierarchy.of(name, _block_groups(cardinality, coarse_cuts))
        )
    return levels


@st.composite
def hierarchy_cases(draw):
    d = draw(st.integers(min_value=1, max_value=3))
    cardinalities = tuple(
        draw(
            st.lists(
                st.integers(min_value=2, max_value=8), min_size=d, max_size=d
            )
        )
    )
    family = draw(st.sampled_from(SCENARIO_FAMILIES))
    n = draw(st.integers(min_value=0, max_value=64))
    dataset = scenario_dataset(
        family,
        n,
        cardinalities,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        skew=draw(st.sampled_from([0.6, 1.4, 2.0])),
        correlation=draw(st.sampled_from([0.0, 0.7])),
    )
    names = dataset.schema.names
    indices = draw(
        st.sets(
            st.integers(min_value=0, max_value=d - 1), min_size=1, max_size=d
        )
    )
    chains = {
        names[i]: draw(_chain(names[i], cardinalities[i])) for i in indices
    }
    threshold = draw(st.integers(min_value=1, max_value=max(2, n + 2)))
    return dataset, chains, threshold


@st.composite
def bucket_cases(draw):
    d = draw(st.integers(min_value=1, max_value=2))
    cardinalities = tuple(
        draw(
            st.lists(
                st.integers(min_value=2, max_value=4), min_size=d, max_size=d
            )
        )
    )
    n = draw(st.integers(min_value=1, max_value=48))
    dataset = scenario_dataset(
        "uniform",
        n,
        cardinalities,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    values = np.array(
        draw(
            st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    counts = draw(st.sampled_from([(2,), (2, 4), (2, 4, 8), (3, 6)]))
    threshold = draw(st.integers(min_value=1, max_value=max(2, n)))
    return dataset, values, counts, threshold


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------
def _matches(rows, pattern):
    if len(rows) == 0:
        return np.zeros(0, dtype=bool)
    mask = np.ones(len(rows), dtype=bool)
    for index, value in enumerate(pattern):
        if value != X:
            mask &= rows[:, index] == value
    return mask


def _coarse_patterns(cardinalities, limit=64):
    """A deterministic sample of the coarse pattern lattice."""
    patterns = [Pattern.root(len(cardinalities))]
    for index, cardinality in enumerate(cardinalities):
        fresh = []
        for pattern in patterns:
            for value in range(cardinality):
                values = list(pattern.values)
                values[index] = value
                fresh.append(Pattern(values))
        patterns.extend(fresh)
        if len(patterns) > limit:
            break
    return patterns[:limit]


def _check_round_trip(dataset, chains):
    hierarchies = [chain[-1] for chain in chains.values()]
    roll = rollup(dataset, hierarchies)
    for pattern in _coarse_patterns(roll.dataset.cardinalities):
        coarse_mask = _matches(roll.dataset.rows, pattern)
        fine = drill_down(pattern, roll)
        fine_masks = [_matches(dataset.rows, p) for p in fine]
        union = np.zeros(dataset.n, dtype=bool)
        overlap = 0
        for mask in fine_masks:
            overlap += int((union & mask).sum())
            union |= mask
        # Union of fine-pattern matches == coarse-pattern matches...
        assert np.array_equal(union, coarse_mask), pattern
        # ...and the expansions are disjoint, so coverages sum exactly.
        assert overlap == 0, pattern
        assert sum(int(m.sum()) for m in fine_masks) == int(coarse_mask.sum())


def _check_equivalence(dataset, chains, threshold, backend):
    stack = HierarchyStack.of(dataset, chains)
    result = find_mups_hierarchical(
        dataset, stack, threshold=threshold, engine=backend, remedies=False
    )
    for level in range(stack.depth + 1):
        roll = stack.rollup_to(dataset, level)
        independent = find_mups(roll.dataset, threshold=threshold, engine=backend)
        assert result.at_level(level).mups == independent.mups, (backend, level)
        assert result.at_level(level).threshold == independent.threshold


def _check_bucket_sweep(dataset, values, counts, threshold):
    sweep = bucketize_sweep(dataset, values, counts, threshold=threshold)
    for point in sweep.points:
        independent = find_mups(
            bucketized_dataset(dataset, values, point.buckets),
            threshold=threshold,
        )
        assert point.result.mups == independent.mups, point.buckets


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
@given(hierarchy_cases())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_drill_down_inverts_rollup(case):
    """Union of fine-pattern matches == coarse-pattern matches."""
    dataset, chains, _threshold = case
    _check_round_trip(dataset, chains)


@pytest.mark.parametrize("backend", BACKENDS)
@given(hierarchy_cases())
@settings(max_examples=10, deadline=None, derandomize=True)
def test_hierarchical_matches_flat_at_every_level(backend, case):
    """Bit-identical MUP sets at every stack level, on every backend."""
    dataset, chains, threshold = case
    _check_equivalence(dataset, chains, threshold, backend)


@given(bucket_cases())
@settings(max_examples=20, deadline=None, derandomize=True)
def test_bucket_sweep_matches_independent_runs(case):
    """Each swept width matches an independent bucketize-then-search run."""
    dataset, values, counts, threshold = case
    _check_bucket_sweep(dataset, values, counts, threshold)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@given(hierarchy_cases())
@settings(max_examples=40, deadline=None)
def test_hierarchical_matches_flat_deep(backend, case):
    """Slow-job profile: a deeper randomized equivalence sweep."""
    dataset, chains, threshold = case
    _check_equivalence(dataset, chains, threshold, backend)


@pytest.mark.slow
@given(bucket_cases())
@settings(max_examples=40, deadline=None)
def test_bucket_sweep_matches_independent_runs_deep(case):
    """Slow-job profile: a deeper randomized bucket-sweep equivalence."""
    dataset, values, counts, threshold = case
    _check_bucket_sweep(dataset, values, counts, threshold)
