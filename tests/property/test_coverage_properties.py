"""Property-based tests for coverage computation (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.coverage import CoverageOracle, coverage_scan
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset, Schema


@st.composite
def datasets(draw, max_d: int = 4, max_card: int = 4, max_n: int = 40):
    d = draw(st.integers(min_value=1, max_value=max_d))
    cardinalities = draw(
        st.lists(st.integers(min_value=1, max_value=max_card), min_size=d, max_size=d)
    )
    n = draw(st.integers(min_value=0, max_value=max_n))
    rows = [
        [draw(st.integers(min_value=0, max_value=c - 1)) for c in cardinalities]
        for _ in range(n)
    ]
    schema = Schema.of([f"A{i + 1}" for i in range(d)], cardinalities)
    array = np.asarray(rows, dtype=np.int32).reshape(n, d)
    return Dataset(schema, array)


@st.composite
def dataset_and_pattern(draw):
    dataset = draw(datasets())
    values = []
    for c in dataset.cardinalities:
        values.append(draw(st.sampled_from([X] + list(range(c)))))
    return dataset, Pattern(values)


@given(dataset_and_pattern())
def test_oracle_matches_literal_scan(case):
    dataset, pattern = case
    oracle = CoverageOracle(dataset)
    assert oracle.coverage(pattern) == coverage_scan(dataset, pattern)


@given(dataset_and_pattern())
def test_coverage_monotone_under_specialization(case):
    dataset, pattern = case
    oracle = CoverageOracle(dataset)
    space = PatternSpace.for_dataset(dataset)
    coverage = oracle.coverage(pattern)
    for child in space.children(pattern):
        assert oracle.coverage(child) <= coverage


@given(dataset_and_pattern())
def test_sibling_family_partitions_coverage(case):
    # PATTERN-COMBINER's identity: cov(P) = Σ cov over a disjoint family.
    dataset, pattern = case
    free = pattern.nondeterministic_indices()
    if not free:
        return
    oracle = CoverageOracle(dataset)
    space = PatternSpace.for_dataset(dataset)
    pivot = free[0]
    family = space.sibling_family(pattern, pivot)
    assert oracle.coverage(pattern) == sum(oracle.coverage(s) for s in family)


@given(datasets())
def test_root_coverage_is_n(dataset):
    oracle = CoverageOracle(dataset)
    assert oracle.coverage(Pattern.root(dataset.d)) == dataset.n


@given(dataset_and_pattern())
@settings(max_examples=40)
def test_mask_threading_equals_direct(case):
    dataset, pattern = case
    oracle = CoverageOracle(dataset)
    mask = oracle.full_mask()
    for index in pattern.deterministic_indices():
        mask = oracle.restrict_mask(mask, index, pattern[index])
    assert oracle.coverage_of_mask(mask) == oracle.coverage(pattern)


@given(datasets())
@settings(max_examples=40)
def test_unique_rows_conserve_multiplicity(dataset):
    _unique, counts = dataset.unique_rows()
    assert counts.sum() == dataset.n
