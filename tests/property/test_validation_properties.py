"""Property-based tests for validation rules and oracle semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace

CARDINALITIES = (2, 3, 2, 3)
SPACE = PatternSpace(CARDINALITIES)


@st.composite
def rules(draw):
    clause_count = draw(st.integers(min_value=1, max_value=3))
    attributes = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(CARDINALITIES) - 1),
            min_size=clause_count,
            max_size=clause_count,
            unique=True,
        )
    )
    clauses = []
    for attribute in attributes:
        cardinality = CARDINALITIES[attribute]
        values = draw(
            st.lists(
                st.integers(min_value=0, max_value=cardinality - 1),
                min_size=1,
                max_size=cardinality,
                unique=True,
            )
        )
        clauses.append((attribute, values))
    return ValidationRule(clauses)


@st.composite
def combos(draw):
    return tuple(
        draw(st.integers(min_value=0, max_value=c - 1)) for c in CARDINALITIES
    )


@given(rules(), combos())
def test_oracle_is_negation_of_any_rule(rule, combo):
    oracle = ValidationOracle([rule])
    assert oracle.is_valid_values(combo) == (not rule.satisfied_by_values(combo))


@given(rules(), combos())
def test_full_prefix_invalidation_agrees_with_validity(rule, combo):
    oracle = ValidationOracle([rule])
    # With the whole combination assigned, prefix invalidation is exactly
    # invalidity.
    assert oracle.invalidates_prefix(list(combo)) == (
        not oracle.is_valid_values(combo)
    )


@given(rules(), combos())
def test_prefix_invalidation_is_monotone(rule, combo):
    # Once a prefix is invalid, every longer prefix stays invalid.
    oracle = ValidationOracle([rule])
    invalid_seen = False
    for end in range(1, len(combo) + 1):
        now = oracle.invalidates_prefix(list(combo[:end]))
        if invalid_seen:
            assert now
        invalid_seen = now


@given(rules(), combos())
def test_pattern_satisfaction_matches_value_satisfaction(rule, combo):
    pattern = Pattern(combo)
    assert rule.satisfied_by(pattern) == rule.satisfied_by_values(combo)


@given(rules())
@settings(max_examples=25)
def test_rule_never_satisfied_by_more_general_pattern_unless_values_agree(rule):
    # For any pattern satisfying the rule, replacing a clause attribute
    # with X breaks satisfaction (X never satisfies a clause).
    for combo in SPACE.all_combinations():
        if rule.satisfied_by_values(combo):
            pattern = Pattern(combo)
            for attribute, _values in rule.clauses:
                assert not rule.satisfied_by(pattern.with_value(attribute, -1))
            break
