"""Unit tests for before/after coverage diffs."""

import pytest

from repro.analysis.diff import coverage_diff
from repro.core.enhancement.greedy import enhance_coverage
from repro.core.mups import deepdiver, find_mups
from repro.core.pattern import Pattern
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import ReproError


class TestCoverageDiff:
    def test_acquisition_resolves_targets(self):
        dataset = random_categorical_dataset(60, (2, 3, 2), seed=21, skew=1.1)
        tau = 5
        before = deepdiver(dataset, tau)
        _plan, enhanced = enhance_coverage(dataset, before.mups, level=2, threshold=tau)
        after = deepdiver(enhanced, tau)
        diff = coverage_diff(before, after, dataset.d)
        assert diff.after_level >= 2
        assert diff.improved or before.max_covered_level(dataset.d) >= 2
        # Enhancement only adds rows: nothing can regress.
        assert diff.regressed == ()

    def test_new_specific_mups_are_refined(self):
        dataset = random_categorical_dataset(60, (2, 2, 2), seed=22, skew=1.3)
        tau = 6
        before = deepdiver(dataset, tau)
        if not before.mups:
            pytest.skip("seed produced a fully covered dataset")
        _plan, enhanced = enhance_coverage(dataset, before.mups, level=1, threshold=tau)
        after = deepdiver(enhanced, tau)
        diff = coverage_diff(before, after, dataset.d)
        for pattern in diff.refined:
            assert any(old.dominates(pattern) for old in diff.resolved)

    def test_identical_runs_diff_is_empty(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        diff = coverage_diff(result, result, example1_dataset.d)
        assert diff.resolved == () and diff.refined == () and diff.regressed == ()
        assert diff.persisting == result.mups
        assert not diff.improved

    def test_threshold_mismatch_rejected(self, example1_dataset):
        a = find_mups(example1_dataset, threshold=1)
        b = find_mups(example1_dataset, threshold=2)
        with pytest.raises(ReproError):
            coverage_diff(a, b, example1_dataset.d)

    def test_render_mentions_levels(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        diff = coverage_diff(result, result, example1_dataset.d)
        text = diff.render(example1_dataset.schema)
        assert "max covered level" in text
        assert "persisting" in text
