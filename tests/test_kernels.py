"""The compiled kernel tier: resolution, dispatch, and bit-identity.

The kernels module registers a numba-jitted and a pure-python/numpy
implementation per hot-path operation behind one feature flag.  These
tests pin the flag matrix (argument beats environment beats
availability), the import fallback when numba is absent, the routing of
``kernel_tier`` from configs/environment into built engines, and — for
every available tier — the kernels' exact agreement with brute-force
references.  The property fuzz harness additionally locks the tiers
together engine-by-engine.
"""

import builtins
import importlib.util
import sys

import numpy as np
import pytest

from repro.core.engine import (
    AUTO,
    CompressedEngine,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    get_kernels,
    numba_available,
    resolve_engine,
)
from repro.core.engine.kernels import (
    KERNEL_TIERS,
    PYTHON_KERNELS,
    REPRO_KERNELS_ENV,
    resolve_kernel_tier,
)
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError

#: Every tier runnable in this process; jit only with numba installed.
TIERS = ["python"] + (["jit"] if numba_available() else [])


@pytest.fixture
def dataset():
    return random_categorical_dataset(60, (3, 2, 2), seed=11, skew=0.9)


class TestResolution:
    def test_known_tiers(self):
        assert KERNEL_TIERS == ("auto", "jit", "python")
        assert resolve_kernel_tier("python") == "python"
        assert resolve_kernel_tier(None) in ("jit", "python")
        assert resolve_kernel_tier("auto") == resolve_kernel_tier(None)

    def test_unknown_tier_rejected(self):
        with pytest.raises(EngineError, match="kernel_tier"):
            resolve_kernel_tier("fortran")

    def test_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_KERNELS_ENV, "python")
        assert resolve_kernel_tier(None) == "python"
        assert resolve_kernel_tier("auto") == "python"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_KERNELS_ENV, "python")
        if numba_available():
            assert resolve_kernel_tier("jit") == "jit"
        else:
            with pytest.raises(EngineError, match="numba"):
                resolve_kernel_tier("jit")

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(REPRO_KERNELS_ENV, "warp")
        with pytest.raises(EngineError, match=REPRO_KERNELS_ENV):
            resolve_kernel_tier(None)

    def test_forced_jit_without_numba_raises(self):
        if numba_available():
            pytest.skip("numba installed; refusal unreachable")
        with pytest.raises(EngineError, match="pip install"):
            resolve_kernel_tier("jit")

    def test_get_kernels_tiers(self):
        assert get_kernels("python") is PYTHON_KERNELS
        assert get_kernels(None).tier in ("jit", "python")
        if numba_available():
            assert get_kernels("jit").tier == "jit"


class TestImportFallback:
    def test_module_imports_without_numba(self, monkeypatch):
        """A fresh import with numba unimportable lands on the python
        tier instead of crashing."""
        real_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba disabled for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.delenv(REPRO_KERNELS_ENV, raising=False)
        monkeypatch.setattr(builtins, "__import__", no_numba)
        monkeypatch.delitem(sys.modules, "numba", raising=False)
        spec = importlib.util.find_spec("repro.core.engine.kernels")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.NUMBA_AVAILABLE is False
        assert module.numba_available() is False
        assert module.JIT_KERNELS is None
        assert module.get_kernels("auto").tier == "python"
        with pytest.raises(EngineError, match="numba"):
            module.resolve_kernel_tier("jit")


class TestEngineRouting:
    def test_env_python_forces_engines(self, monkeypatch, dataset):
        monkeypatch.setenv(REPRO_KERNELS_ENV, "python")
        for cls in (DenseBoolEngine, PackedBitsetEngine, CompressedEngine):
            engine = cls(dataset)
            assert engine.kernel_tier == "python"
            engine.close()

    def test_config_tier_reaches_built_engines(self, dataset):
        for backend in ("dense", "packed", "sharded", "compressed"):
            config = EngineConfig(backend=backend, kernel_tier="python")
            engine = resolve_engine(config, dataset)
            assert engine.kernel_tier == "python"
            engine.close()

    def test_template_carries_requested_tier(self, dataset):
        engine = PackedBitsetEngine(dataset, kernel_tier="python")
        template = engine.template()
        assert isinstance(template, EngineConfig)
        assert template.kernel_tier == "python"
        rebuilt = template(dataset)
        assert rebuilt.kernel_tier == "python"

    def test_unset_tier_stays_out_of_templates(self, dataset):
        assert PackedBitsetEngine(dataset).template().kernel_tier is None

    def test_sharded_inner_engines_inherit_the_tier(self, dataset):
        engine = ShardedEngine(dataset, shards=2, kernel_tier="python")
        try:
            assert engine.kernel_tier == "python"
        finally:
            engine.close()

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_jit_engine_matches_python_engine(self, dataset):
        from repro.core.pattern import Pattern

        jit = PackedBitsetEngine(dataset, kernel_tier="jit")
        python = PackedBitsetEngine(dataset, kernel_tier="python")
        space_root = Pattern.root(dataset.d)
        assert jit.coverage(space_root) == python.coverage(space_root)


def _random_words(rng, n):
    return rng.integers(0, 1 << 64, size=n, dtype=np.uint64)


def _brute_select_runs(array, runs):
    keep = [
        v for v in array.tolist() if any(s <= v < t for s, t in runs.tolist())
    ]
    return np.array(keep, dtype=array.dtype)


@pytest.mark.parametrize("tier", TIERS)
class TestKernelCorrectness:
    """Each tier against brute-force references on random inputs."""

    def test_count(self, tier):
        rng = np.random.default_rng(0)
        kernels = get_kernels(tier)
        words = _random_words(rng, 37)
        counts = rng.integers(1, 9, size=words.size * 64).astype(np.int64)
        bits = np.unpackbits(
            words.view(np.uint8), bitorder="little"
        ).astype(bool)
        assert kernels.count(words, None) == int(bits.sum())
        assert kernels.count(words, counts) == int(counts[bits].sum())
        assert kernels.count(np.zeros(0, dtype=np.uint64), None) == 0

    def test_count_rows(self, tier):
        rng = np.random.default_rng(1)
        kernels = get_kernels(tier)
        matrix = _random_words(rng, 6 * 17).reshape(6, 17)
        counts = rng.integers(1, 9, size=17 * 64).astype(np.int64)
        expected_uniform = [kernels.count(row, None) for row in matrix]
        expected_weighted = [kernels.count(row, counts) for row in matrix]
        assert kernels.count_rows(matrix, None).tolist() == expected_uniform
        assert kernels.count_rows(matrix, counts).tolist() == expected_weighted
        empty = kernels.count_rows(np.zeros((0, 17), dtype=np.uint64), None)
        assert empty.tolist() == []

    def test_and_rows(self, tier):
        rng = np.random.default_rng(2)
        kernels = get_kernels(tier)
        window = _random_words(rng, 11)
        words = _random_words(rng, 5 * 11).reshape(5, 11)
        rows = [3, 0, 4]
        expected = window & words[3] & words[0] & words[4]
        got = kernels.and_rows(window, words, rows)
        assert got.dtype == np.uint64
        assert np.array_equal(got, expected)
        # No rows: the window itself, as a fresh copy.
        untouched = kernels.and_rows(window, words, [])
        assert np.array_equal(untouched, window)
        assert untouched is not window

    def test_and_family(self, tier):
        rng = np.random.default_rng(3)
        kernels = get_kernels(tier)
        window = _random_words(rng, 9)
        block = _random_words(rng, 4 * 9).reshape(4, 9)
        got = kernels.and_family(window, block)
        assert got.shape == block.shape
        for r in range(block.shape[0]):
            assert np.array_equal(got[r], window & block[r])

    def test_intersect_sorted(self, tier):
        rng = np.random.default_rng(4)
        kernels = get_kernels(tier)
        a = np.unique(rng.integers(0, 5000, size=900)).astype(np.uint16)
        b = np.unique(rng.integers(0, 5000, size=40)).astype(np.uint16)
        expected = np.intersect1d(a, b)
        # Both argument orders: galloping skips on the longer side.
        assert np.array_equal(kernels.intersect_sorted(a, b), expected)
        assert np.array_equal(kernels.intersect_sorted(b, a), expected)
        empty = np.zeros(0, dtype=np.uint16)
        assert kernels.intersect_sorted(a, empty).size == 0

    def test_array_select_bitmap(self, tier):
        rng = np.random.default_rng(5)
        kernels = get_kernels(tier)
        words = _random_words(rng, 16)
        array = np.unique(rng.integers(0, 16 * 64, size=300)).astype(np.uint16)
        bits = np.unpackbits(
            words.view(np.uint8), bitorder="little"
        ).astype(bool)
        expected = array[bits[array.astype(np.int64)]]
        assert np.array_equal(kernels.array_select_bitmap(array, words), expected)

    def test_array_select_runs(self, tier):
        rng = np.random.default_rng(6)
        kernels = get_kernels(tier)
        bounds = np.unique(rng.integers(0, 2000, size=14))
        runs = bounds[: (bounds.size // 2) * 2].reshape(-1, 2).astype(np.int32)
        array = np.unique(rng.integers(0, 2000, size=400)).astype(np.uint16)
        expected = _brute_select_runs(array, runs)
        assert np.array_equal(kernels.array_select_runs(array, runs), expected)

    def test_intersect_runs(self, tier):
        rng = np.random.default_rng(7)
        kernels = get_kernels(tier)

        def random_runs(seed_offset):
            bounds = np.unique(
                np.random.default_rng(7 + seed_offset).integers(
                    0, 500, size=20
                )
            )
            return bounds[: (bounds.size // 2) * 2].reshape(-1, 2).astype(
                np.int32
            )

        a, b = random_runs(0), random_runs(1)
        got = kernels.intersect_runs(a, b)
        covered_a = {v for s, t in a.tolist() for v in range(s, t)}
        covered_b = {v for s, t in b.tolist() for v in range(s, t)}
        covered_got = {v for s, t in got.tolist() for v in range(s, t)}
        assert covered_got == (covered_a & covered_b)
        # Output runs stay sorted, disjoint, and non-empty.
        flat = got.reshape(-1)
        assert np.all(flat[1:] >= flat[:-1])
        assert np.all(got[:, 0] < got[:, 1])
        empty = np.zeros((0, 2), dtype=np.int32)
        assert kernels.intersect_runs(a, empty).shape == (0, 2)
