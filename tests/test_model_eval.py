"""Unit + integration tests for the Figure 11 evaluation harness."""

import numpy as np
import pytest

from repro.data.compas import load_compas
from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError
from repro.ml.model_eval import (
    cross_validate,
    removed_subgroup_accuracy,
    subgroup_coverage_experiment,
)


class TestCrossValidate:
    def test_separable_data_scores_high(self):
        rng = np.random.default_rng(0)
        features = rng.integers(0, 2, size=(300, 2))
        labels = features[:, 0]
        accuracy, f1 = cross_validate(features, labels, folds=5)
        assert accuracy > 0.95
        assert f1 > 0.95

    def test_fold_bounds(self):
        features = np.zeros((10, 1), dtype=int)
        labels = np.zeros(10, dtype=int)
        with pytest.raises(DataError):
            cross_validate(features, labels, folds=1)
        with pytest.raises(DataError):
            cross_validate(features, labels, folds=11)

    def test_compas_matches_paper_band(self):
        # The paper reports accuracy 0.76 and f1 0.7 on a random test set.
        dataset = load_compas()
        accuracy, f1 = cross_validate(dataset.rows, dataset.label("reoffended"))
        assert 0.70 <= accuracy <= 0.82
        assert 0.65 <= f1 <= 0.85


class TestSubgroupExperiment:
    @pytest.fixture(scope="class")
    def compas(self):
        return load_compas()

    @pytest.fixture(scope="class")
    def hf_mask(self, compas):
        rows = compas.rows
        return (rows[:, 0] == 1) & (rows[:, 2] == 2)

    def test_row_per_increment(self, compas, hf_mask):
        rows = subgroup_coverage_experiment(
            compas, "reoffended", hf_mask, increments=(0, 20, 40)
        )
        assert [r.subgroup_in_training for r in rows] == [0, 20, 40]

    def test_figure11_shape(self, compas, hf_mask):
        rows = subgroup_coverage_experiment(compas, "reoffended", hf_mask)
        # Zero-coverage model performs poorly on the subgroup...
        assert rows[0].subgroup_accuracy <= 0.55
        # ...and remedying coverage lifts it substantially...
        assert rows[-1].subgroup_accuracy >= rows[0].subgroup_accuracy + 0.2
        # ...while the overall accuracy stays flat (same model family).
        overall = {round(r.overall_accuracy, 2) for r in rows}
        assert len(overall) == 1

    def test_mask_length_checked(self, compas):
        with pytest.raises(DataError):
            subgroup_coverage_experiment(compas, "reoffended", np.ones(3, dtype=bool))

    def test_subgroup_too_small_rejected(self, compas):
        rows = compas.rows
        tiny = (rows[:, 2] == 2) & (rows[:, 3] == 3)  # two widowed Hispanics
        with pytest.raises(DataError):
            subgroup_coverage_experiment(compas, "reoffended", tiny)

    def test_fo_mo_asymmetry(self, compas):
        # §V-B2: FO (other-race women) deviate more than MO (other-race men):
        # paper accuracies 0.39 vs 0.59.
        rows = compas.rows
        fo = (rows[:, 0] == 1) & (rows[:, 2] == 3)
        mo = (rows[:, 0] == 0) & (rows[:, 2] == 3)
        fo_accuracy = removed_subgroup_accuracy(compas, "reoffended", fo)
        mo_accuracy = removed_subgroup_accuracy(compas, "reoffended", mo)
        assert fo_accuracy < mo_accuracy
        assert fo_accuracy < 0.5


class TestSmallSynthetic:
    def test_experiment_on_synthetic_subgroup(self):
        rng = np.random.default_rng(5)
        features = rng.integers(0, 2, size=(500, 3))
        subgroup = features[:, 0] == 1
        labels = np.where(subgroup, 1 - features[:, 1], features[:, 1])
        dataset = Dataset(
            Schema.binary(3), features.astype(np.int32), labels={"y": labels}
        )
        rows = subgroup_coverage_experiment(
            dataset, "y", subgroup, increments=(0, 40), test_size=10
        )
        assert rows[0].subgroup_accuracy < rows[1].subgroup_accuracy
