"""Compressed-engine container edge cases and configuration errors.

The compressed backend is the first whose memory footprint is
data-dependent, so its edge cases are *structural*: empty chunks, all-ones
run containers, masks crossing the 64Ki chunk boundary, sorted-array ↔
bitmap promotion/demotion, and the container-threshold validation rules.
Everything here is pinned against the dense/packed references.
"""

import csv

import numpy as np
import pytest

from repro.cli import main
from repro.core.engine import (
    AUTO,
    CHUNK_BITS,
    CompressedEngine,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    plan_engine,
    resolve_engine,
)
from repro.core.engine.compressed import ARRAY, BITMAP, RUN
from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError


@pytest.fixture
def dataset():
    return random_categorical_dataset(80, (3, 9, 2), seed=13, skew=0.6)


def make_boundary_dataset(n=70_000):
    """``n`` distinct combinations — more than one 64Ki chunk's worth."""
    assert n > CHUNK_BITS
    rows = np.stack([np.arange(n) // 300, np.arange(n) % 300], axis=1)
    schema = Schema.of(["hi", "lo"], [(n + 299) // 300, 300])
    return Dataset(schema, rows.astype(np.int32))


class TestContainers:
    def test_cardinality_one_attribute_is_all_ones_run(self, dataset):
        """A cardinality-1 attribute's membership vector is one full run."""
        ones = Dataset(
            Schema.of(["only", "other"], [1, 6]),
            np.asarray([[0, v % 6] for v in range(12)], dtype=np.int32),
        )
        engine = CompressedEngine(ones)
        mask = engine.value_mask(0, 0)
        assert mask.container_kinds() == {0: RUN}
        kind, runs = mask.chunks[0]
        assert runs.tolist() == [[0, engine.unique_count]]
        assert engine.count(mask) == ones.n

    def test_absent_value_is_empty_chunks(self, dataset):
        """A value no row takes compresses to an absent-chunk bitmap."""
        missing = Dataset(
            Schema.of(["a"], [4]),
            np.asarray([[0], [1]], dtype=np.int32),
        )
        engine = CompressedEngine(missing)
        mask = engine.value_mask(0, 3)
        assert mask.chunks == {}
        assert engine.count(mask) == 0
        assert not engine.mask_to_bool(mask).any()
        # Restricting anything by the empty vector stays empty.
        child = engine.restrict(engine.full_mask(), 0, 3)
        assert child.chunks == {} and engine.count(child) == 0

    def test_index_rows_pick_expected_container_kinds(self):
        """Sparse high-cardinality rows go sorted-array, dense ones run/bitmap."""
        data = random_categorical_dataset(3_000, (40, 2), seed=3, skew=0.5)
        engine = CompressedEngine(data)
        sparse_kinds = {
            kind
            for value in range(40)
            for kind in engine.value_mask(0, value).container_kinds().values()
        }
        assert sparse_kinds == {ARRAY}

    def test_bitmap_demotes_to_array_after_intersection(self):
        """Promotion/demotion round-trip: arrays promoted to bitmaps at a
        tiny array_cutoff demote back to sorted arrays once an AND shrinks
        the result under the cutoff again."""
        data = random_categorical_dataset(400, (2, 2), seed=9, skew=0.4)
        engine = CompressedEngine(data, array_cutoff=1, run_cutoff=1)
        # In the sorted unique order (00, 01, 10, 11) attribute 1's value-0
        # bits alternate: two runs (over run_cutoff) and two set bits (over
        # array_cutoff) leave only the bitmap representation.
        promoted = engine.value_mask(1, 0)
        assert set(promoted.container_kinds().values()) == {BITMAP}
        narrow = engine.match_mask(Pattern.of(0, 0))
        # The intersection holds at most one combination on this 2x2
        # domain, which fits array_cutoff=1 — it must have demoted.
        kinds = set(narrow.container_kinds().values())
        assert kinds <= {ARRAY}
        reference = DenseBoolEngine(data)
        assert engine.count(narrow) == reference.coverage(Pattern.of(0, 0))

    def test_stock_cutoffs_round_trip_against_dense(self, dataset):
        reference = DenseBoolEngine(dataset)
        engine = CompressedEngine(dataset)
        for pattern in (
            Pattern.root(3),
            Pattern.of(1, X, X),
            Pattern.of(X, 7, 1),
            Pattern.of(2, 8, 0),
        ):
            assert engine.coverage(pattern) == reference.coverage(pattern)
            assert np.array_equal(
                engine.mask_to_bool(engine.match_mask(pattern)),
                reference.mask_to_bool(reference.match_mask(pattern)),
            )


class TestRunKernels:
    """The interval kernels, driven directly on crafted containers.

    Run x run intersections need two multi-run containers in one chunk —
    rare through the public API (the full-run fast path short-circuits
    most of them), so these tests feed the kernel hand-built containers.
    """

    @pytest.fixture
    def engine(self):
        data = random_categorical_dataset(50, (2, 2), seed=2, skew=0.5)
        return CompressedEngine(data)

    @staticmethod
    def _runs(*pairs):
        return (RUN, np.asarray(pairs, dtype=np.int32))

    def test_run_run_interval_intersection(self, engine):
        kind, data = engine._intersect(
            self._runs([0, 5], [10, 20], [30, 40]),
            self._runs([3, 12], [18, 35]),
            chunk_len=64,
        )
        assert kind == RUN
        assert data.tolist() == [[3, 5], [10, 12], [18, 20], [30, 35]]

    def test_disjoint_runs_intersect_to_none(self, engine):
        assert (
            engine._intersect(
                self._runs([0, 5]), self._runs([10, 20]), chunk_len=64
            )
            is None
        )

    def test_run_overflow_normalizes_to_array_or_bitmap(self):
        data = random_categorical_dataset(50, (2, 2), seed=2, skew=0.5)
        engine = CompressedEngine(data, run_cutoff=1, array_cutoff=8)
        # Two surviving intervals exceed run_cutoff=1; eight set bits fit
        # array_cutoff=8 -> sorted array.
        kind, payload = engine._intersect(
            self._runs([0, 8], [16, 24]),
            self._runs([4, 20]),
            chunk_len=64,
        )
        assert kind == ARRAY
        assert payload.tolist() == [4, 5, 6, 7, 16, 17, 18, 19]
        # With the array door closed too, the result promotes to bitmap.
        tight = CompressedEngine(data, run_cutoff=1, array_cutoff=1)
        kind, payload = tight._intersect(
            self._runs([0, 8], [16, 24]),
            self._runs([4, 20]),
            chunk_len=64,
        )
        assert kind == BITMAP
        assert int(payload[0]) == sum(
            1 << b for b in [4, 5, 6, 7, 16, 17, 18, 19]
        )

    def test_multi_run_weighted_count(self):
        rows = [[0, 0]] * 4 + [[0, 1]] * 2 + [[1, 0]] * 7 + [[1, 1]]
        data = Dataset(
            Schema.of(["a", "b"], [2, 2]),
            np.asarray(rows, dtype=np.int32),
        )
        engine = CompressedEngine(data)
        from repro.core.engine import CompressedBitmap

        # Unique order is 00, 01, 10, 11 -> two one-bit runs select the
        # multiplicity-4 and multiplicity-7 combinations.
        mask = CompressedBitmap(4, {0: self._runs([0, 1], [2, 3])})
        assert engine.count(mask) == 11

    def test_uniform_bitmap_cardinality_and_repr(self):
        rows = np.asarray([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.int32)
        data = Dataset(Schema.of(["a", "b"], [2, 2]), rows)
        engine = CompressedEngine(data, array_cutoff=1, run_cutoff=1)
        mask = engine.value_mask(1, 1)  # alternating bits -> bitmap
        assert mask.container_kinds() == {0: BITMAP}
        assert engine.count(mask) == 2  # uniform popcount path
        assert "CompressedBitmap" in repr(mask)
        assert "bitmap" in repr(mask)


class TestChunkBoundaries:
    def test_masks_crossing_the_chunk_boundary(self):
        """Queries over >64Ki distinct combinations span multiple chunks
        and must agree bit-for-bit with the packed reference."""
        data = make_boundary_dataset()
        packed = PackedBitsetEngine(data)
        engine = CompressedEngine(data)
        assert engine.unique_count > CHUNK_BITS  # really multi-chunk
        patterns = [
            Pattern.root(2),
            Pattern.of(CHUNK_BITS // 300, X),  # straddles the boundary
            Pattern.of(X, 299),
            Pattern.of(0, 0),
        ]
        for pattern in patterns:
            assert engine.coverage(pattern) == packed.coverage(pattern)
        assert list(engine.coverage_many(patterns)) == list(
            packed.coverage_many(patterns)
        )
        family_c = engine.restrict_children(engine.full_mask(), 0)
        family_p = packed.restrict_children(packed.full_mask(), 0)
        for child_c, child_p in zip(family_c, family_p):
            assert np.array_equal(
                engine.mask_to_bool(child_c), packed.mask_to_bool(child_p)
            )

    def test_multi_chunk_memory_beats_packed_on_sparse_domain(self):
        data = make_boundary_dataset()
        packed = PackedBitsetEngine(data)
        engine = CompressedEngine(data)
        assert engine.index_nbytes * 4 <= packed.index_nbytes

    def test_disjoint_chunk_masks_intersect_empty(self):
        """Rows living in different chunks share no chunk keys at all."""
        data = make_boundary_dataset()
        engine = CompressedEngine(data)
        first = engine.value_mask(0, 0)  # entirely in chunk 0
        last = engine.value_mask(0, data.cardinalities[0] - 1)  # chunk 1
        assert set(first.container_kinds()) != set(last.container_kinds())
        result = engine._and(first, last)
        assert result.chunks == {}
        assert engine.count(result) == 0


class TestThresholdValidation:
    @pytest.mark.parametrize("options", [
        {"array_cutoff": 0},
        {"array_cutoff": -5},
        {"array_cutoff": CHUNK_BITS + 1},
    ])
    def test_invalid_array_cutoff_rejected(self, options):
        with pytest.raises(EngineError, match="array_cutoff"):
            EngineConfig(backend="compressed", **options)

    def test_invalid_run_cutoff_rejected(self):
        with pytest.raises(EngineError, match="run_cutoff"):
            EngineConfig(backend="compressed", run_cutoff=0)

    def test_constructor_routes_through_the_same_validator(self, dataset):
        with pytest.raises(EngineError, match="array_cutoff"):
            CompressedEngine(dataset, array_cutoff=0)
        with pytest.raises(EngineError, match="run_cutoff"):
            CompressedEngine(dataset, run_cutoff=-1)

    @pytest.mark.parametrize("backend", ["dense", "packed", "sharded"])
    def test_cutoffs_rejected_on_other_backends(self, backend):
        with pytest.raises(EngineError, match="--engine compressed"):
            EngineConfig(backend=backend, array_cutoff=16)

    def test_sharded_knobs_rejected_on_compressed(self):
        with pytest.raises(EngineError, match="--engine sharded"):
            EngineConfig(backend="compressed", shards=4)

    def test_auto_cannot_force_both_backends(self):
        with pytest.raises(EngineError, match="cannot honour both"):
            EngineConfig(backend=AUTO, shards=2, array_cutoff=16)

    def test_legacy_kwargs_validate_cutoffs_too(self, dataset):
        with pytest.raises(EngineError, match="array_cutoff"):
            resolve_engine("compressed", dataset, array_cutoff=0)


class TestPlannerIntegration:
    def test_sparse_domain_auto_selects_compressed(self):
        sparse = random_categorical_dataset(
            20_000, (96, 80, 64), seed=5, skew=0.4
        )
        plan = plan_engine(sparse)
        assert plan.config.backend == "compressed"
        assert any("sparsity cutoff" in line for line in plan.rationale)
        engine = plan.build(sparse)
        assert isinstance(engine, CompressedEngine)

    def test_dense_domain_stays_packed(self):
        data = random_categorical_dataset(
            50_000, (4, 4, 3, 3), seed=5, skew=0.6
        )
        plan = plan_engine(data)
        assert plan.config.backend != "compressed"

    def test_explicit_cutoffs_force_compressed(self):
        tiny = random_categorical_dataset(30, (2, 2), seed=1, skew=1.0)
        plan = plan_engine(tiny, EngineConfig(backend=AUTO, run_cutoff=8))
        assert plan.config.backend == "compressed"
        assert plan.config.run_cutoff == 8
        assert any("forced" in line for line in plan.rationale)

    def test_forced_compressed_over_budget_warns_in_rationale(self):
        """Explicit thresholds are honoured even past the memory budget,
        but the over-budget projection must be visible in the plan."""
        big = random_categorical_dataset(5_000, (40, 40, 40), seed=2, skew=0.0)
        plan = plan_engine(
            big,
            EngineConfig(
                backend=AUTO, array_cutoff=4096, max_resident_bytes=1
            ),
        )
        assert plan.config.backend == "compressed"
        assert any(
            "warning" in line and "exceeds the memory budget" in line
            for line in plan.rationale
        )

    def test_compressed_replaces_sharding_when_it_fits_one_index(self):
        from repro.core.engine.planner import (
            PACKED_MAX_INDEX_BYTES,
            WorkloadStats,
        )

        unique = 1_500_000
        cardinalities = (512, 512, 512)
        words = (unique + 63) // 64
        stats = WorkloadStats(
            rows=unique,
            d=3,
            cardinalities=cardinalities,
            projected_unique=unique,
            projected_packed_bytes=sum(cardinalities) * words * 8,
            projected_dense_bytes=sum(cardinalities) * unique,
            memory_budget_bytes=1 << 40,
            cpu_count=4,
        )
        # Packed would have to shard (projection far over the ceiling)...
        assert stats.projected_packed_bytes > PACKED_MAX_INDEX_BYTES
        # ...but the sparse domain compresses into one flat index.
        plan = plan_engine(stats)
        assert plan.config.backend == "compressed"

    def test_over_budget_sparse_domain_prefers_compressed_in_ram(self):
        """A budget packed overflows but compressed fits must plan
        compressed (in RAM), not out-of-core spill — and once even the
        compressed index overflows, out-of-core wins again."""
        from repro.core.engine.planner import WorkloadStats

        unique = 200_000
        cardinalities = (96, 80, 64)
        words = (unique + 63) // 64
        def stats(budget):
            return WorkloadStats(
                rows=unique,
                d=3,
                cardinalities=cardinalities,
                projected_unique=unique,
                projected_packed_bytes=sum(cardinalities) * words * 8,
                projected_dense_bytes=sum(cardinalities) * unique,
                memory_budget_bytes=budget,
                cpu_count=2,
            )

        fits = stats(2 << 20)  # packed ~5.7 MiB > 2 MiB; compressed ~1.4 MiB
        assert fits.projected_packed_bytes > fits.memory_budget_bytes
        assert fits.projected_compressed_bytes <= fits.memory_budget_bytes
        plan = plan_engine(fits)
        assert plan.config.backend == "compressed"
        assert any("instead of out-of-core" in line for line in plan.rationale)

        overflows = stats(256 << 10)  # even compressed exceeds 256 KiB
        plan = plan_engine(overflows)
        assert plan.config.backend == "sharded"
        assert plan.config.spill_dir is not None

    def test_describe_surfaces_density_and_projection(self):
        sparse = random_categorical_dataset(
            20_000, (96, 80, 64), seed=5, skew=0.4
        )
        text = plan_engine(sparse).describe()
        assert "compressed index" in text
        assert "density" in text

    def test_mups_match_packed_on_planned_compressed(self):
        sparse = random_categorical_dataset(
            2_000, (64, 48), seed=7, skew=0.5
        )
        from repro.core.mups.base import find_mups

        compressed = find_mups(sparse, threshold=4, engine="compressed")
        packed = find_mups(sparse, threshold=4, engine="packed")
        assert compressed.as_set() == packed.as_set()


class TestCli:
    @pytest.fixture
    def sparse_csv(self, tmp_path):
        # Uniform values so every code appears and the CSV loader infers
        # the full cardinalities back.
        data = random_categorical_dataset(
            20_000, (96, 80, 64), seed=21, skew=0.0
        )
        path = tmp_path / "sparse.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["a", "b", "c"])
            writer.writerows(data.rows.tolist())
        return str(path)

    def test_explain_plan_shows_compressed_selection(self, sparse_csv, capsys):
        code = main(
            [
                "identify",
                sparse_csv,
                "--threshold",
                "3",
                "--max-level",
                "1",
                "--explain-plan",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backend=compressed" in output
        assert "sparsity cutoff" in output

    def test_engine_compressed_flag_with_cutoffs(self, sparse_csv, capsys):
        code = main(
            [
                "identify",
                sparse_csv,
                "--threshold",
                "3",
                "--max-level",
                "1",
                "--engine",
                "compressed",
                "--array-cutoff",
                "1024",
                "--run-cutoff",
                "16",
            ]
        )
        assert code == 0


class TestLifecycle:
    def test_template_rebuild_preserves_cutoffs(self, dataset):
        other = random_categorical_dataset(40, (3, 9, 2), seed=3, skew=0.8)
        engine = CompressedEngine(
            dataset, array_cutoff=8, run_cutoff=2, mask_cache_size=5
        )
        template = engine.template()
        assert isinstance(template, EngineConfig)
        rebuilt = resolve_engine(template, other)
        assert isinstance(rebuilt, CompressedEngine)
        assert rebuilt.array_cutoff == 8
        assert rebuilt.run_cutoff == 2
        assert rebuilt.mask_cache_size == 5

    def test_close_and_context_manager_are_no_ops(self, dataset):
        with CompressedEngine(dataset) as engine:
            root = Pattern.root(3)
            assert engine.coverage(root) == dataset.n
        # In-memory backend: close() releases nothing, queries still work.
        assert engine.coverage(root) == dataset.n

    def test_cached_masks_are_isolated(self, dataset):
        engine = CompressedEngine(dataset, mask_cache_size=16)
        pattern = Pattern.of(1, X, X)
        before = engine.coverage(pattern)
        mask = engine.match_mask(pattern)
        # Clobber the caller's copy; the cache must be unaffected.
        mask.chunks.clear()
        assert engine.coverage(pattern) == before

    def test_empty_dataset(self):
        empty = Dataset(Schema.binary(2), np.zeros((0, 2), dtype=np.int32))
        engine = CompressedEngine(empty)
        root = Pattern.root(2)
        assert engine.coverage(root) == 0
        assert list(engine.coverage_many([root, root])) == [0, 0]
        assert engine.full_mask().chunks == {}
        assert engine.index_nbytes == 0

    def test_weighted_counts_use_multiplicities(self):
        data = Dataset(
            Schema.of(["a", "b"], [2, 2]),
            np.asarray(
                [[0, 0]] * 5 + [[1, 1]] * 3 + [[0, 1]], dtype=np.int32
            ),
        )
        engine = CompressedEngine(data)
        assert engine.coverage(Pattern.of(0, 0)) == 5
        assert engine.coverage(Pattern.of(0, X)) == 6
        assert engine.coverage(Pattern.root(2)) == 9
