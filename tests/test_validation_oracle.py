"""Unit tests for validation rules and the validation oracle (Defs. 10–11)."""

import pytest

from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.pattern import Pattern
from repro.data.dataset import Schema
from repro.exceptions import ValidationError


class TestValidationRule:
    def test_satisfied_by_pattern(self):
        rule = ValidationRule({0: [1], 2: [0, 1]})
        assert rule.satisfied_by(Pattern.from_string("1X0"))
        assert not rule.satisfied_by(Pattern.from_string("0X0"))

    def test_x_never_satisfies_a_clause(self):
        rule = ValidationRule({0: [1]})
        assert not rule.satisfied_by(Pattern.from_string("XX"))

    def test_satisfied_by_values(self):
        rule = ValidationRule({0: [1], 1: [2]})
        assert rule.satisfied_by_values([1, 2, 5])
        assert not rule.satisfied_by_values([1, 1, 5])

    def test_prefix_semantics(self):
        rule = ValidationRule({0: [1], 1: [0]})
        assert not rule.satisfied_by_prefix([1])  # clause on A2 unseen yet
        assert rule.satisfied_by_prefix([1, 0])
        assert not rule.satisfied_by_prefix([1, 1])

    def test_single_int_value_accepted(self):
        rule = ValidationRule({0: 1})
        assert rule.satisfied_by_values([1])

    def test_rejects_empty_rule(self):
        with pytest.raises(ValidationError):
            ValidationRule({})

    def test_rejects_empty_value_set(self):
        with pytest.raises(ValidationError):
            ValidationRule({0: []})

    def test_rejects_duplicate_attribute(self):
        with pytest.raises(ValidationError):
            ValidationRule([(0, [1]), (0, [0])])

    def test_rejects_negative_attribute(self):
        with pytest.raises(ValidationError):
            ValidationRule({-1: [0]})

    def test_repr_mentions_clauses(self):
        assert "A0" in repr(ValidationRule({0: [1]}))


class TestValidationOracle:
    def test_permissive_oracle_accepts_everything(self):
        oracle = ValidationOracle.permissive()
        assert oracle.is_valid(Pattern.from_string("111"))
        assert oracle.is_valid_values([0, 1, 2])
        assert not oracle.invalidates_prefix([0, 1])

    def test_paper_example_male_pregnant(self):
        # {gender=Male, isPregnant=True} is semantically incorrect.
        oracle = ValidationOracle([ValidationRule({0: [0], 1: [1]})])
        assert not oracle.is_valid_values([0, 1])
        assert oracle.is_valid_values([0, 0])
        assert oracle.is_valid_values([1, 1])

    def test_prefix_invalidation(self):
        oracle = ValidationOracle([ValidationRule({0: [0], 1: [1]})])
        assert not oracle.invalidates_prefix([0])
        assert oracle.invalidates_prefix([0, 1])
        assert not oracle.invalidates_prefix([1, 1])

    def test_multiple_rules_any_blocks(self):
        oracle = ValidationOracle(
            [ValidationRule({0: [0]}), ValidationRule({1: [2]})]
        )
        assert not oracle.is_valid_values([0, 0])
        assert not oracle.is_valid_values([1, 2])
        assert oracle.is_valid_values([1, 0])

    def test_add_rule_and_len(self):
        oracle = ValidationOracle.permissive()
        assert len(oracle) == 0
        oracle.add_rule(ValidationRule({0: [1]}))
        assert len(oracle) == 1

    def test_query_counter(self):
        oracle = ValidationOracle.permissive()
        oracle.is_valid_values([0])
        oracle.invalidates_prefix([0])
        assert oracle.queries == 2


class TestFromNamedRules:
    SCHEMA = Schema.of(
        ["age", "marital_status"],
        [2, 3],
        [["young", "old"], ["single", "married", "unknown"]],
    )

    def test_named_rules_resolve_labels(self):
        oracle = ValidationOracle.from_named_rules(
            self.SCHEMA, [{"marital_status": ["unknown"]}]
        )
        assert not oracle.is_valid_values([0, 2])
        assert oracle.is_valid_values([0, 1])

    def test_named_rules_accept_integer_codes(self):
        oracle = ValidationOracle.from_named_rules(self.SCHEMA, [{"age": [1]}])
        assert not oracle.is_valid_values([1, 0])

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            ValidationOracle.from_named_rules(
                self.SCHEMA, [{"marital_status": ["divorced"]}]
            )

    def test_unlabelled_schema_requires_ints(self):
        schema = Schema.binary(2)
        with pytest.raises(ValidationError):
            ValidationOracle.from_named_rules(schema, [{"A1": ["yes"]}])
