"""Unit tests for the Schema / Dataset substrate (§II)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError, SchemaError


class TestSchema:
    def test_basic_construction(self):
        schema = Schema.of(["a", "b"], [2, 3])
        assert schema.d == 2
        assert schema.cardinalities == (2, 3)

    def test_binary_helper(self):
        schema = Schema.binary(4)
        assert schema.names == ("A1", "A2", "A3", "A4")
        assert schema.cardinalities == (2, 2, 2, 2)

    def test_name_cardinality_mismatch(self):
        with pytest.raises(SchemaError):
            Schema.of(["a"], [2, 2])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(["a", "a"], [2, 2])

    def test_zero_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(["a"], [0])

    def test_value_labels_validated(self):
        with pytest.raises(SchemaError):
            Schema.of(["a"], [2], [["only-one"]])
        with pytest.raises(SchemaError):
            Schema.of(["a"], [2], [["x", "y"], ["z", "w"]])

    def test_value_label_lookup(self):
        schema = Schema.of(["a"], [2], [["no", "yes"]])
        assert schema.value_label(0, 1) == "yes"

    def test_value_label_defaults_to_code(self):
        schema = Schema.binary(1)
        assert schema.value_label(0, 1) == "1"

    def test_index_of(self):
        schema = Schema.of(["a", "b"], [2, 2])
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_combination_and_pattern_counts(self):
        schema = Schema.of(["a", "b"], [2, 3])
        assert schema.combination_count() == 6
        assert schema.combination_count([1]) == 3
        assert schema.pattern_count() == 12

    def test_project(self):
        schema = Schema.of(["a", "b", "c"], [2, 3, 4], [["n", "y"], list("pqr"), list("wxyz")])
        projected = schema.project([2, 0])
        assert projected.names == ("c", "a")
        assert projected.cardinalities == (4, 2)
        assert projected.value_labels == (("w", "x", "y", "z"), ("n", "y"))


class TestDatasetConstruction:
    def test_from_rows_infers_cardinalities(self):
        dataset = Dataset.from_rows([[0, 2], [1, 0]])
        assert dataset.cardinalities == (2, 3)
        assert dataset.n == 2

    def test_from_rows_constant_column_stays_binary(self):
        dataset = Dataset.from_rows([[0, 0], [0, 0]])
        assert dataset.cardinalities == (2, 2)

    def test_from_strings(self):
        dataset = Dataset.from_strings(["010", "001"])
        assert dataset.n == 2
        assert dataset.d == 3

    def test_out_of_range_value_rejected(self):
        schema = Schema.binary(2)
        with pytest.raises(DataError):
            Dataset(schema, np.array([[0, 2]]))

    def test_negative_value_rejected(self):
        schema = Schema.binary(2)
        with pytest.raises(DataError):
            Dataset(schema, np.array([[-1, 0]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset(Schema.binary(3), np.zeros((2, 2), dtype=np.int32))

    def test_empty_inference_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_rows([])

    def test_labels_length_checked(self):
        schema = Schema.binary(2)
        with pytest.raises(DataError):
            Dataset(schema, np.zeros((2, 2), dtype=np.int32), labels={"y": np.zeros(3)})

    def test_repr(self, example1_dataset):
        assert "n=5" in repr(example1_dataset)


class TestDatasetOperations:
    def test_unique_rows_counts(self, example1_dataset):
        unique, counts = example1_dataset.unique_rows()
        as_map = {tuple(r): c for r, c in zip(unique, counts)}
        assert as_map == {(0, 1, 0): 1, (0, 0, 1): 2, (0, 0, 0): 1, (0, 1, 1): 1}

    def test_unique_rows_cached(self, example1_dataset):
        first = example1_dataset.unique_rows()
        second = example1_dataset.unique_rows()
        assert first[0] is second[0]

    def test_project_by_name_and_index(self):
        dataset = Dataset.from_rows([[0, 1, 2]], names=["a", "b", "c"], cardinalities=[2, 2, 3])
        projected = dataset.project(["c", 0])
        assert projected.schema.names == ("c", "a")
        assert projected.rows.tolist() == [[2, 0]]

    def test_project_bad_index(self, example1_dataset):
        with pytest.raises(DataError):
            example1_dataset.project([7])

    def test_sample_without_replacement(self, example1_dataset):
        sample = example1_dataset.sample(3, seed=1)
        assert sample.n == 3
        with pytest.raises(DataError):
            example1_dataset.sample(10)

    def test_take_carries_labels(self):
        dataset = Dataset.from_rows(
            [[0], [1], [0]], cardinalities=[2]
        )
        dataset = Dataset(
            dataset.schema, dataset.rows, labels={"y": np.array([5, 6, 7])}
        )
        taken = dataset.take([2, 0])
        assert taken.label("y").tolist() == [7, 5]

    def test_head(self, example1_dataset):
        assert example1_dataset.head(2).n == 2
        assert example1_dataset.head(100).n == 5

    def test_append_rows(self, example1_dataset):
        grown = example1_dataset.append_rows([(1, 1, 1), (1, 0, 0)])
        assert grown.n == 7
        assert example1_dataset.n == 5  # original untouched

    def test_append_empty(self, example1_dataset):
        assert example1_dataset.append_rows([]).n == 5

    def test_append_shape_checked(self, example1_dataset):
        with pytest.raises(DataError):
            example1_dataset.append_rows([(1, 1)])

    def test_append_out_of_range_checked(self, example1_dataset):
        with pytest.raises(DataError):
            example1_dataset.append_rows([(2, 0, 0)])

    def test_mask(self, example1_dataset):
        masked = example1_dataset.mask(example1_dataset.rows[:, 2] == 1)
        assert masked.n == 3
        with pytest.raises(DataError):
            example1_dataset.mask(np.ones(3, dtype=bool))

    def test_value_counts(self, example1_dataset):
        assert example1_dataset.value_counts("A3") == [2, 3]
        assert example1_dataset.value_counts(0) == [5, 0]

    def test_label_access(self):
        dataset = Dataset(
            Schema.binary(1),
            np.zeros((2, 1), dtype=np.int32),
            labels={"y": np.array([0, 1])},
        )
        assert dataset.label_names == ("y",)
        assert dataset.label("y").tolist() == [0, 1]
        with pytest.raises(DataError):
            dataset.label("z")

    def test_describe_mentions_attributes(self, example1_dataset):
        text = example1_dataset.describe()
        assert "A1" in text and "n=5" in text

    def test_len(self, example1_dataset):
        assert len(example1_dataset) == 5
