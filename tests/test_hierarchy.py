"""Unit tests for attribute hierarchies and roll-ups (§II)."""

import numpy as np
import pytest

from repro.core.coverage import CoverageOracle
from repro.core.mups import find_mups
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset, Schema
from repro.data.hierarchy import AttributeHierarchy, drill_down, rollup
from repro.exceptions import DataError, SchemaError

STATE_SCHEMA = Schema.of(
    ["state", "sex"],
    [4, 2],
    [["MI", "OH", "CA", "WA"], ["male", "female"]],
)


def make_dataset():
    rows = np.array(
        [[0, 0], [0, 1], [1, 0], [2, 0], [2, 1], [3, 0], [3, 0], [1, 1]],
        dtype=np.int32,
    )
    return Dataset(STATE_SCHEMA, rows)


class TestAttributeHierarchy:
    def test_of_and_cardinality(self):
        hierarchy = AttributeHierarchy.of("state", [0, 0, 1, 1], ["midwest", "west"])
        assert hierarchy.coarse_cardinality == 2
        assert hierarchy.fine_codes_of(0) == (0, 1)
        assert hierarchy.fine_codes_of(1) == (2, 3)

    def test_from_label_map(self):
        hierarchy = AttributeHierarchy.from_label_map(
            STATE_SCHEMA,
            "state",
            {"MI": "midwest", "OH": "midwest", "CA": "west", "WA": "west"},
        )
        assert hierarchy.groups == (0, 0, 1, 1)
        assert hierarchy.group_labels == ("midwest", "west")

    def test_from_label_map_requires_complete_mapping(self):
        with pytest.raises(SchemaError):
            AttributeHierarchy.from_label_map(
                STATE_SCHEMA, "state", {"MI": "midwest"}
            )

    def test_dense_group_codes_required(self):
        with pytest.raises(SchemaError):
            AttributeHierarchy.of("state", [0, 0, 2, 2])

    def test_label_count_checked(self):
        with pytest.raises(SchemaError):
            AttributeHierarchy.of("state", [0, 0, 1, 1], ["only-one"])

    def test_empty_mapping_rejected(self):
        with pytest.raises(SchemaError):
            AttributeHierarchy.of("state", [])

    def test_compose_chains_base_to_top(self):
        base_to_mid = AttributeHierarchy.of("zip", [0, 0, 1, 1, 2, 2])
        mid_to_top = AttributeHierarchy.of("zip", [0, 0, 1], ["south", "north"])
        composed = base_to_mid.compose(mid_to_top)
        assert composed.groups == (0, 0, 0, 0, 1, 1)
        assert composed.group_labels == ("south", "north")

    def test_compose_domain_checked(self):
        base_to_mid = AttributeHierarchy.of("zip", [0, 0, 1, 1])
        wrong = AttributeHierarchy.of("zip", [0, 1, 1])
        with pytest.raises(SchemaError, match="cannot compose"):
            base_to_mid.compose(wrong)

    def test_factor_through_recovers_step_map(self):
        fine = AttributeHierarchy.of("zip", [0, 0, 1, 1, 2, 2])
        coarse = AttributeHierarchy.of("zip", [0, 0, 0, 0, 1, 1])
        step = fine.factor_through(coarse)
        assert step.groups == (0, 0, 1)
        # chaining the step after the fine map reproduces the coarse map
        assert fine.compose(step).groups == coarse.groups

    def test_factor_through_rejects_crossing_groups(self):
        fine = AttributeHierarchy.of("zip", [0, 0, 1, 1])
        crossing = AttributeHierarchy.of("zip", [0, 1, 1, 1])
        with pytest.raises(SchemaError, match="does not factor"):
            fine.factor_through(crossing)

    def test_factor_through_domain_checked(self):
        fine = AttributeHierarchy.of("zip", [0, 0, 1, 1])
        other = AttributeHierarchy.of("zip", [0, 0, 1])
        with pytest.raises(SchemaError, match="different domains"):
            fine.factor_through(other)


class TestRollup:
    HIERARCHY = AttributeHierarchy.of("state", [0, 0, 1, 1], ["midwest", "west"])

    def test_rollup_reduces_cardinality(self):
        roll = rollup(make_dataset(), [self.HIERARCHY])
        assert roll.dataset.cardinalities == (2, 2)
        assert roll.dataset.schema.value_labels[0] == ("midwest", "west")

    def test_rollup_preserves_counts(self):
        dataset = make_dataset()
        roll = rollup(dataset, [self.HIERARCHY])
        oracle = CoverageOracle(roll.dataset)
        fine_oracle = CoverageOracle(dataset)
        # cov(midwest) == cov(MI) + cov(OH).
        assert oracle.coverage(Pattern.from_string("0X")) == fine_oracle.coverage(
            Pattern.from_string("0X")
        ) + fine_oracle.coverage(Pattern.from_string("1X"))

    def test_rollup_preserves_labels_column(self):
        dataset = make_dataset()
        dataset = Dataset(
            dataset.schema, dataset.rows, labels={"y": np.arange(dataset.n)}
        )
        roll = rollup(dataset, [self.HIERARCHY])
        assert roll.dataset.label("y").tolist() == list(range(dataset.n))

    def test_hierarchy_size_checked(self):
        with pytest.raises(SchemaError):
            rollup(make_dataset(), [AttributeHierarchy.of("state", [0, 1, 1])])

    def test_duplicate_hierarchy_rejected(self):
        with pytest.raises(SchemaError):
            rollup(make_dataset(), [self.HIERARCHY, self.HIERARCHY])

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            rollup(make_dataset(), [AttributeHierarchy.of("zipcode", [0, 0, 1, 1])])


class TestDrillDown:
    HIERARCHY = AttributeHierarchy.of("state", [0, 0, 1, 1], ["midwest", "west"])

    def test_coarse_pattern_expands_to_members(self):
        roll = rollup(make_dataset(), [self.HIERARCHY])
        fine = drill_down(Pattern.from_string("01"), roll)
        assert set(map(str, fine)) == {"01", "11"}

    def test_x_passes_through(self):
        roll = rollup(make_dataset(), [self.HIERARCHY])
        fine = drill_down(Pattern.from_string("X1"), roll)
        assert set(map(str, fine)) == {"X1"}

    def test_matches_are_partitioned(self):
        dataset = make_dataset()
        roll = rollup(dataset, [self.HIERARCHY])
        coarse_oracle = CoverageOracle(roll.dataset)
        fine_oracle = CoverageOracle(dataset)
        coarse_pattern = Pattern.from_string("1X")
        fine_patterns = drill_down(coarse_pattern, roll)
        assert coarse_oracle.coverage(coarse_pattern) == sum(
            fine_oracle.coverage(p) for p in fine_patterns
        )

    def test_length_checked(self):
        roll = rollup(make_dataset(), [self.HIERARCHY])
        with pytest.raises(DataError):
            drill_down(Pattern.from_string("0X1"), roll)


class TestEndToEndWorkflow:
    def test_coarse_mups_guide_fine_analysis(self):
        # Roll up, find coarse MUPs, drill into one, and confirm every fine
        # expansion is uncovered in the fine data too (union of matches).
        dataset = make_dataset()
        hierarchy = AttributeHierarchy.of("state", [0, 0, 1, 1], ["midwest", "west"])
        roll = rollup(dataset, [hierarchy])
        coarse_result = find_mups(roll.dataset, threshold=3)
        fine_oracle = CoverageOracle(dataset)
        for mup in coarse_result:
            for fine in drill_down(mup, roll):
                # Fine coverage can only be smaller than the coarse region's.
                assert fine_oracle.coverage(fine) < 3 or fine.level == 0
