"""Unit tests for the MUP dominance index (Definition 9, Appendix B)."""

import numpy as np
import pytest

from repro.core.dominance import (
    MupDominanceIndex,
    dominated_by_any_scan,
    dominates_any_scan,
)
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import PatternError


class TestBasicQueries:
    def test_empty_index_answers_false(self):
        index = MupDominanceIndex([2, 2, 2])
        assert not index.dominates_any(Pattern.from_string("1XX"))
        assert not index.dominated_by_any(Pattern.from_string("110"))

    def test_descendant_is_dominated(self):
        index = MupDominanceIndex([2, 2, 2])
        index.add(Pattern.from_string("1XX"))
        assert index.dominated_by_any(Pattern.from_string("10X"))
        assert index.dominated_by_any(Pattern.from_string("111"))

    def test_ancestor_dominates(self):
        index = MupDominanceIndex([2, 2, 2])
        index.add(Pattern.from_string("10X"))
        assert index.dominates_any(Pattern.from_string("1XX"))
        assert index.dominates_any(Pattern.root(3))

    def test_equal_pattern_is_not_strict(self):
        index = MupDominanceIndex([2, 2, 2])
        pattern = Pattern.from_string("1X0")
        index.add(pattern)
        assert not index.dominates_any(pattern)
        assert not index.dominated_by_any(pattern)
        assert index.contains(pattern)

    def test_unrelated_pattern(self):
        index = MupDominanceIndex([2, 2, 2])
        index.add(Pattern.from_string("1XX"))
        assert not index.dominated_by_any(Pattern.from_string("0X1"))
        assert not index.dominates_any(Pattern.from_string("0X1"))

    def test_multiple_mups(self):
        index = MupDominanceIndex([2, 2, 2])
        index.extend([Pattern.from_string("1XX"), Pattern.from_string("X01")])
        assert index.dominated_by_any(Pattern.from_string("101"))  # both dominate it
        assert index.dominates_any(Pattern.from_string("XX1"))  # dominates X01
        assert len(index) == 2
        assert set(index.patterns()) == {
            Pattern.from_string("1XX"),
            Pattern.from_string("X01"),
        }

    def test_rejects_wrong_length(self):
        index = MupDominanceIndex([2, 2])
        with pytest.raises(PatternError):
            index.add(Pattern.from_string("1X0"))

    def test_rejects_out_of_range_value(self):
        index = MupDominanceIndex([2, 2])
        with pytest.raises(PatternError):
            index.add(Pattern.from_string("13"))


class TestGrowth:
    def test_capacity_doubling_preserves_queries(self):
        # Push past the initial capacity of 64 to exercise _grow().
        space = PatternSpace([3, 3, 3, 3])
        rng = np.random.default_rng(5)
        patterns = []
        index = MupDominanceIndex(space.cardinalities)
        seen = set()
        while len(patterns) < 200:
            pattern = space.random_pattern(rng)
            if pattern in seen:
                continue
            seen.add(pattern)
            patterns.append(pattern)
            index.add(pattern)
        probe_rng = np.random.default_rng(6)
        for _ in range(300):
            probe = space.random_pattern(probe_rng)
            assert index.dominated_by_any(probe) == dominated_by_any_scan(
                patterns, probe
            )
            assert index.dominates_any(probe) == dominates_any_scan(patterns, probe)


class TestAgainstScanReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_cross_check(self, seed):
        space = PatternSpace([2, 3, 2, 4])
        rng = np.random.default_rng(seed)
        mups = list({space.random_pattern(rng) for _ in range(25)})
        index = MupDominanceIndex(space.cardinalities)
        index.extend(mups)
        for _ in range(200):
            probe = space.random_pattern(rng)
            assert index.dominated_by_any(probe) == dominated_by_any_scan(mups, probe)
            assert index.dominates_any(probe) == dominates_any_scan(mups, probe)
