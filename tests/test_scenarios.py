"""Unit tests for the realistic synthetic scenario families."""

import numpy as np
import pytest

from repro.core.mups import find_mups
from repro.core.pattern import Pattern, X
from repro.data.scenarios import (
    SCENARIO_FAMILIES,
    correlated_dataset,
    planted_mup_dataset,
    scenario_dataset,
    zipfian_cardinalities,
    zipfian_dataset,
)
from repro.exceptions import DataError


def test_zipfian_cardinalities_shape():
    cards = zipfian_cardinalities(6, seed=3, max_cardinality=12)
    assert len(cards) == 6
    assert all(c >= 2 for c in cards)
    assert max(cards) == 12
    assert cards == zipfian_cardinalities(6, seed=3, max_cardinality=12)
    assert cards != zipfian_cardinalities(6, seed=4, max_cardinality=12)


def test_zipfian_cardinalities_rejects():
    with pytest.raises(DataError):
        zipfian_cardinalities(0)
    with pytest.raises(DataError):
        zipfian_cardinalities(3, max_cardinality=1)


def test_zipfian_dataset_deterministic_and_skewed():
    a = zipfian_dataset(500, (8, 3), seed=5, exponent=1.5)
    b = zipfian_dataset(500, (8, 3), seed=5, exponent=1.5)
    assert (a.rows == b.rows).all()
    assert a.n == 500 and a.d == 2
    # Head value of the wide attribute carries more mass than the tail.
    counts = np.bincount(a.rows[:, 0], minlength=8)
    assert counts[0] > counts[-1]
    # exponent=0 degenerates to (roughly) uniform: tail still populated.
    flat = zipfian_dataset(500, (8, 3), seed=5, exponent=0.0)
    assert np.bincount(flat.rows[:, 0], minlength=8).min() > 0


def test_zipfian_dataset_rejects():
    with pytest.raises(DataError):
        zipfian_dataset(-1, (2,))
    with pytest.raises(DataError):
        zipfian_dataset(5, (2,), exponent=-0.5)


def test_correlated_dataset_couples_columns():
    strong = correlated_dataset(800, (5, 5), seed=2, correlation=1.0)
    weak = correlated_dataset(800, (5, 5), seed=2, correlation=0.0)

    def corr(ds):
        return abs(float(np.corrcoef(ds.rows[:, 0], ds.rows[:, 1])[0, 1]))

    assert corr(strong) > corr(weak)
    assert corr(strong) > 0.8


def test_correlated_dataset_rejects():
    with pytest.raises(DataError):
        correlated_dataset(10, (2, 2), correlation=1.5)
    with pytest.raises(DataError):
        correlated_dataset(-1, (2, 2))


def test_planted_mups_are_exact_mups():
    planted = [Pattern.of(0, X, 1), Pattern.of(X, 3, X)]
    dataset = planted_mup_dataset((2, 4, 3), planted, threshold=4, seed=1)
    result = find_mups(dataset, threshold=4)
    for pattern in planted:
        assert pattern in result


def test_planted_validation():
    with pytest.raises(DataError):  # no patterns
        planted_mup_dataset((2, 2), [], threshold=1)
    with pytest.raises(DataError):  # root
        planted_mup_dataset((2, 2), [Pattern.root(2)], threshold=1)
    with pytest.raises(DataError):  # wrong width
        planted_mup_dataset((2, 2), [Pattern.of(1)], threshold=1)
    with pytest.raises(DataError):  # cardinality-1 attribute
        planted_mup_dataset((1, 2), [Pattern.of(0, X)], threshold=1)
    with pytest.raises(DataError):  # value out of range
        planted_mup_dataset((2, 2), [Pattern.of(5, X)], threshold=1)
    with pytest.raises(DataError):  # dominance between planted patterns
        planted_mup_dataset(
            (2, 2), [Pattern.of(1, X), Pattern.of(1, 0)], threshold=1
        )
    with pytest.raises(DataError):  # threshold
        planted_mup_dataset((2, 2), [Pattern.of(1, X)], threshold=0)


def test_planted_impossible_completion():
    # Both values of the second attribute are planted: no row can match
    # the first attribute's parent without hitting a planted pattern.
    with pytest.raises(DataError):
        planted_mup_dataset(
            (2, 2), [Pattern.of(X, 0), Pattern.of(X, 1)], threshold=2, n=0
        )


def test_scenario_dispatcher():
    for family in SCENARIO_FAMILIES:
        ds = scenario_dataset(family, 40, (3, 2), seed=6)
        again = scenario_dataset(family, 40, (3, 2), seed=6)
        assert ds.n == 40 and ds.d == 2
        assert (ds.rows == again.rows).all()
    with pytest.raises(DataError):
        scenario_dataset("nope", 10, (2, 2))


def test_scenario_names_forwarded():
    ds = scenario_dataset("zipf", 10, (2, 2), names=["left", "right"])
    assert ds.schema.names == ("left", "right")
