"""Cross-module integration tests: the full assess → report → remedy
pipeline on each dataset simulator, plus artefact round trips."""

import numpy as np
import pytest

from repro import (
    CoverageOracle,
    PatternSpace,
    ValidationOracle,
    enhance_coverage,
    find_mups,
    greedy_cover,
    uncovered_at_level,
)
from repro.analysis import coverage_diff, coverage_label, enhancement_report, mup_report
from repro.data.airbnb import load_airbnb
from repro.data.bluenile import load_bluenile
from repro.data.compas import load_compas
from repro.io import load_mup_result, save_mup_result


class TestCompasPipeline:
    @pytest.fixture(scope="class")
    def compas(self):
        return load_compas()

    def test_full_pipeline(self, compas, tmp_path):
        # Assess.
        result = find_mups(compas, threshold=10)
        assert len(result) > 0
        # Persist and reload for the human-in-the-loop review.
        save_mup_result(result, tmp_path / "mups.json")
        reloaded = load_mup_result(tmp_path / "mups.json")
        assert reloaded.as_set() == result.as_set()
        # Report.
        report = mup_report(compas, reloaded, limit=5)
        assert "pattern" in report
        label = coverage_label(compas, threshold=10, result=reloaded)
        assert label.mup_count == len(result)
        # Remedy at λ=1 (cheap) and verify with a diff.
        plan, enhanced = enhance_coverage(compas, reloaded.mups, level=1, threshold=10)
        after = find_mups(enhanced, threshold=10)
        diff = coverage_diff(result, after, compas.d)
        assert after.max_covered_level(compas.d) >= 1
        assert diff.regressed == ()

    def test_projection_subsets_are_consistent(self, compas):
        # MUPs of a projected dataset must be MUPs over those attributes.
        projected = compas.project(["sex", "race"])
        result = find_mups(projected, threshold=10)
        oracle = CoverageOracle(projected)
        for mup in result:
            assert oracle.coverage(mup) < 10


class TestAirbnbPipeline:
    def test_enhancement_on_binary_data(self):
        dataset = load_airbnb(n=5_000, d=9)
        result = find_mups(dataset, threshold_rate=0.01)
        tau = result.threshold
        plan, enhanced = enhance_coverage(dataset, result.mups, level=2, threshold=tau)
        after = find_mups(enhanced, threshold=tau)
        assert after.max_covered_level(dataset.d) >= 2

    def test_algorithms_agree_at_scale(self):
        dataset = load_airbnb(n=5_000, d=9)
        tau = 5
        results = {
            name: find_mups(dataset, threshold=tau, algorithm=name).as_set()
            for name in ("pattern_breaker", "pattern_combiner", "deepdiver")
        }
        assert len(set(map(frozenset, results.values()))) == 1


class TestBlueNilePipeline:
    def test_high_cardinality_pipeline(self):
        dataset = load_bluenile(n=8_000)
        result = find_mups(dataset, threshold=20, algorithm="deepdiver")
        space = PatternSpace.for_dataset(dataset)
        targets = uncovered_at_level(result.mups, space, 1)
        plan = greedy_cover(targets, space)
        assert not plan.unhittable
        report = enhancement_report(dataset, plan)
        assert "Acquisition plan" in report

    def test_validation_oracle_round_trip(self):
        dataset = load_bluenile(n=8_000)
        # Business rule: never source strong/very-strong fluorescence.
        oracle = ValidationOracle.from_named_rules(
            dataset.schema, [{"fluorescence": ["strong", "very-strong"]}]
        )
        result = find_mups(dataset, threshold=20)
        space = PatternSpace.for_dataset(dataset)
        targets = uncovered_at_level(result.mups, space, 1)
        plan = greedy_cover(targets, space, oracle)
        for combo in plan.combinations:
            assert combo[6] not in (3, 4)
        for target in plan.unhittable:
            assert target[6] in (3, 4)


class TestEnhancementIdempotence:
    def test_second_enhancement_is_a_noop(self):
        dataset = load_airbnb(n=3_000, d=7)
        result = find_mups(dataset, threshold=8)
        _plan, enhanced = enhance_coverage(dataset, result.mups, level=2, threshold=8)
        after = find_mups(enhanced, threshold=8)
        plan2, enhanced2 = enhance_coverage(enhanced, after.mups, level=2, threshold=8)
        assert len(plan2.combinations) == 0
        assert enhanced2.n == enhanced.n
