"""Sanity checks on the example scripts.

The examples are exercised end-to-end manually (they take minutes); here we
assert they at least parse, import cleanly, and expose a ``main`` entry
point, so a refactor cannot silently break them.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 4


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions
    # A module docstring telling the user how to run it.
    assert ast.get_docstring(tree)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Import the module without executing main() (guarded by __main__)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert callable(module.main)
    finally:
        sys.modules.pop(spec.name, None)
