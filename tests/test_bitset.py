"""Unit tests for the packed bit vector (Appendices A–B substrate)."""

import numpy as np
import pytest

from repro.data.bitset import BitVector


class TestConstruction:
    def test_empty_vector(self):
        vector = BitVector(0)
        assert len(vector) == 0
        assert vector.count() == 0
        assert not vector.any()

    def test_zero_fill(self):
        vector = BitVector(70)
        assert vector.count() == 0

    def test_one_fill_masks_tail(self):
        vector = BitVector(70, fill=True)
        assert vector.count() == 70

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_from_indices(self):
        vector = BitVector.from_indices(10, [0, 3, 9])
        assert [i for i in vector.indices()] == [0, 3, 9]

    def test_from_bool_array_roundtrip(self):
        rng = np.random.default_rng(0)
        flags = rng.uniform(size=130) < 0.3
        vector = BitVector.from_bool_array(flags)
        assert np.array_equal(vector.to_bool_array(), flags)
        assert vector.count() == int(flags.sum())

    def test_from_empty_bool_array(self):
        vector = BitVector.from_bool_array(np.zeros(0, dtype=bool))
        assert len(vector) == 0

    def test_copy_is_independent(self):
        vector = BitVector.from_indices(8, [1])
        clone = vector.copy()
        clone.set(2)
        assert not vector.get(2)
        assert clone.get(2)


class TestElementAccess:
    def test_set_and_get(self):
        vector = BitVector(100)
        vector.set(64)
        vector.set(65)
        vector.set(64, False)
        assert not vector.get(64)
        assert vector.get(65)

    def test_out_of_range_get(self):
        with pytest.raises(IndexError):
            BitVector(4).get(4)

    def test_out_of_range_set(self):
        with pytest.raises(IndexError):
            BitVector(4).set(-1)


class TestBitwiseOps:
    def test_and(self):
        a = BitVector.from_indices(80, [0, 10, 70])
        b = BitVector.from_indices(80, [10, 70, 79])
        assert list((a & b).indices()) == [10, 70]

    def test_or(self):
        a = BitVector.from_indices(10, [1])
        b = BitVector.from_indices(10, [2])
        assert list((a | b).indices()) == [1, 2]

    def test_invert_masks_tail(self):
        vector = BitVector.from_indices(70, [0])
        inverted = ~vector
        assert inverted.count() == 69
        assert not inverted.get(0)

    def test_inplace_and(self):
        a = BitVector.from_indices(10, [1, 2])
        b = BitVector.from_indices(10, [2, 3])
        assert a.iand(b) is a
        assert list(a.indices()) == [2]

    def test_inplace_or(self):
        a = BitVector.from_indices(10, [1])
        a.ior(BitVector.from_indices(10, [5]))
        assert list(a.indices()) == [1, 5]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(4) & BitVector(5)


class TestQueries:
    def test_intersects_early_stop(self):
        a = BitVector.from_indices(200_000, [5])
        b = BitVector.from_indices(200_000, [5, 150_000])
        assert a.intersects(b)
        assert not a.intersects(BitVector(200_000))

    def test_any(self):
        assert BitVector.from_indices(5, [4]).any()
        assert not BitVector(5).any()

    def test_count_across_words(self):
        vector = BitVector.from_indices(129, [0, 63, 64, 128])
        assert vector.count() == 4

    def test_equality(self):
        a = BitVector.from_indices(10, [3])
        b = BitVector.from_indices(10, [3])
        assert a == b
        b.set(4)
        assert a != b
        assert a != "not a vector"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitVector(4))

    def test_repr_truncates(self):
        text = repr(BitVector(64))
        assert "BitVector(64" in text and "..." in text
