"""Unit tests for the sharded coverage engine and the hot-mask cache."""

import numpy as np
import pytest

from repro.core.coverage import CoverageOracle
from repro.core.engine import (
    DenseBoolEngine,
    PackedBitsetEngine,
    ShardedEngine,
)
from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset


@pytest.fixture
def dataset():
    return random_categorical_dataset(70, (3, 2, 4), seed=5, skew=1.2)


@pytest.fixture
def patterns(dataset):
    space_patterns = [Pattern.root(dataset.d)]
    for i, cardinality in enumerate(dataset.cardinalities):
        for value in range(cardinality):
            space_patterns.append(Pattern.root(dataset.d).with_value(i, value))
    space_patterns.append(Pattern.of(1, 0, 2))
    space_patterns.append(Pattern.of(2, X, 3))
    return space_patterns


class TestShardStructure:
    def test_shards_partition_rows_and_combinations(self, dataset):
        engine = ShardedEngine(dataset, shards=3)
        assert engine.shard_count == 3
        infos = engine.shard_infos
        # Every row lands in exactly one shard.
        assert sum(info.row_count for info in infos) == dataset.n
        # Word slices tile the flat mask space.
        assert infos[0].word_start == 0
        for left, right in zip(infos, infos[1:]):
            assert left.word_stop == right.word_start
        # The shard unique slices concatenate to the global unique rows
        # (each combination lives in exactly one shard, multiplicity intact).
        unique, counts = dataset.unique_rows()
        stacked = np.concatenate([info.unique_rows for info in infos])
        assert np.array_equal(stacked, unique)
        assert np.array_equal(
            np.concatenate([info.counts for info in infos]), counts
        )
        # Unique-slice bounds tile [0, u) contiguously.
        assert infos[0].unique_start == 0
        assert infos[-1].unique_stop == len(unique)
        for left, right in zip(infos, infos[1:]):
            assert left.unique_stop == right.unique_start

    def test_index_accounting_positive(self, dataset):
        engine = ShardedEngine(dataset, shards=2)
        assert engine.index_nbytes > 0

    def test_close_is_idempotent(self, dataset):
        engine = ShardedEngine(dataset, shards=2, workers=2)
        engine.close()
        engine.close()
        # Serial engines have no pool to close.
        ShardedEngine(dataset, shards=2).close()


class TestQueryEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 5, 70])
    def test_matches_dense_on_every_query(self, dataset, patterns, shards):
        dense = DenseBoolEngine(dataset)
        engine = ShardedEngine(dataset, shards=shards)
        for pattern in patterns:
            assert engine.coverage(pattern) == dense.coverage(pattern)
            assert np.array_equal(
                engine.mask_to_bool(engine.match_mask(pattern)),
                dense.mask_to_bool(dense.match_mask(pattern)),
            )
        assert list(engine.coverage_many(patterns)) == list(
            dense.coverage_many(patterns)
        )

    def test_value_mask_and_restrict(self, dataset):
        dense = DenseBoolEngine(dataset)
        engine = ShardedEngine(dataset, shards=3)
        full = engine.full_mask()
        for attribute, cardinality in enumerate(dataset.cardinalities):
            for value in range(cardinality):
                restricted = engine.restrict(full, attribute, value)
                expected = dense.restrict(dense.full_mask(), attribute, value)
                assert np.array_equal(
                    engine.mask_to_bool(restricted), dense.mask_to_bool(expected)
                )
                via_value_mask = engine.count(
                    engine.restrict(engine.value_mask(attribute, value), attribute, value)
                )
                assert via_value_mask == engine.count(restricted)

    def test_restrict_children_transposes_families(self, dataset):
        dense = DenseBoolEngine(dataset)
        engine = ShardedEngine(dataset, shards=4)
        mask = engine.match_mask(Pattern.of(X, 1, X))
        dense_mask = dense.match_mask(Pattern.of(X, 1, X))
        family = engine.restrict_children(mask, 2)
        dense_family = dense.restrict_children(dense_mask, 2)
        assert len(family) == dataset.cardinalities[2]
        for child, expected in zip(family, dense_family):
            assert np.array_equal(
                engine.mask_to_bool(child), dense.mask_to_bool(expected)
            )
        assert int(engine.count_many(family).sum()) == engine.count(mask)

    def test_count_many_empty(self, dataset):
        engine = ShardedEngine(dataset, shards=2)
        assert list(engine.count_many([])) == []
        assert list(engine.coverage_many([])) == []

    def test_oracle_matching_rows_roundtrip(self, dataset):
        """mask_to_bool lifts shard-local selections to global unique rows."""
        sharded = CoverageOracle(dataset, engine=ShardedEngine(dataset, shards=3))
        dense = CoverageOracle(dataset, engine="dense")
        for pattern in (Pattern.root(3), Pattern.of(1, X, X), Pattern.of(X, 0, 2)):
            got = {tuple(r) for r in sharded.matching_rows(pattern)}
            expected = {tuple(r) for r in dense.matching_rows(pattern)}
            assert got == expected


class TestHotMaskCache:
    def test_hits_and_misses_are_counted(self, dataset, patterns):
        engine = ShardedEngine(dataset, shards=2)
        engine.coverage_many(patterns)
        info = engine.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == len(patterns)
        engine.coverage_many(patterns)
        info = engine.cache_info()
        assert info["hits"] == len(patterns)
        assert info["misses"] == len(patterns)
        assert 0.0 < info["hit_rate"] <= 1.0

    def test_lru_evicts_oldest(self, dataset):
        engine = PackedBitsetEngine(dataset, mask_cache_size=2)
        a, b, c = Pattern.of(0, X, X), Pattern.of(1, X, X), Pattern.of(2, X, X)
        engine.coverage(a)
        engine.coverage(b)
        engine.coverage(c)  # evicts a
        assert engine.cache_info()["entries"] == 2
        engine.coverage(a)  # miss again
        assert engine.cache_info()["misses"] == 4
        assert engine.cache_info()["hits"] == 0

    def test_disabled_cache_never_stores(self, dataset, patterns):
        engine = ShardedEngine(dataset, shards=2, mask_cache_size=0)
        engine.coverage_many(patterns)
        engine.coverage_many(patterns)
        info = engine.cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "nbytes": 0,
            "max_size": 0,
            "hit_rate": 0.0,
        }

    def test_byte_budget_bounds_the_cache(self, dataset, monkeypatch):
        import repro.core.engine.base as base

        # A budget smaller than one mask: the cache degrades to one entry
        # instead of thrashing or growing unbounded.
        monkeypatch.setattr(base, "DEFAULT_MASK_CACHE_BYTES", 1)
        engine = DenseBoolEngine(dataset)
        a, b = Pattern.of(0, X, X), Pattern.of(1, X, X)
        assert engine.coverage(a) == engine.coverage(a)
        engine.coverage(b)
        info = engine.cache_info()
        assert info["entries"] == 1
        assert info["nbytes"] <= engine._mask_nbytes(engine.match_mask(a))

    def test_clear_resets_state(self, dataset, patterns):
        engine = DenseBoolEngine(dataset)
        engine.coverage_many(patterns)
        engine.clear_mask_cache()
        assert engine.cache_info()["entries"] == 0
        assert engine.cache_info()["misses"] == 0

    def test_cached_answers_equal_uncached(self, dataset, patterns):
        cached = ShardedEngine(dataset, shards=3)
        uncached = ShardedEngine(dataset, shards=3, mask_cache_size=0)
        first = list(cached.coverage_many(patterns))
        second = list(cached.coverage_many(patterns))  # all hits
        assert first == second == list(uncached.coverage_many(patterns))

    def test_mutating_returned_mask_does_not_poison_cache(self, dataset):
        engine = PackedBitsetEngine(dataset)
        pattern = Pattern.of(X, 1, X)
        before = engine.coverage(pattern)
        mask = engine.match_mask(pattern)
        mask.iand(engine.value_mask(0, 0))
        assert engine.coverage(pattern) == before


class TestWorkers:
    def test_pooled_results_match_serial(self, dataset, patterns):
        serial = ShardedEngine(dataset, shards=4)
        pooled = ShardedEngine(dataset, shards=4, workers=3)
        try:
            assert list(pooled.coverage_many(patterns)) == list(
                serial.coverage_many(patterns)
            )
            for pattern in patterns:
                assert pooled.coverage(pattern) == serial.coverage(pattern)
        finally:
            pooled.close()

    def test_single_shard_never_builds_a_pool(self, dataset):
        engine = ShardedEngine(dataset, shards=1, workers=8)
        assert engine._executor is None
        assert engine.workers == 8
