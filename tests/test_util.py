"""Unit tests for internal helpers and the exception hierarchy."""

import pytest

from repro._util import (
    SearchStats,
    Stopwatch,
    check_positive,
    chunked,
    format_table,
    product_int,
)
from repro.exceptions import (
    DataError,
    EnhancementError,
    PatternError,
    ReproError,
    SchemaError,
    ValidationError,
)


class TestProductInt:
    def test_empty_is_one(self):
        assert product_int([]) == 1

    def test_product(self):
        assert product_int([2, 3, 4]) == 24


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestStatsAndStopwatch:
    def test_stopwatch_monotonic(self):
        watch = Stopwatch()
        assert watch.elapsed() >= 0.0

    def test_stats_as_dict(self):
        stats = SearchStats(nodes_generated=3, seconds=1.5)
        as_dict = stats.as_dict()
        assert as_dict["nodes_generated"] == 3
        assert as_dict["seconds"] == 1.5


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [SchemaError, DataError, PatternError, ValidationError, EnhancementError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
