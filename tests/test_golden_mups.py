"""Golden-file regression tests: algorithm × engine must reproduce exactly.

``tests/fixtures/`` commits small datasets together with their expected MUP
sets (computed by the naive reference, cross-checked against DEEPDIVER and
the literal Definition-2 scan when the fixtures were generated).  Every
identification algorithm on every engine configuration must reproduce each
expected set exactly — an end-to-end tripwire for regressions anywhere in
the pattern/coverage/engine/algorithm stack.
"""

import csv
import json
from pathlib import Path

import pytest

from repro.core.engine import CompressedEngine, ShardedEngine
from repro.core.mups.base import ALGORITHMS, find_mups
from repro.data.dataset import Dataset, Schema

FIXTURES = Path(__file__).parent / "fixtures"

with open(FIXTURES / "expected_mups.json") as _handle:
    EXPECTED = json.load(_handle)

#: (label, engine-spec factory) — factories take the dataset and a fresh
#: temporary directory and return the ``engine=`` argument for ``find_mups``.
ENGINE_CONFIGS = [
    ("dense", lambda dataset, tmp_path: "dense"),
    ("packed", lambda dataset, tmp_path: "packed"),
    ("sharded-2", lambda dataset, tmp_path: ShardedEngine(dataset, shards=2)),
    (
        "sharded-7-workers",
        lambda dataset, tmp_path: ShardedEngine(dataset, shards=7, workers=2),
    ),
    (
        "sharded-nocache",
        lambda dataset, tmp_path: ShardedEngine(dataset, shards=3, mask_cache_size=0),
    ),
    (
        "out-of-core",
        lambda dataset, tmp_path: ShardedEngine(
            dataset,
            shards=3,
            spill_dir=str(tmp_path),
            max_resident_bytes=1,
        ),
    ),
    (
        "out-of-core-process",
        lambda dataset, tmp_path: ShardedEngine(
            dataset,
            shards=3,
            workers=2,
            workers_mode="process",
            spill_dir=str(tmp_path),
        ),
    ),
    ("compressed", lambda dataset, tmp_path: "compressed"),
    (
        # Adversarial container thresholds: bitmap containers everywhere
        # (array_cutoff=1) and runs limited to single intervals.
        "compressed-bitmapped",
        lambda dataset, tmp_path: CompressedEngine(
            dataset, array_cutoff=1, run_cutoff=1
        ),
    ),
]

CASES = [
    (fixture, int(tau))
    for fixture, entry in sorted(EXPECTED.items())
    for tau in entry["thresholds"]
]


def load_fixture(name: str) -> Dataset:
    entry = EXPECTED[name]
    with open(FIXTURES / f"{name}.csv", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[int(cell) for cell in row] for row in reader if row]
    schema = Schema.of(header, entry["cardinalities"])
    return Dataset.from_rows(rows, schema=schema)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("config", ENGINE_CONFIGS, ids=[c[0] for c in ENGINE_CONFIGS])
@pytest.mark.parametrize("fixture,tau", CASES, ids=[f"{f}-tau{t}" for f, t in CASES])
def test_algorithm_engine_matrix_reproduces_golden(
    algorithm, config, fixture, tau, tmp_path
):
    dataset = load_fixture(fixture)
    expected = set(EXPECTED[fixture]["thresholds"][str(tau)])
    _, make_engine = config
    engine = make_engine(dataset, tmp_path)
    try:
        result = find_mups(
            dataset, threshold=tau, algorithm=algorithm, engine=engine
        )
        assert {str(p) for p in result.mups} == expected
    finally:
        if isinstance(engine, ShardedEngine):
            engine.close()


def test_fixture_files_are_consistent():
    """Every expected entry has a CSV and every CSV has an expected entry."""
    csvs = {path.stem for path in FIXTURES.glob("*.csv")}
    assert csvs == set(EXPECTED)
    for name in EXPECTED:
        dataset = load_fixture(name)
        assert dataset.n > 0
        assert list(dataset.schema.cardinalities) == EXPECTED[name]["cardinalities"]
