"""Tests for incremental MUP maintenance, cross-checked against recompute."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalMupIndex
from repro.core.mups import find_mups
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import DataError, ReproError


def scratch_mups(dataset, tau):
    return find_mups(dataset, threshold=tau, algorithm="naive").as_set()


class TestConstruction:
    def test_initial_state_matches_scratch(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        assert set(index.mups()) == scratch_mups(example1_dataset, 1)
        assert index.threshold == 1
        assert index.max_covered_level() == 0

    def test_bad_threshold(self, example1_dataset):
        with pytest.raises(ReproError):
            IncrementalMupIndex(example1_dataset, threshold=0)


class TestAdditions:
    def test_resolving_the_only_mup(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        resolved = index.add_rows([(1, 1, 1)])
        assert resolved == [Pattern.from_string("1XX")]
        # 1XX is covered now but its specific descendants are not: new MUPs
        # appear below it, exactly as a recompute reports.
        assert set(index.mups()) == scratch_mups(index.dataset, 1)

    def test_untouched_mups_survive(self):
        dataset = random_categorical_dataset(40, (2, 2, 2), seed=31, skew=1.2)
        tau = 4
        index = IncrementalMupIndex(dataset, threshold=tau)
        before = set(index.mups())
        # Add a duplicate of an existing heavy row: nothing should resolve.
        heavy = dataset.rows[0]
        index.add_rows([tuple(heavy)] * 0 or [])
        assert set(index.mups()) == before

    def test_empty_addition_is_noop(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        assert index.add_rows([]) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scratch_after_random_additions(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_categorical_dataset(30, (2, 3, 2), seed=seed, skew=1.0)
        tau = int(rng.integers(1, 5))
        index = IncrementalMupIndex(dataset, threshold=tau)
        for _round in range(3):
            count = int(rng.integers(1, 6))
            rows = [
                tuple(int(rng.integers(0, c)) for c in dataset.cardinalities)
                for _ in range(count)
            ]
            index.add_rows(rows)
            assert set(index.mups()) == scratch_mups(index.dataset, tau)

    def test_coverage_accessor_tracks_additions(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        assert index.coverage(Pattern.from_string("1XX")) == 0
        index.add_rows([(1, 0, 0)])
        assert index.coverage(Pattern.from_string("1XX")) == 1


class TestRemovals:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scratch_after_random_removals(self, seed):
        rng = np.random.default_rng(seed + 100)
        dataset = random_categorical_dataset(40, (2, 2, 3), seed=seed, skew=0.8)
        tau = int(rng.integers(1, 5))
        index = IncrementalMupIndex(dataset, threshold=tau)
        for _round in range(3):
            if index.dataset.n < 5:
                break
            count = int(rng.integers(1, 4))
            victims = rng.choice(index.dataset.n, size=count, replace=False)
            index.remove_rows(victims)
            assert set(index.mups()) == scratch_mups(index.dataset, tau)

    def test_removal_reports_new_mups(self):
        # Fully covered 2x2 data; removing one combination's rows opens a gap.
        rows = [[a, b] for a in (0, 1) for b in (0, 1)] * 2
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        index = IncrementalMupIndex(dataset, threshold=2)
        assert index.mups() == ()
        victims = [i for i, row in enumerate(dataset.rows) if tuple(row) == (1, 1)]
        new = index.remove_rows(victims[:1])
        assert new == [Pattern.from_string("11")]
        assert set(index.mups()) == scratch_mups(index.dataset, 2)

    def test_empty_removal_is_noop(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        assert index.remove_rows([]) == []

    def test_out_of_range_rejected(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        with pytest.raises(DataError):
            index.remove_rows([99])


class TestMixedWorkload:
    @pytest.mark.parametrize("seed", range(5))
    def test_interleaved_add_remove(self, seed):
        rng = np.random.default_rng(seed + 500)
        dataset = random_categorical_dataset(35, (2, 3, 2), seed=seed, skew=1.0)
        tau = 3
        index = IncrementalMupIndex(dataset, threshold=tau)
        for _round in range(4):
            if rng.uniform() < 0.5 and index.dataset.n > 10:
                victims = rng.choice(
                    index.dataset.n, size=int(rng.integers(1, 4)), replace=False
                )
                index.remove_rows(victims)
            else:
                rows = [
                    tuple(int(rng.integers(0, c)) for c in dataset.cardinalities)
                    for _ in range(int(rng.integers(1, 4)))
                ]
                index.add_rows(rows)
            assert set(index.mups()) == scratch_mups(index.dataset, tau)

    def test_as_result_snapshot(self, example1_dataset):
        index = IncrementalMupIndex(example1_dataset, threshold=1)
        result = index.as_result()
        assert result.as_set() == set(index.mups())
        assert result.threshold == 1


class TestEngineCacheUnderMutation:
    """Hot-mask caches must never serve answers from a pre-update dataset.

    The index rebuilds its oracle (and therefore its engine) on every
    delivery/removal, so cached masks from the old dataset are bypassed by
    construction; these tests pin that contract down for every backend,
    including prebuilt instances whose configuration must survive the
    rebuild while their cached state must not.
    """

    @pytest.mark.parametrize("engine", ["dense", "packed", "sharded"])
    def test_add_rows_after_cached_queries(self, engine):
        dataset = random_categorical_dataset(40, (2, 2, 3), seed=13, skew=1.3)
        tau = 4
        index = IncrementalMupIndex(dataset, threshold=tau, engine=engine)
        # Warm the hot-mask cache with repeated queries over the MUP set.
        probes = list(index.mups()) + [Pattern.root(dataset.d)]
        before = [index.coverage(p) for p in probes]
        assert [index.coverage(p) for p in probes] == before
        # Mutate: add rows matching the first probe region.
        addition = [
            tuple(0 if v < 0 else v for v in probes[0].values) for _ in range(tau)
        ]
        index.add_rows(addition)
        # Every coverage answer must reflect the new dataset, not the cache.
        oracle_fresh = find_mups(
            index.dataset, threshold=tau, algorithm="naive", engine="dense"
        )
        assert set(index.mups()) == oracle_fresh.as_set()
        for probe in probes:
            fresh = int(
                sum(1 for row in index.dataset.rows if probe.matches(row))
            )
            assert index.coverage(probe) == fresh

    def test_remove_rows_after_cached_queries(self):
        dataset = random_categorical_dataset(40, (2, 3, 2), seed=21, skew=1.0)
        tau = 3
        index = IncrementalMupIndex(dataset, threshold=tau, engine="sharded")
        probes = [Pattern.root(dataset.d)] + list(index.mups())
        for _ in range(3):  # drive queries into the cache-hit path
            for probe in probes:
                index.coverage(probe)
        index.remove_rows(list(range(5)))
        assert set(index.mups()) == scratch_mups(index.dataset, tau)
        for probe in probes:
            fresh = int(
                sum(1 for row in index.dataset.rows if probe.matches(row))
            )
            assert index.coverage(probe) == fresh

    def test_prebuilt_sharded_instance_config_survives_rebuild(self):
        from repro.core.engine import ShardedEngine

        dataset = random_categorical_dataset(30, (2, 2, 2), seed=8, skew=1.0)
        engine = ShardedEngine(dataset, shards=3, mask_cache_size=16)
        index = IncrementalMupIndex(dataset, threshold=2, engine=engine)
        index.add_rows([(0, 0, 0), (1, 1, 1)])
        rebuilt = index._oracle.engine
        # Same configuration on the new dataset...
        assert isinstance(rebuilt, ShardedEngine)
        assert rebuilt is not engine
        assert rebuilt.requested_shards == 3
        assert rebuilt.mask_cache_size == 16
        # ...with a cold cache (no state carried over from the old dataset).
        assert rebuilt.dataset is index.dataset
        assert set(index.mups()) == scratch_mups(index.dataset, 2)


class FlakyEngineFactory:
    """Builds real dense engines but raises on a chosen build number."""

    def __init__(self, fail_on):
        self.builds = 0
        self.fail_on = fail_on

    def __call__(self, dataset):
        from repro.core.engine import DenseBoolEngine

        self.builds += 1
        if self.builds == self.fail_on:
            raise RuntimeError("simulated index-build failure")
        return DenseBoolEngine(dataset)


class TestFailedRebuild:
    """Regression: a failed delivery rebuild must not corrupt the index.

    The rebuild used to swap state piecemeal, so a failed oracle build
    (e.g. a spill-dir write error) could leave the index pointing at a
    retired engine or a half-updated dataset.  Now the new oracle is
    constructed before anything changes: on failure the index keeps
    answering from the old state, and a later delivery still succeeds.
    """

    def test_failed_add_leaves_index_consistent(self, example1_dataset):
        factory = FlakyEngineFactory(fail_on=2)  # build 1 is __init__
        index = IncrementalMupIndex(
            example1_dataset, threshold=1, engine=factory
        )
        before_mups = set(index.mups())
        before_n = index.dataset.n
        probe = Pattern.from_string("1XX")
        before_coverage = index.coverage(probe)

        with pytest.raises(RuntimeError, match="simulated index-build"):
            index.add_rows([(1, 1, 1)])

        # Old state intact and still answering queries.
        assert index.dataset.n == before_n
        assert set(index.mups()) == before_mups
        assert index.coverage(probe) == before_coverage
        assert set(index.mups()) == scratch_mups(index.dataset, 1)

        # The next delivery (build 3) succeeds and repairs the MUP set.
        resolved = index.add_rows([(1, 1, 1)])
        assert resolved == [Pattern.from_string("1XX")]
        assert index.dataset.n == before_n + 1
        assert set(index.mups()) == scratch_mups(index.dataset, 1)
        assert factory.builds == 3
