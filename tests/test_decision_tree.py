"""Unit tests for the categorical CART substrate (§V-B2)."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.ml.decision_tree import DecisionTreeClassifier, _gini


class TestGini:
    def test_pure_is_zero(self):
        assert _gini(np.array([1, 1, 1])) == 0.0

    def test_balanced_binary_is_half(self):
        assert _gini(np.array([0, 1, 0, 1])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert _gini(np.array([], dtype=int)) == 0.0


class TestFitPredict:
    def test_learns_xor_of_categoricals(self):
        rng = np.random.default_rng(0)
        features = rng.integers(0, 2, size=(400, 2))
        labels = features[:, 0] ^ features[:, 1]
        model = DecisionTreeClassifier().fit(features, labels)
        assert (model.predict(features) == labels).all()

    def test_learns_multiway_split(self):
        features = np.array([[v] for v in [0, 1, 2] * 30])
        labels = np.array([v % 2 for v in [0, 1, 2] * 30])
        model = DecisionTreeClassifier().fit(features, labels)
        assert model.predict([[0], [1], [2]]).tolist() == [0, 1, 0]

    def test_constant_labels_single_leaf(self):
        model = DecisionTreeClassifier().fit(np.zeros((5, 2), dtype=int), np.ones(5, dtype=int))
        assert model.depth() == 0
        assert model.node_count() == 1
        assert model.predict([[0, 0]]).tolist() == [1]

    def test_unseen_value_falls_back_to_majority(self):
        features = np.array([[0], [0], [1], [1], [1]])
        labels = np.array([0, 0, 1, 1, 1])
        model = DecisionTreeClassifier().fit(features, labels)
        # Value 2 never appeared: prediction falls back to the node
        # majority, which is 1 (three of five training rows).
        assert model.predict([[2]]).tolist() == [1]

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(1)
        features = rng.integers(0, 2, size=(300, 4))
        labels = features[:, 0] ^ features[:, 1] ^ features[:, 2]
        deep = DecisionTreeClassifier().fit(features, labels)
        shallow = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        assert deep.depth() > shallow.depth()
        assert shallow.depth() <= 1

    def test_min_samples_split(self):
        features = np.array([[0], [1]])
        labels = np.array([0, 1])
        model = DecisionTreeClassifier(min_samples_split=3).fit(features, labels)
        assert model.depth() == 0

    def test_min_impurity_decrease_blocks_weak_splits(self):
        rng = np.random.default_rng(2)
        features = rng.integers(0, 2, size=(200, 1))
        labels = (rng.uniform(size=200) < 0.5).astype(int)  # noise only
        model = DecisionTreeClassifier(min_impurity_decrease=0.05).fit(features, labels)
        assert model.depth() == 0

    def test_predict_proba_is_leaf_purity(self):
        features = np.array([[0], [0], [0], [1]])
        labels = np.array([0, 0, 1, 1])
        model = DecisionTreeClassifier().fit(features, labels)
        proba = model.predict_proba([[0], [1]])
        assert proba[0] == pytest.approx(2 / 3)
        assert proba[1] == pytest.approx(1.0)

    def test_each_attribute_used_once_per_path(self):
        # Multiway splits consume an attribute entirely, so depth cannot
        # exceed the number of attributes.
        rng = np.random.default_rng(3)
        features = rng.integers(0, 3, size=(500, 3))
        labels = rng.integers(0, 2, size=500)
        model = DecisionTreeClassifier().fit(features, labels)
        assert model.depth() <= 3


class TestValidation:
    def test_bad_hyperparameters(self):
        with pytest.raises(DataError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(DataError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_fit_shape_checks(self):
        model = DecisionTreeClassifier()
        with pytest.raises(DataError):
            model.fit(np.zeros(3), np.zeros(3))
        with pytest.raises(DataError):
            model.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(DataError):
            model.fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(DataError):
            DecisionTreeClassifier().predict([[0]])

    def test_predict_shape_check(self):
        model = DecisionTreeClassifier().fit(np.zeros((4, 2), dtype=int), np.zeros(4, dtype=int))
        with pytest.raises(DataError):
            model.predict([[0, 0, 0]])
