"""EngineConfig: validation, serialization round-trips, legacy shims.

The config is the single holder of the cross-field rules the CLI used to
hand-roll, so programmatic callers must get the same clear ``EngineError``
for every invalid combination — and ``resolve_engine``'s legacy
name+kwargs style must route through the same validator instead of
silently ignoring (or TypeError-ing on) inapplicable options.
"""

import dataclasses

import pytest

from repro.cli import build_parser
from repro.core.engine import (
    AUTO,
    DenseBoolEngine,
    EngineConfig,
    PackedBitsetEngine,
    ShardedEngine,
    engine_name,
    resolve_engine,
)
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError


@pytest.fixture
def dataset():
    return random_categorical_dataset(40, (2, 3, 2), seed=5, skew=1.0)


class TestValidation:
    """Every invalid combination raises a clear EngineError."""

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    @pytest.mark.parametrize(
        "options",
        [
            {"shards": 2},
            {"workers": 2},
            {"workers_mode": "thread"},
            {"spill_dir": "/tmp/x"},
            {"max_resident_bytes": 1024},
        ],
    )
    def test_sharded_only_options_rejected_elsewhere(self, backend, options):
        with pytest.raises(EngineError, match="--engine sharded"):
            EngineConfig(backend=backend, **options)

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError, match="unknown coverage engine"):
            EngineConfig(backend="roaring")

    def test_bad_counts_rejected(self):
        with pytest.raises(EngineError, match="shard count"):
            EngineConfig(backend="sharded", shards=0)
        with pytest.raises(EngineError, match="worker count"):
            EngineConfig(backend="sharded", workers=0)
        with pytest.raises(EngineError, match="mask_cache_size"):
            EngineConfig(backend="packed", mask_cache_size=-1)
        with pytest.raises(EngineError, match="max_resident_bytes"):
            EngineConfig(backend=AUTO, max_resident_bytes=0)

    def test_bad_workers_mode_rejected(self):
        with pytest.raises(EngineError, match="workers_mode"):
            EngineConfig(backend="sharded", workers_mode="mpi")

    def test_process_mode_needs_a_real_pool(self):
        for workers in (None, 1):
            with pytest.raises(EngineError, match="workers >= 2"):
                EngineConfig(
                    backend=AUTO, workers=workers, workers_mode="process"
                )

    def test_process_mode_on_sharded_needs_spill(self):
        with pytest.raises(EngineError, match="out-of-core"):
            EngineConfig(backend="sharded", workers=2, workers_mode="process")
        # Under auto the planner supplies the spill directory.
        config = EngineConfig(backend=AUTO, workers=2, workers_mode="process")
        assert config.is_auto

    def test_sharded_budget_needs_spill(self):
        with pytest.raises(EngineError, match="out-of-core"):
            EngineConfig(backend="sharded", max_resident_bytes=1024)
        # Under auto the budget is the planner's memory budget instead.
        config = EngineConfig(backend=AUTO, max_resident_bytes=1024)
        assert config.max_resident_bytes == 1024

    def test_valid_out_of_core_combination(self, tmp_path):
        config = EngineConfig(
            backend="sharded",
            shards=3,
            workers=2,
            workers_mode="process",
            spill_dir=str(tmp_path),
            max_resident_bytes=1 << 20,
        )
        assert config.engine_options()["spill_dir"] == str(tmp_path)


class TestSerialization:
    def test_dict_round_trip(self, tmp_path):
        config = EngineConfig(
            backend="sharded",
            shards=8,
            workers=2,
            spill_dir=str(tmp_path),
            max_resident_bytes=4096,
            mask_cache_size=0,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_default_round_trip(self):
        config = EngineConfig()
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(EngineError, match="unknown EngineConfig field"):
            EngineConfig.from_dict({"backend": "packed", "turbo": True})

    def test_from_options_rejects_unknown_options(self):
        with pytest.raises(EngineError, match="unknown engine option"):
            EngineConfig.from_options("packed", turbo=True)

    def test_describe_shows_set_fields_only(self):
        config = EngineConfig(backend="sharded", shards=4)
        assert config.describe() == "backend=sharded shards=4"

    def test_json_serializable(self):
        import json

        config = EngineConfig(backend=AUTO, max_resident_bytes=1 << 20)
        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()

    def test_kernel_tier_round_trip(self):
        config = EngineConfig(backend="packed", kernel_tier="python")
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert "kernel_tier=python" in config.describe()

    def test_kernel_tier_applies_to_every_backend(self):
        for backend in ("dense", "packed", "sharded", "compressed", AUTO):
            config = EngineConfig(backend=backend, kernel_tier="auto")
            assert config.kernel_tier == "auto"

    def test_invalid_kernel_tier_rejected(self):
        with pytest.raises(EngineError, match="kernel_tier"):
            EngineConfig(backend="packed", kernel_tier="fortran")


class TestCliArgs:
    def test_cli_args_round_trip(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            [
                "identify",
                "data.csv",
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--shards",
                "6",
                "--workers",
                "2",
                "--workers-mode",
                "thread",
                "--spill-dir",
                str(tmp_path),
                "--max-resident-bytes",
                "2048",
            ]
        )
        config = EngineConfig.from_cli_args(args)
        assert config == EngineConfig(
            backend="sharded",
            shards=6,
            workers=2,
            workers_mode="thread",
            spill_dir=str(tmp_path),
            max_resident_bytes=2048,
        )

    def test_cli_kernel_tier_round_trip(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "identify",
                "data.csv",
                "--threshold",
                "5",
                "--kernel-tier",
                "python",
            ]
        )
        config = EngineConfig.from_cli_args(args)
        assert config == EngineConfig(backend=AUTO, kernel_tier="python")

    def test_cli_default_is_auto(self):
        parser = build_parser()
        args = parser.parse_args(["identify", "data.csv", "--threshold", "5"])
        config = EngineConfig.from_cli_args(args)
        assert config.is_auto
        assert config == EngineConfig(backend=AUTO)

    def test_cli_invalid_combination_raises_engine_error(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            [
                "identify",
                "data.csv",
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--spill-dir",
                str(tmp_path),
            ]
        )
        with pytest.raises(EngineError, match="--engine sharded"):
            EngineConfig.from_cli_args(args)

    def test_partial_namespace_counts_as_unset(self):
        class Namespace:
            engine = "packed"

        assert EngineConfig.from_cli_args(Namespace()) == EngineConfig(
            backend="packed"
        )


class TestResolution:
    def test_config_resolves_to_configured_engine(self, dataset):
        engine = resolve_engine(
            EngineConfig(backend="sharded", shards=2, mask_cache_size=0), dataset
        )
        assert isinstance(engine, ShardedEngine)
        assert engine.requested_shards == 2
        assert engine.mask_cache_size == 0

    def test_none_fields_defer_to_backend_defaults(self, dataset):
        engine = resolve_engine(EngineConfig(backend="sharded"), dataset)
        assert engine.requested_shards == ShardedEngine(dataset).requested_shards

    def test_config_is_a_dataset_free_factory(self, dataset):
        config = EngineConfig(backend="packed", mask_cache_size=3)
        engine = config(dataset)
        assert isinstance(engine, PackedBitsetEngine)
        assert engine.mask_cache_size == 3
        # Overrides replace fields, factory-style.
        assert config(dataset, mask_cache_size=0).mask_cache_size == 0

    def test_options_cannot_be_combined_with_config(self, dataset):
        with pytest.raises(Exception, match="EngineConfig"):
            resolve_engine(EngineConfig(backend="packed"), dataset, shards=2)

    def test_engine_name_of_config(self):
        assert engine_name(EngineConfig(backend="sharded")) == "sharded"
        assert engine_name(EngineConfig(backend=AUTO)) == AUTO
        assert engine_name(AUTO) == AUTO

    def test_legacy_kwargs_route_through_validation(self, dataset):
        """Satellite bugfix: inapplicable kwargs now raise the same clear
        EngineError programmatically as the CLI flags do — not a
        constructor TypeError, and never silent acceptance."""
        with pytest.raises(EngineError, match="--engine sharded"):
            resolve_engine("dense", dataset, shards=3)
        with pytest.raises(EngineError, match="--engine sharded"):
            resolve_engine("packed", dataset, spill_dir="/tmp/x")
        with pytest.raises(EngineError, match="out-of-core"):
            resolve_engine("sharded", dataset, max_resident_bytes=64)
        with pytest.raises(EngineError, match="unknown engine option"):
            resolve_engine("packed", dataset, turbo=True)

    def test_legacy_kwargs_warn_but_work(self, dataset):
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            engine = resolve_engine("sharded", dataset, shards=2)
        assert engine.requested_shards == 2

    def test_templates_are_configs_for_registered_backends(self, dataset):
        for engine in (
            DenseBoolEngine(dataset, mask_cache_size=5),
            PackedBitsetEngine(dataset),
            ShardedEngine(dataset, shards=2, workers=2),
        ):
            template = engine.template()
            assert isinstance(template, EngineConfig)
            assert template.backend == type(engine).name
            rebuilt = template(dataset)
            assert type(rebuilt) is type(engine)
            assert rebuilt.mask_cache_size == engine.mask_cache_size

    def test_unregistered_subclass_template_falls_back_to_callable(
        self, dataset
    ):
        class Unregistered(DenseBoolEngine):
            name = "unregistered-test"

        template = Unregistered(dataset).template()
        assert not isinstance(template, EngineConfig)
        assert callable(template)
        assert isinstance(template(dataset), Unregistered)
