"""Scale-test harness: coverage over an index bigger than resident memory.

The fixture factory synthesizes a dataset whose packed word space (the
out-of-core index on disk) deliberately exceeds a tiny
``max_resident_bytes``, then pins the out-of-core engine against the
in-memory backends: MUP sets must be identical across ``dense`` /
``packed`` / ``sharded`` / ``compressed`` / out-of-core for **all five**
identification algorithms, while the loader instrumentation proves the engine streamed —
resident shard bytes never exceeded the budget and shards were actually
evicted.  This is the test that keeps "datasets bigger than memory" a
working scenario instead of an aspiration.
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    CompressedEngine,
    DenseBoolEngine,
    PackedBitsetEngine,
    ShardedEngine,
)
from repro.core.mups.base import ALGORITHMS, find_mups
from repro.core.pattern import Pattern
from repro.data.synthetic import random_categorical_dataset

pytestmark = pytest.mark.slow

#: Shard count for the overflow cases — enough that a two-shard budget
#: forces many evictions over one traversal.
SHARDS = 8

ALL_ALGORITHMS = sorted(ALGORITHMS)


def make_overflow_case(tmp_path, seed: int = 11, n: int = 900):
    """Build (dataset, out-of-core engine, budget) with index >> budget.

    The budget is derived from the actual spill layout: two shards'
    resident bytes (so every load fits under it, eviction provably works),
    while the whole index is several times larger.  Returns an engine
    attached with that budget plus the budget itself.
    """
    dataset = random_categorical_dataset(
        n, (5, 4, 3, 3), seed=seed, skew=1.0
    )
    root = tmp_path / "spill"
    writer_engine = ShardedEngine(dataset, shards=SHARDS, spill_dir=str(root))
    store = writer_engine.store
    budget = 2 * max(
        store.shard_nbytes(shard_id) for shard_id in range(store.shard_count)
    )
    # The scenario under test: the packed word space cannot be resident.
    assert writer_engine.store.data_nbytes > budget
    engine = ShardedEngine.attach(
        dataset, writer_engine.spill_path, max_resident_bytes=budget
    )
    return dataset, writer_engine, engine, budget


def test_fixture_factory_overflows_the_budget(tmp_path):
    dataset, owner, engine, budget = make_overflow_case(tmp_path)
    try:
        assert engine.out_of_core
        assert engine.store.max_resident_bytes == budget
        assert engine.shard_count == SHARDS
        # The streamed bytes (words + multiplicities) overflow the budget.
        assert engine.store.data_nbytes > budget
    finally:
        engine.close()
        owner.close()


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_mup_sets_identical_across_engines_under_budget(tmp_path, algorithm):
    dataset, owner, out_of_core, budget = make_overflow_case(tmp_path)
    try:
        reference = find_mups(
            dataset,
            threshold=3,
            algorithm=algorithm,
            engine=DenseBoolEngine(dataset),
        )
        assert reference.mups, "overflow fixture must actually have MUPs"
        for engine in (
            PackedBitsetEngine(dataset),
            ShardedEngine(dataset, shards=3),
            CompressedEngine(dataset),
            out_of_core,
        ):
            result = find_mups(
                dataset, threshold=3, algorithm=algorithm, engine=engine
            )
            assert result.as_set() == reference.as_set(), type(engine).name
        stats = out_of_core.store.stats()
        # The loader streamed: stayed under budget and evicted shards.
        assert stats["peak_resident_bytes"] <= budget
        assert stats["over_budget_loads"] == 0
        if stats["loads"]:
            assert stats["evictions"] > 0
            assert stats["loads"] > SHARDS
        else:
            # PATTERN-COMBINER works bottom-up from the aggregated unique
            # rows and never queries the engine.
            assert algorithm == "pattern_combiner"
    finally:
        out_of_core.close()
        owner.close()


def test_point_and_batched_queries_stream_under_budget(tmp_path):
    dataset, owner, engine, budget = make_overflow_case(tmp_path, seed=29)
    try:
        dense = DenseBoolEngine(dataset)
        patterns = [Pattern.root(dataset.d)]
        for attribute, cardinality in enumerate(dataset.cardinalities):
            for value in range(cardinality):
                patterns.append(
                    Pattern.root(dataset.d).with_value(attribute, value)
                )
        assert [engine.coverage(p) for p in patterns] == [
            dense.coverage(p) for p in patterns
        ]
        assert list(engine.coverage_many(patterns)) == list(
            dense.coverage_many(patterns)
        )
        stats = engine.store.stats()
        assert stats["peak_resident_bytes"] <= budget
        assert stats["resident_bytes"] <= budget
    finally:
        engine.close()
        owner.close()
