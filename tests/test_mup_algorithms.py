"""Unit tests for the five MUP identification algorithms (§III, §V-C).

Every algorithm is checked against Example 1's known answer, against the
naive ground truth on randomized data, and for its specific contract
(level caps, ablation flags, guards).
"""

import numpy as np
import pytest

from repro.core.coverage import CoverageOracle
from repro.core.mups import (
    ALGORITHMS,
    apriori_mups,
    deepdiver,
    find_mups,
    naive_mups,
    pattern_breaker,
    pattern_combiner,
)
from repro.core.mups.base import resolve_threshold
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import ReproError

ALL_NAMES = ["naive", "pattern_breaker", "pattern_combiner", "deepdiver", "apriori"]


class TestExample1:
    """Example 1 (§III-A): the only MUP at τ=1 is 1XX."""

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_single_mup(self, example1_dataset, algorithm):
        result = find_mups(example1_dataset, threshold=1, algorithm=algorithm)
        assert set(map(str, result.mups)) == {"1XX"}

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_dominated_patterns_excluded(self, example1_dataset, algorithm):
        result = find_mups(example1_dataset, threshold=1, algorithm=algorithm)
        # The 8 dominated uncovered patterns (1X0, 1X1, 10X, ...) must not
        # appear.
        assert Pattern.from_string("1X0") not in result
        assert Pattern.from_string("111") not in result


class TestDegenerateThresholds:
    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    def test_threshold_above_n_makes_root_the_mup(self, example1_dataset, algorithm):
        result = find_mups(example1_dataset, threshold=100, algorithm=algorithm)
        assert set(map(str, result.mups)) == {"XXX"}

    @pytest.mark.parametrize(
        "algorithm", ["naive", "pattern_breaker", "pattern_combiner", "deepdiver"]
    )
    def test_fully_covered_dataset_has_no_mups(self, algorithm):
        # Every combination of a 2x2 space appears 3 times.
        rows = [[a, b] for a in (0, 1) for b in (0, 1)] * 3
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        result = find_mups(dataset, threshold=3, algorithm=algorithm)
        assert len(result) == 0
        assert result.max_covered_level(2) == 2


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(10))
    def test_all_algorithms_match_naive(self, seed):
        rng = np.random.default_rng(seed)
        cardinalities = tuple(rng.choice([2, 2, 3, 4], size=rng.integers(2, 5)))
        n = int(rng.integers(5, 80))
        tau = int(rng.integers(1, 6))
        dataset = random_categorical_dataset(
            n, cardinalities, seed=seed, skew=float(rng.uniform(0, 1.2))
        )
        reference = naive_mups(dataset, tau).as_set()
        for algorithm in ["pattern_breaker", "pattern_combiner", "deepdiver", "apriori"]:
            result = find_mups(dataset, threshold=tau, algorithm=algorithm)
            assert result.as_set() == reference, (
                f"{algorithm} disagrees with naive on seed={seed}"
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_mup_definition_holds(self, seed):
        dataset = random_categorical_dataset(50, (2, 3, 2), seed=seed, skew=0.9)
        tau = 4
        oracle = CoverageOracle(dataset)
        result = deepdiver(dataset, tau)
        for mup in result:
            assert oracle.coverage(mup) < tau
            for parent in mup.parents():
                assert oracle.coverage(parent) >= tau

    @pytest.mark.parametrize("seed", range(5))
    def test_no_mup_dominates_another(self, seed):
        dataset = random_categorical_dataset(50, (2, 2, 3), seed=seed, skew=0.9)
        result = deepdiver(dataset, 4)
        mups = list(result)
        for i, a in enumerate(mups):
            for b in mups[i + 1 :]:
                assert not a.dominates(b)
                assert not b.dominates(a)


class TestLevelCaps:
    @pytest.mark.parametrize("algorithm", ["pattern_breaker", "deepdiver", "naive"])
    def test_max_level_returns_shallow_mups_only(self, algorithm):
        dataset = random_categorical_dataset(60, (2, 2, 2, 2), seed=1, skew=1.0)
        full = naive_mups(dataset, 6).as_set()
        for cap in range(5):
            capped = find_mups(
                dataset, threshold=6, algorithm=algorithm, max_level=cap
            )
            expected = {p for p in full if p.level <= cap}
            assert capped.as_set() == expected

    def test_max_level_recorded_in_result(self):
        dataset = random_categorical_dataset(30, (2, 2), seed=0)
        result = find_mups(dataset, threshold=2, algorithm="deepdiver", max_level=1)
        assert result.max_level == 1


class TestAblationFlags:
    def test_breaker_without_masks_agrees(self):
        dataset = random_categorical_dataset(50, (2, 3, 2), seed=2, skew=0.8)
        with_masks = pattern_breaker(dataset, 4, use_masks=True)
        without = pattern_breaker(dataset, 4, use_masks=False)
        assert with_masks.as_set() == without.as_set()

    def test_deepdiver_without_index_agrees(self):
        dataset = random_categorical_dataset(50, (2, 3, 2), seed=3, skew=0.8)
        with_index = deepdiver(dataset, 4, use_dominance_index=True)
        without = deepdiver(dataset, 4, use_dominance_index=False)
        assert with_index.as_set() == without.as_set()


class TestGuards:
    def test_naive_refuses_huge_spaces(self):
        dataset = random_categorical_dataset(10, (4,) * 12, seed=0)
        with pytest.raises(ReproError):
            naive_mups(dataset, 2)

    def test_combiner_refuses_huge_bottom_level(self):
        dataset = random_categorical_dataset(10, (10,) * 9, seed=0)
        with pytest.raises(ReproError):
            pattern_combiner(dataset, 2)

    def test_unknown_algorithm_rejected(self, example1_dataset):
        with pytest.raises(ReproError):
            find_mups(example1_dataset, threshold=1, algorithm="nope")

    def test_threshold_and_rate_are_exclusive(self, example1_dataset):
        with pytest.raises(ReproError):
            find_mups(example1_dataset, threshold=1, threshold_rate=0.5)
        with pytest.raises(ReproError):
            find_mups(example1_dataset)

    def test_threshold_must_be_positive(self, example1_dataset):
        with pytest.raises(ReproError):
            find_mups(example1_dataset, threshold=0)

    def test_resolve_threshold_rate(self, example1_dataset):
        assert resolve_threshold(example1_dataset, threshold_rate=0.5) == 3

    def test_registry_contains_all_algorithms(self):
        assert set(ALL_NAMES) <= set(ALGORITHMS)


class TestResultType:
    def test_result_is_sorted_and_iterable(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=2, algorithm="naive")
        assert list(result.mups) == sorted(result.mups)
        assert len(list(iter(result))) == len(result)

    def test_level_histogram(self):
        dataset = random_categorical_dataset(50, (2, 2, 2), seed=4, skew=1.0)
        result = deepdiver(dataset, 5)
        histogram = result.level_histogram()
        assert sum(histogram.values()) == len(result)
        for level, count in histogram.items():
            assert count == len(result.at_level(level))

    def test_stats_populated(self, example1_dataset):
        result = pattern_breaker(example1_dataset, 1)
        assert result.stats.nodes_generated > 0
        assert result.stats.coverage_evaluations > 0
        assert result.stats.seconds >= 0.0
        assert isinstance(result.stats.as_dict(), dict)

    def test_reused_oracle(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        result = find_mups(
            example1_dataset, threshold=1, algorithm="deepdiver", oracle=oracle
        )
        assert set(map(str, result.mups)) == {"1XX"}
        assert oracle.evaluations > 0


class TestAprioriSpecifics:
    def test_wasted_work_counter(self):
        # A dataset with two frequent values of one attribute forces apriori
        # to generate and count invalid same-attribute item-sets.
        rows = [[0, 0]] * 10 + [[1, 0]] * 10
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        result = apriori_mups(dataset, 3)
        assert result.stats.pruned > 0

    def test_apriori_level1_mups(self):
        rows = [[0, 0]] * 10 + [[0, 1]] * 2
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        result = apriori_mups(dataset, 3)
        reference = naive_mups(dataset, 3)
        assert result.as_set() == reference.as_set()
