"""Unit tests for the pattern algebra (§II definitions)."""

import pytest

from repro.core.pattern import Pattern, X, parse_patterns
from repro.data.dataset import Schema
from repro.exceptions import PatternError


class TestConstruction:
    def test_from_string_parses_values_and_x(self):
        pattern = Pattern.from_string("1XX0")
        assert pattern.values == (1, X, X, 0)

    def test_from_string_lowercase_x(self):
        assert Pattern.from_string("1xX0") == Pattern.from_string("1XX0")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(PatternError):
            Pattern.from_string("1?0")

    def test_of_accepts_none_and_strings(self):
        assert Pattern.of(1, None, "X", 0) == Pattern.from_string("1XX0")

    def test_root_is_all_x(self):
        root = Pattern.root(4)
        assert str(root) == "XXXX"
        assert root.is_root
        assert root.level == 0

    def test_root_rejects_zero_length(self):
        with pytest.raises(PatternError):
            Pattern.root(0)

    def test_rejects_values_below_x(self):
        with pytest.raises(PatternError):
            Pattern([-2, 0])

    def test_from_tuple_row(self):
        pattern = Pattern.from_tuple_row((1, 0, 1))
        assert pattern.is_leaf
        assert pattern.level == 3

    def test_str_roundtrip(self):
        for text in ["XXX", "10X", "X2X1", "0000"]:
            assert str(Pattern.from_string(text)) == text

    def test_repr_contains_compact_form(self):
        assert "1XX0" in repr(Pattern.from_string("1XX0"))

    def test_parse_patterns_helper(self):
        patterns = parse_patterns(["1X", "X0"])
        assert patterns == (Pattern.from_string("1X"), Pattern.from_string("X0"))


class TestStructure:
    def test_level_counts_deterministic_elements(self):
        # The paper's example: ℓ(1XXX) = 1, ℓ(10X1) = 3.
        assert Pattern.from_string("1XXX").level == 1
        assert Pattern.from_string("10X1").level == 3

    def test_deterministic_indices(self):
        pattern = Pattern.from_string("X1X0")
        assert pattern.deterministic_indices() == (1, 3)
        assert pattern.nondeterministic_indices() == (0, 2)

    def test_is_deterministic(self):
        pattern = Pattern.from_string("X1")
        assert not pattern.is_deterministic(0)
        assert pattern.is_deterministic(1)

    def test_rightmost_deterministic(self):
        assert Pattern.from_string("X1X0").rightmost_deterministic() == 3
        assert Pattern.from_string("1XXX").rightmost_deterministic() == 0
        assert Pattern.from_string("XXXX").rightmost_deterministic() == -1

    def test_rightmost_nondeterministic(self):
        assert Pattern.from_string("X1X0").rightmost_nondeterministic() == 2
        assert Pattern.from_string("1111").rightmost_nondeterministic() == -1

    def test_is_leaf(self):
        assert Pattern.from_string("101").is_leaf
        assert not Pattern.from_string("1X1").is_leaf

    def test_len_and_getitem_and_iter(self):
        pattern = Pattern.from_string("1X0")
        assert len(pattern) == 3
        assert pattern[0] == 1
        assert pattern[1] == X
        assert list(pattern) == [1, X, 0]


class TestMatching:
    """Definition 1's worked example: P = X1X0 over four binary attributes."""

    PATTERN = Pattern.from_string("X1X0")

    def test_t1_matches(self):
        assert self.PATTERN.matches([1, 1, 0, 0])

    def test_t2_matches(self):
        assert self.PATTERN.matches([0, 1, 1, 0])

    def test_t3_does_not_match(self):
        # t3 = 1010 disagrees on A2.
        assert not self.PATTERN.matches([1, 0, 1, 0])

    def test_root_matches_everything(self):
        assert Pattern.root(3).matches([0, 1, 5])

    def test_length_mismatch_raises(self):
        with pytest.raises(PatternError):
            self.PATTERN.matches([1, 1, 0])


class TestDominance:
    def test_paper_example(self):
        # 10X1 is dominated by 1XXX.
        general = Pattern.from_string("1XXX")
        specific = Pattern.from_string("10X1")
        assert general.dominates(specific)
        assert not specific.dominates(general)

    def test_dominance_is_strict(self):
        pattern = Pattern.from_string("1X")
        assert not pattern.dominates(pattern)
        assert pattern.covers(pattern)

    def test_incomparable_patterns(self):
        a = Pattern.from_string("1X")
        b = Pattern.from_string("X1")
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_different_values_do_not_dominate(self):
        assert not Pattern.from_string("1X").dominates(Pattern.from_string("01"))

    def test_covers_requires_same_length(self):
        with pytest.raises(PatternError):
            Pattern.from_string("1X").covers(Pattern.from_string("1XX"))

    def test_is_parent_of(self):
        parent = Pattern.from_string("1XX")
        child = Pattern.from_string("1X0")
        assert parent.is_parent_of(child)
        assert not parent.is_parent_of(Pattern.from_string("100"))  # grandchild
        assert not child.is_parent_of(parent)


class TestNavigation:
    def test_parents_replace_one_deterministic_element(self):
        pattern = Pattern.from_string("10X")
        parents = set(map(str, pattern.parents()))
        assert parents == {"X0X", "1XX"}

    def test_root_has_no_parents(self):
        assert list(Pattern.root(3).parents()) == []

    def test_with_value(self):
        assert str(Pattern.from_string("XXX").with_value(1, 2)) == "X2X"
        assert str(Pattern.from_string("121").with_value(1, X)) == "1X1"

    def test_with_value_out_of_range_raises(self):
        with pytest.raises(PatternError):
            Pattern.from_string("XX").with_value(5, 1)

    def test_merge_intersection(self):
        a = Pattern.from_string("10X1")
        b = Pattern.from_string("1X01")
        assert str(a.merge_intersection(b)) == "1XX1"

    def test_merge_intersection_length_mismatch(self):
        with pytest.raises(PatternError):
            Pattern.from_string("1X").merge_intersection(Pattern.from_string("1XX"))


class TestHashingAndOrdering:
    def test_equal_patterns_hash_equal(self):
        assert hash(Pattern.from_string("1X0")) == hash(Pattern.from_string("1X0"))

    def test_set_membership(self):
        patterns = {Pattern.from_string("1X"), Pattern.from_string("X1")}
        assert Pattern.from_string("1X") in patterns
        assert Pattern.from_string("11") not in patterns

    def test_sorting_is_deterministic(self):
        patterns = [Pattern.from_string(t) for t in ["11", "X1", "1X"]]
        assert sorted(patterns) == sorted(patterns[::-1])

    def test_not_equal_to_other_types(self):
        assert Pattern.from_string("1X") != "1X"


class TestDescribe:
    def test_describe_uses_labels(self):
        schema = Schema.of(
            ["race", "marital"],
            [2, 2],
            [["white", "hispanic"], ["single", "widowed"]],
        )
        pattern = Pattern.from_string("11")
        assert pattern.describe(schema) == "race=hispanic, marital=widowed"

    def test_describe_root(self):
        schema = Schema.binary(2)
        assert Pattern.root(2).describe(schema) == "(any)"

    def test_describe_without_labels_uses_codes(self):
        schema = Schema.binary(2)
        assert Pattern.from_string("X1").describe(schema) == "A2=1"
