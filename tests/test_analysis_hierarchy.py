"""Unit tests for the hierarchical MUP analysis layer.

Covers the stack validation, the coarse-to-fine search (including its
equivalence to flat ``find_mups`` on every rollup), the generalization
remedies, the bucketization sweep, and the generalize-vs-acquire cost
model.
"""

import numpy as np
import pytest

from repro.analysis.hierarchy import (
    BucketSweepResult,
    HierarchyStack,
    bucketize_sweep,
    bucketized_dataset,
    find_mups_hierarchical,
)
from repro.core.coverage import CoverageOracle
from repro.core.engine import resolve_engine
from repro.core.enhancement import (
    GeneralizationRemedy,
    plan_hierarchical_enhancement,
)
from repro.core.mups import find_mups
from repro.core.pattern import Pattern, X
from repro.data.hierarchy import AttributeHierarchy
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import DataError, EnhancementError, SchemaError


def make_dataset(n=120, cardinalities=(8, 4, 3), seed=3, skew=1.4):
    return random_categorical_dataset(n, cardinalities, seed=seed, skew=skew)


def make_stack(dataset):
    names = dataset.schema.names
    return HierarchyStack.of(
        dataset,
        {
            names[0]: [
                AttributeHierarchy.of(names[0], [0, 0, 1, 1, 2, 2, 3, 3]),
                AttributeHierarchy.of(names[0], [0, 0, 0, 0, 1, 1, 1, 1]),
            ],
            names[1]: [AttributeHierarchy.of(names[1], [0, 0, 1, 1])],
        },
    )


class TestHierarchyStack:
    def test_depth_is_longest_chain(self):
        stack = make_stack(make_dataset())
        assert stack.depth == 2

    def test_level_zero_is_base(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        roll = stack.rollup_to(dataset, 0)
        assert roll.dataset is dataset
        assert stack.level_hierarchies(0) == {}

    def test_short_chains_saturate(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        level2 = stack.level_hierarchies(2)
        # attr 1 has a one-level chain: at stack level 2 it stays at its
        # coarsest map.
        assert level2[1].groups == (0, 0, 1, 1)
        assert level2[0].groups == (0, 0, 0, 0, 1, 1, 1, 1)

    def test_step_maps_translate_adjacent_levels(self):
        stack = make_stack(make_dataset())
        steps0 = stack.step_maps(0)
        assert steps0[0].groups == (0, 0, 1, 1, 2, 2, 3, 3)
        steps1 = stack.step_maps(1)
        # level-1 codes (4 groups) -> level-2 codes (2 groups); attr 1 is
        # saturated past level 1 so it is omitted (identity).
        assert steps1[0].groups == (0, 0, 1, 1)
        assert 1 not in steps1

    def test_refinement_must_factor(self):
        dataset = make_dataset(cardinalities=(4, 3))
        name = dataset.schema.names[0]
        with pytest.raises(SchemaError, match="does not factor"):
            HierarchyStack.of(
                dataset,
                {
                    name: [
                        AttributeHierarchy.of(name, [0, 0, 1, 1]),
                        # splits fine group 0 across coarse groups
                        AttributeHierarchy.of(name, [0, 1, 1, 1]),
                    ]
                },
            )

    def test_empty_chain_rejected(self):
        dataset = make_dataset()
        with pytest.raises(SchemaError, match="empty"):
            HierarchyStack.of(dataset, {dataset.schema.names[0]: []})

    def test_no_chains_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            HierarchyStack.of(make_dataset(), {})

    def test_mismatched_attribute_rejected(self):
        dataset = make_dataset()
        names = dataset.schema.names
        with pytest.raises(SchemaError, match="contains a hierarchy"):
            HierarchyStack.of(
                dataset,
                {names[1]: [AttributeHierarchy.of(names[0], [0, 0, 1, 1])]},
            )

    def test_wrong_domain_rejected(self):
        dataset = make_dataset()
        name = dataset.schema.names[0]
        with pytest.raises(SchemaError, match="maps 3 values"):
            HierarchyStack.of(
                dataset, {name: [AttributeHierarchy.of(name, [0, 0, 1])]}
            )

    def test_level_out_of_range(self):
        stack = make_stack(make_dataset())
        with pytest.raises(DataError):
            stack.level_hierarchies(3)


class TestFindMupsHierarchical:
    @pytest.mark.parametrize("tau", [2, 5, 9, 40])
    def test_bit_identical_to_flat_at_every_level(self, tau):
        dataset = make_dataset()
        stack = make_stack(dataset)
        result = find_mups_hierarchical(dataset, stack, threshold=tau)
        for level in range(stack.depth + 1):
            roll = stack.rollup_to(dataset, level)
            flat = find_mups(roll.dataset, threshold=tau)
            assert result.at_level(level).mups == flat.mups

    def test_max_level_forwarded(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        result = find_mups_hierarchical(
            dataset, stack, threshold=6, max_level=1
        )
        for level in range(stack.depth + 1):
            roll = stack.rollup_to(dataset, level)
            flat = find_mups(roll.dataset, threshold=6, max_level=1)
            assert result.at_level(level).mups == flat.mups

    def test_threshold_rate_accepted(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        result = find_mups_hierarchical(dataset, stack, threshold_rate=0.05)
        assert result.threshold >= 1

    def test_coarse_bounds_skip_fine_counting(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        tau = 9
        hier = find_mups_hierarchical(
            dataset, stack, threshold=tau, remedies=False
        )
        # The base level alone, run flat, costs this many evaluations:
        flat = find_mups(dataset, threshold=tau, algorithm="apriori")
        assert hier.stats.pruned > 0
        base_evals = hier.at_level(0).stats.coverage_evaluations
        assert base_evals < flat.stats.coverage_evaluations

    def test_tiny_dataset_root_mup_everywhere(self):
        dataset = make_dataset(n=5)
        stack = make_stack(dataset)
        result = find_mups_hierarchical(dataset, stack, threshold=50)
        root = Pattern.root(dataset.d)
        for level in range(stack.depth + 1):
            assert result.at_level(level).mups == (root,)
        # No generalization of the root exists, so no remedy can be found.
        assert all(not remedy.found for remedy in result.remedies)

    def test_missing_level_raises(self):
        dataset = make_dataset()
        result = find_mups_hierarchical(
            dataset, make_stack(dataset), threshold=5, remedies=False
        )
        with pytest.raises(DataError):
            result.at_level(9)

    def test_warm_oracle_and_shared_memo(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        oracle = CoverageOracle(dataset)
        memo = {}
        first = find_mups_hierarchical(
            dataset, stack, threshold=5, oracle=oracle, memo=memo
        )
        before = oracle.evaluations
        second = find_mups_hierarchical(
            dataset, stack, threshold=5, oracle=oracle, memo=memo
        )
        assert second.at_level(0).mups == first.at_level(0).mups
        # every base-level count was memoized by the first run
        assert second.at_level(0).stats.coverage_evaluations == 0
        assert oracle.evaluations == before

    def test_prebuilt_engine_applies_to_base_level(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        engine = resolve_engine("packed", dataset)
        try:
            result = find_mups_hierarchical(
                dataset, stack, threshold=5, engine=engine, remedies=False
            )
            flat = find_mups(dataset, threshold=5)
            assert result.at_level(0).mups == flat.mups
        finally:
            engine.close()

    def test_as_dict_shape(self):
        dataset = make_dataset()
        result = find_mups_hierarchical(
            dataset, make_stack(dataset), threshold=5
        )
        body = result.as_dict()
        assert {"threshold", "levels", "remedies", "stats"} <= set(body)
        assert [entry["level"] for entry in body["levels"]] == [0, 1, 2]


def brute_force_remedy(dataset, stack, mup, tau):
    """Exhaustive most-specific covered generalization, for cross-checks."""
    from itertools import product as iproduct

    from repro.analysis.hierarchy import _generalized_pattern

    d = len(mup)
    caps = [
        stack.chain_length(i) + 1 if mup[i] != X else 0 for i in range(d)
    ]
    best = None
    for levels in iproduct(*(range(cap + 1) for cap in caps)):
        steps = sum(levels)
        if steps == 0:
            continue
        generalized, expansion = _generalized_pattern(mup, stack, levels)
        coverage = sum(
            int(np.all((dataset.rows == p.values) | (np.array(p.values) == X), axis=1).sum())
            for p in expansion
        )
        if coverage >= tau:
            key = (steps, levels)
            if best is None or key < best[0]:
                best = (key, generalized, coverage)
    return best


class TestGeneralizationRemedies:
    def test_remedies_cover_and_are_minimal(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        tau = 6
        result = find_mups_hierarchical(dataset, stack, threshold=tau)
        assert len(result.remedies) == len(result.mups)
        for remedy in result.remedies:
            assert remedy.found
            assert remedy.coverage >= tau
            expected = brute_force_remedy(dataset, stack, remedy.mup, tau)
            assert expected is not None
            (steps, levels), generalized, coverage = expected
            assert remedy.steps == steps
            assert remedy.levels == levels
            assert remedy.generalized == generalized
            assert remedy.coverage == coverage

    def test_describe_renders_levels(self):
        dataset = make_dataset()
        stack = make_stack(dataset)
        result = find_mups_hierarchical(dataset, stack, threshold=6)
        for remedy in result.remedies:
            text = remedy.describe(dataset.schema, stack)
            assert "generalize to" in text


class TestBucketizeSweep:
    def test_bit_identical_to_independent_runs(self):
        dataset = make_dataset(cardinalities=(5, 3))
        rng = np.random.default_rng(11)
        values = rng.lognormal(0.0, 1.0, size=dataset.n)
        sweep = bucketize_sweep(dataset, values, [2, 4, 8], threshold=4)
        assert isinstance(sweep, BucketSweepResult)
        for point in sweep.points:
            independent = find_mups(
                bucketized_dataset(dataset, values, point.buckets),
                threshold=4,
            )
            assert point.result.mups == independent.mups

    def test_counts_shared_downward(self):
        dataset = make_dataset(cardinalities=(5, 3))
        rng = np.random.default_rng(12)
        values = rng.normal(size=dataset.n)
        sweep = bucketize_sweep(dataset, values, [2, 4, 8], threshold=4)
        independent_evals = 0
        for point in sweep.points:
            flat = find_mups(
                bucketized_dataset(dataset, values, point.buckets),
                threshold=4,
                algorithm="apriori",
            )
            independent_evals += flat.stats.coverage_evaluations
        assert sweep.stats.coverage_evaluations < independent_evals

    def test_non_nesting_counts_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match="nest"):
            bucketize_sweep(dataset, np.arange(dataset.n), [3, 4], threshold=2)

    def test_counts_below_two_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match=">= 2"):
            bucketize_sweep(dataset, np.arange(dataset.n), [1, 2], threshold=2)

    def test_empty_counts_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match="at least one"):
            bucketize_sweep(dataset, np.arange(dataset.n), [], threshold=2)

    def test_constant_column_collapses_every_count(self):
        dataset = make_dataset(cardinalities=(3, 2))
        sweep = bucketize_sweep(
            dataset, np.full(dataset.n, 2.5), [2, 4], threshold=3
        )
        assert [point.cardinality for point in sweep.points] == [1, 1]
        assert sweep.points[0].result.mups == sweep.points[1].result.mups

    def test_point_for_lookup(self):
        dataset = make_dataset(cardinalities=(3, 2))
        sweep = bucketize_sweep(
            dataset, np.arange(dataset.n, dtype=float), [2, 4], threshold=3
        )
        assert sweep.point_for(4).buckets == 4
        with pytest.raises(DataError):
            sweep.point_for(16)

    def test_nan_rejected_through_sweep(self):
        dataset = make_dataset(cardinalities=(3, 2))
        values = np.arange(dataset.n, dtype=float)
        values[3] = np.nan
        with pytest.raises(DataError, match="non-finite"):
            bucketize_sweep(dataset, values, [2, 4], threshold=3)


class TestBucketizedDataset:
    def test_appends_labeled_column(self):
        dataset = make_dataset(cardinalities=(3, 2))
        values = np.arange(dataset.n, dtype=float)
        extended = bucketized_dataset(dataset, values, 4, name="price")
        assert extended.d == dataset.d + 1
        assert extended.schema.names[-1] == "price"
        assert extended.cardinalities[-1] == 4
        assert extended.schema.value_labels[-1][-1].endswith("]")

    def test_quantile_method(self):
        dataset = make_dataset(cardinalities=(3, 2))
        rng = np.random.default_rng(0)
        extended = bucketized_dataset(
            dataset, rng.normal(size=dataset.n), 4, method="quantiles"
        )
        assert extended.cardinalities[-1] <= 4

    def test_unknown_method_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match="unknown bucketization method"):
            bucketized_dataset(
                dataset, np.arange(dataset.n), 4, method="magic"
            )

    def test_name_conflict_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match="already has"):
            bucketized_dataset(
                dataset,
                np.arange(dataset.n),
                4,
                name=dataset.schema.names[0],
            )

    def test_row_count_mismatch_rejected(self):
        dataset = make_dataset(cardinalities=(3, 2))
        with pytest.raises(DataError, match="rows"):
            bucketized_dataset(dataset, np.arange(dataset.n + 1), 4)


class TestHierarchicalEnhancement:
    def run_plan(self, step_cost=1.0, row_cost=1.0):
        dataset = make_dataset()
        stack = make_stack(dataset)
        tau = 6
        result = find_mups_hierarchical(dataset, stack, threshold=tau)
        plan = plan_hierarchical_enhancement(
            dataset,
            result.mups,
            result.remedies,
            tau,
            row_cost=row_cost,
            step_cost=step_cost,
        )
        return result, plan

    def test_cheap_steps_prefer_generalization(self):
        result, plan = self.run_plan(step_cost=0.01)
        assert len(plan.generalizations) == len(result.mups)
        assert plan.acquired == ()
        assert plan.acquisition is None
        assert plan.acquisition_cost == 0.0
        assert plan.total_cost == pytest.approx(plan.generalization_cost)

    def test_expensive_steps_prefer_acquisition(self):
        result, plan = self.run_plan(step_cost=10_000.0)
        assert plan.generalizations == ()
        assert plan.acquired == result.mups
        assert plan.acquisition is not None
        # every target is hittable on an unconstrained validation oracle
        assert plan.acquisition.unhittable == ()
        assert plan.acquisition_cost > 0

    def test_every_mup_is_planned_exactly_once(self):
        result, plan = self.run_plan()
        planned = {r.mup for r in plan.generalizations} | set(plan.acquired)
        assert planned == set(result.mups)

    def test_costs_must_be_positive(self):
        dataset = make_dataset()
        with pytest.raises(EnhancementError):
            plan_hierarchical_enhancement(dataset, [], [], 5, row_cost=0.0)

    def test_as_dict_roundtrips_shapes(self):
        _result, plan = self.run_plan()
        body = plan.as_dict()
        assert body["total_cost"] == pytest.approx(
            body["generalization_cost"] + body["acquisition_cost"]
        )
        for record in body["generalizations"]:
            assert set(record) == {
                "mup",
                "generalized",
                "levels",
                "coverage",
                "steps",
            }

    def test_remedy_found_flag(self):
        remedy = GeneralizationRemedy(
            mup=Pattern.of(1, 2),
            generalized=None,
            levels=(0, 0),
            coverage=0,
            steps=0,
        )
        assert not remedy.found
        assert remedy.as_dict()["generalized"] is None
