"""Tests for the async serving layer: registry, batcher, admission, HTTP.

The concurrency-sensitive pieces get stress tests (registry eviction under
threaded load, coalescing correctness against serial answers, snapshot
isolation while deliveries land mid-traffic); the HTTP transport gets an
end-to-end pass over a real socket via :class:`BackgroundServer`.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.analysis.sweep import sweep_mups, threshold_sensitivity
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineConfig
from repro.core.mups import find_mups
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import AdmissionError, ServeError
from repro.serve import (
    BackgroundServer,
    CoverageService,
    EngineRegistry,
    ResultCache,
    ServeConfig,
)


def make_random_dataset(seed, n=40, cardinalities=(2, 3, 2)):
    """Small seeded dataset, normalized through ``from_rows`` so its
    schema matches what registration infers from the posted rows."""
    raw = random_categorical_dataset(n, cardinalities, seed=seed, skew=0.8)
    return Dataset.from_rows(raw.rows.tolist())


def service_config(**overrides) -> ServeConfig:
    defaults = dict(port=0, batch_window_ms=1.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run_service(config, scenario):
    """Run ``scenario(service)`` (a coroutine function) on a fresh loop."""

    async def _main():
        service = CoverageService(config)
        try:
            return await scenario(service)
        finally:
            service.close()

    return asyncio.run(_main())


async def register(service, dataset):
    report = await service.register_dataset(
        dataset.rows.tolist(), names=list(dataset.schema.names)
    )
    return report["dataset"]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.batch_window_seconds == pytest.approx(0.002)
        assert config.engine.backend == "auto"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("batch_window_ms", -1.0),
            ("max_batch", 0),
            ("registry_max_entries", 0),
            ("registry_max_bytes", 0),
            ("memory_budget_bytes", 0),
            ("latency_budget_ms", 0.0),
            ("max_concurrent", 0),
            ("max_queue", -1),
            ("result_cache_size", -1),
            ("engine", "packed"),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ServeError) as excinfo:
            ServeConfig(**{field: value})
        assert excinfo.value.code == "bad_config"

    def test_to_dict_round_trips_engine(self):
        payload = ServeConfig().to_dict()
        assert payload["engine"]["backend"] == "auto"
        assert payload["port"] == 8642


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_bound_and_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put(("cov", "a", 1), 10)
        cache.put(("cov", "a", 2), 20)
        assert cache.get(("cov", "a", 1)) == 10  # refreshes recency
        cache.put(("cov", "a", 3), 30)  # evicts key 2
        assert cache.get(("cov", "a", 2)) is None
        assert cache.get(("cov", "a", 1)) == 10
        info = cache.info()
        assert info["entries"] == 2
        assert info["evictions"] == 1
        assert info["hits"] == 2 and info["misses"] == 1

    def test_invalidate_drops_only_that_fingerprint(self):
        cache = ResultCache(max_entries=8)
        cache.put(("cov", "old", 1), 1)
        cache.put(("mups", "old", 2), 2)
        cache.put(("cov", "new", 1), 3)
        assert cache.invalidate("old") == 2
        assert cache.get(("cov", "old", 1)) is None
        assert cache.get(("cov", "new", 1)) == 3

    def test_zero_size_disables(self):
        cache = ResultCache(max_entries=0)
        cache.put(("cov", "a", 1), 10)
        assert cache.get(("cov", "a", 1)) is None
        assert not cache.enabled


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_reregistration_returns_same_warm_entry(self):
        dataset = make_random_dataset(3)
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=4, max_bytes=1 << 30
        )
        try:
            entry, created = registry.register(dataset)
            again, created_again = registry.register(dataset)
            assert created and not created_again
            assert again is entry
            assert registry.info()["entries"] == 1
        finally:
            registry.close()

    def test_unknown_key_is_structured_404(self):
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=4, max_bytes=1 << 30
        )
        with pytest.raises(ServeError) as excinfo:
            registry.get("missing")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_dataset"

    def test_lru_eviction_under_entry_cap(self):
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=2, max_bytes=1 << 30
        )
        try:
            datasets = [make_random_dataset(seed) for seed in range(5)]
            keys = [registry.register(d)[0].key for d in datasets]
            info = registry.info()
            assert info["entries"] == 2
            assert info["evictions"] == 3
            # The two most recently registered survive.
            assert registry.get(keys[-1]).key == keys[-1]
            assert registry.get(keys[-2]).key == keys[-2]
            with pytest.raises(ServeError):
                registry.get(keys[0])
        finally:
            registry.close()

    def test_byte_budget_keeps_newest(self):
        first = make_random_dataset(1)
        second = make_random_dataset(2)
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=8, max_bytes=1
        )
        try:
            registry.register(first)
            entry, _ = registry.register(second)
            # Over-budget, but the newest entry always survives.
            info = registry.info()
            assert info["entries"] == 1
            assert registry.get(entry.key) is entry
        finally:
            registry.close()

    def test_concurrent_registration_under_load(self):
        """Threads hammering register/get; entry cap holds, no errors."""
        datasets = [make_random_dataset(seed, n=60) for seed in range(6)]
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=3, max_bytes=1 << 30
        )
        errors = []

        def worker(offset):
            try:
                for i in range(30):
                    dataset = datasets[(offset + i) % len(datasets)]
                    entry, _ = registry.register(dataset)
                    try:
                        registry.get(entry.key)
                    except ServeError:
                        pass  # evicted by a concurrent register: legal
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not errors
            info = registry.info()
            assert info["entries"] <= 3
            assert info["nbytes"] == sum(
                d["nbytes"] for d in info["datasets"]
            )
        finally:
            registry.close()

    def test_delivery_swaps_snapshot_and_aliases(self):
        dataset = make_random_dataset(7)
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=4, max_bytes=1 << 30
        )
        try:
            entry, _ = registry.register(dataset)
            old_snapshot = entry.snapshot
            report = registry.deliver(
                entry, [tuple(dataset.rows[0])], threshold=1,
                algorithm="deepdiver",
            )
            assert report["rows_total"] == dataset.n + 1
            assert entry.snapshot is not old_snapshot
            # Both the registration key and the new fingerprint resolve.
            assert registry.get(entry.key) is entry
            assert registry.get(report["fingerprint"]) is entry
        finally:
            registry.close()


# ----------------------------------------------------------------------
# batching and coalescing
# ----------------------------------------------------------------------
class TestBatching:
    def test_coalesced_counts_match_serial(self):
        dataset = random_categorical_dataset(300, (3, 3, 2), seed=5, skew=0.5)
        dataset = Dataset.from_rows(dataset.rows.tolist())
        patterns = []
        for a in (-1, 0, 1, 2):
            for b in (-1, 0, 1):
                patterns.append(Pattern([a, b, -1]))
        workload = patterns * 25  # heavy repetition: coalescing territory
        oracle = CoverageOracle(dataset)
        expected = [oracle.coverage(p) for p in workload]
        oracle.engine.close()

        async def scenario(service):
            key = await register(service, dataset)
            snapshot = service.registry.get(key).snapshot
            counts = await asyncio.gather(
                *(service.batcher.coverage(snapshot, p) for p in workload)
            )
            return list(counts), service.batcher.info()

        counts, info = run_service(service_config(), scenario)
        assert counts == expected
        assert info["coalesced"] > 0
        assert info["batched_queries"] <= len(set(patterns)) * info["batches"]

    def test_zero_window_disables_batching(self):
        dataset = make_random_dataset(11)

        async def scenario(service):
            key = await register(service, dataset)
            snapshot = service.registry.get(key).snapshot
            pattern = Pattern([-1] * dataset.d)
            counts = await asyncio.gather(
                *(service.batcher.coverage(snapshot, pattern) for _ in range(8))
            )
            return list(counts), service.batcher.info()

        counts, info = run_service(
            service_config(batch_window_ms=0.0), scenario
        )
        assert counts == [dataset.n] * 8
        assert info["batches"] == 0 and info["coalesced"] == 0

    def test_max_batch_flushes_early(self):
        dataset = random_categorical_dataset(100, (4, 4, 3), seed=9, skew=0.3)
        dataset = Dataset.from_rows(dataset.rows.tolist())
        distinct = [
            Pattern([a, b, -1])
            for a in range(dataset.cardinalities[0])
            for b in range(dataset.cardinalities[1])
        ]

        async def scenario(service):
            key = await register(service, dataset)
            snapshot = service.registry.get(key).snapshot
            await asyncio.gather(
                *(service.batcher.coverage(snapshot, p) for p in distinct)
            )
            return service.batcher.info()

        info = run_service(
            # Window long enough that only max_batch can trigger the flush.
            service_config(batch_window_ms=5_000.0, max_batch=4),
            scenario,
        )
        assert info["batches"] >= len(distinct) // 4
        assert info["max_batch_size"] <= 4

    def test_engine_failure_fans_out_to_waiters(self):
        class BrokenOracle:
            def coverage_many(self, patterns):
                raise RuntimeError("engine exploded")

        class BrokenSnapshot:
            fingerprint = "broken"
            oracle = BrokenOracle()

        dataset = make_random_dataset(13)

        async def scenario(service):
            snapshot = BrokenSnapshot()
            pattern = Pattern([0] * dataset.d)
            results = await asyncio.gather(
                *(
                    service.batcher.coverage(snapshot, pattern)
                    for _ in range(3)
                ),
                return_exceptions=True,
            )
            return results

        results = run_service(service_config(), scenario)
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_over_budget_registration_rejected(self):
        dataset = random_categorical_dataset(
            2_000, (6, 5, 4, 3), seed=3, skew=0.3
        )

        async def scenario(service):
            with pytest.raises(AdmissionError) as excinfo:
                await service.register_dataset(dataset.rows.tolist())
            return excinfo.value

        error = run_service(
            service_config(memory_budget_bytes=16), scenario
        )
        assert error.status == 413
        assert error.code == "over_budget"
        assert error.payload()["detail"]["budget_bytes"] == 16

    def test_saturation_rejects_beyond_queue(self):
        async def scenario(service):
            release = asyncio.Event()

            async def hold():
                async with service.admission.heavy():
                    await release.wait()

            holders = [asyncio.create_task(hold()) for _ in range(2)]
            await asyncio.sleep(0.05)  # let one run and one queue
            with pytest.raises(AdmissionError) as excinfo:
                async with service.admission.heavy():
                    pass
            release.set()
            await asyncio.gather(*holders)
            return excinfo.value, service.admission.info()

        error, info = run_service(
            service_config(max_concurrent=1, max_queue=1), scenario
        )
        assert error.status == 429
        assert error.code == "saturated"
        assert info["rejected_saturated"] == 1
        assert info["active"] == 0 and info["waiting"] == 0

    def test_admitted_requests_all_complete(self):
        async def scenario(service):
            done = []

            async def job(i):
                async with service.admission.heavy():
                    await asyncio.sleep(0.001)
                    done.append(i)

            await asyncio.gather(*(job(i) for i in range(20)))
            return done, service.admission.info()

        done, info = run_service(
            service_config(max_concurrent=2, max_queue=64), scenario
        )
        assert sorted(done) == list(range(20))
        assert info["admitted"] == 20


# ----------------------------------------------------------------------
# service semantics
# ----------------------------------------------------------------------
class TestService:
    def test_identify_matches_find_mups(self, example1_dataset):
        expected = find_mups(
            example1_dataset, threshold=1, algorithm="deepdiver"
        ).as_set()

        async def scenario(service):
            key = await register(service, example1_dataset)
            first = await service.identify(key, 1)
            again = await service.identify(key, 1)
            return first, again, service.cache.info()

        first, again, cache = run_service(service_config(), scenario)
        assert set(first["mup_strings"]) == {str(p) for p in expected}
        assert again["mups"] == first["mups"]
        assert cache["hits"] >= 1  # second identify came from the cache

    def test_label_threshold_flags(self, example1_dataset):
        async def scenario(service):
            key = await register(service, example1_dataset)
            return await service.label(
                key, ["1XX", "0XX", [0, None, None]], threshold=2
            )

        body = run_service(service_config(), scenario)
        assert body["coverage"] == [0, 5, 5]
        assert body["covered"] == [False, True, True]
        # List and compact forms of the same pattern answer identically.
        assert body["coverage"][1] == body["coverage"][2]

    def test_enhance_plans_against_served_snapshot(self, example1_dataset):
        async def scenario(service):
            key = await register(service, example1_dataset)
            return await service.enhance(key, 1, 1)

        body = run_service(service_config(), scenario)
        # Example 1's MUP is 1XX: one level-1 target, hit by any 1?? row.
        assert body["targets"] == 1
        assert all(combo[0] == 1 for combo in body["combinations"])
        assert body["unhittable"] == []

    def test_delivery_during_queries_keeps_snapshots_consistent(self):
        """Concurrent label traffic while rows land: every response must be
        internally consistent (the all-wildcard count equals that same
        response's total), though different responses may see different
        generations."""
        dataset = make_random_dataset(17, n=120)
        probe = [None] * dataset.d

        async def scenario(service):
            key = await register(service, dataset)

            async def reader():
                bodies = []
                for _ in range(12):
                    bodies.append(await service.label(key, [probe]))
                return bodies

            async def writer():
                for _ in range(4):
                    await service.deliver(
                        key, [tuple(dataset.rows[0])], threshold=1
                    )
                    await asyncio.sleep(0)

            results = await asyncio.gather(
                reader(), reader(), reader(), writer()
            )
            return results[:3]

        for bodies in run_service(service_config(), scenario):
            totals = []
            for body in bodies:
                assert body["coverage"][0] == body["total"]
                totals.append(body["total"])
            # Readers may straddle generations, but never go backwards.
            assert totals == sorted(totals)

    def test_delivery_invalidates_result_cache(self):
        dataset = make_random_dataset(19, n=80)
        probe = [None] * dataset.d

        async def scenario(service):
            key = await register(service, dataset)
            before = await service.label(key, [probe])
            await service.deliver(key, [tuple(dataset.rows[0])], threshold=1)
            after = await service.label(key, [probe])
            return before, after

        before, after = run_service(service_config(), scenario)
        assert before["coverage"][0] == dataset.n
        assert after["coverage"][0] == dataset.n + 1
        assert before["fingerprint"] != after["fingerprint"]

    def test_stats_shape(self, example1_dataset):
        async def scenario(service):
            key = await register(service, example1_dataset)
            await service.label(key, ["XXX"])
            return service.stats()

        stats = run_service(service_config(), scenario)
        assert stats["registry"]["entries"] == 1
        assert stats["batcher"]["requests"] == 1
        assert stats["config"]["engine"]["backend"] == "auto"
        assert "admission" in stats and "result_cache" in stats


# ----------------------------------------------------------------------
# threshold sweeps
# ----------------------------------------------------------------------
class TestSweepEndpoint:
    def test_sweep_matches_library(self):
        dataset = make_random_dataset(31, n=90)

        async def scenario(service):
            key = await register(service, dataset)
            return await service.sweep(key, [2, 4, 7], bootstrap=2, seed=5)

        body = run_service(service_config(), scenario)
        reference = sweep_mups(dataset, [2, 4, 7])
        for tau in (2, 4, 7):
            assert body["counts"][str(tau)] == len(reference.mups_at(tau))
            assert body["mups"][str(tau)] == [
                str(p) for p in reference.mups_at(tau).mups
            ]
        report = threshold_sensitivity(
            dataset, [2, 4, 7], bootstrap=2, seed=5
        )
        expected = report.as_dict()
        for field in ("appeared", "disappeared", "transitions", "support"):
            assert body[field] == expected[field]

    def test_sweep_accepts_range_string_and_attribute_names(self):
        dataset = make_random_dataset(33, n=60)

        async def scenario(service):
            key = await register(service, dataset)
            ranged = await service.sweep(key, "2:6:2")
            named = await service.sweep(key, [2], attributes=["A1", "A3"])
            return ranged, named

        ranged, named = run_service(service_config(), scenario)
        assert ranged["thresholds"] == [2, 4, 6]
        assert named["attributes"] == [0, 2]
        reference = sweep_mups(dataset, [2], attributes=[0, 2])
        assert named["mups"]["2"] == [
            str(p) for p in reference.mups_at(2).mups
        ]

    def test_sweep_bad_inputs(self, example1_dataset):
        async def scenario(service):
            key = await register(service, example1_dataset)
            errors = {}
            for name, call in {
                "empty": service.sweep(key, []),
                "zero": service.sweep(key, [0]),
                "range": service.sweep(key, "9:1"),
                "attr": service.sweep(key, [2], attributes=["nope"]),
                "attr_idx": service.sweep(key, [2], attributes=[9]),
                "boot": service.sweep(key, [2], bootstrap=-1),
            }.items():
                try:
                    await call
                except ServeError as error:
                    errors[name] = error.code
            return errors

        errors = run_service(service_config(), scenario)
        assert set(errors) == {
            "empty", "zero", "range", "attr", "attr_idx", "boot"
        }
        assert set(errors.values()) == {"bad_request"}

    def test_delivery_invalidates_sweep_results(self):
        """Regression: sweep results must key on the snapshot's *content
        fingerprint*, not the mutable dataset alias.  The alias IS the
        registration-time fingerprint, so the first delivery's
        ``invalidate(old_fingerprint)`` would scrub an alias-keyed entry
        by coincidence — the bug only shows from the second delivery on,
        when the retiring fingerprint no longer equals the alias.  Hence:
        sweep, deliver, sweep, deliver, sweep."""
        import numpy as np

        dataset = make_random_dataset(37, n=80)
        new_rows = [dataset.rows[0].tolist()] * 5

        async def scenario(service):
            key = await register(service, dataset)
            gen0 = await service.sweep(key, [2, 5])
            cached = await service.sweep(key, [2, 5])
            await service.deliver(key, new_rows, threshold=2)
            gen1 = await service.sweep(key, [2, 5])
            await service.deliver(key, new_rows, threshold=2)
            gen2 = await service.sweep(key, [2, 5])
            return gen0, cached, gen1, gen2, service.cache.info()

        gen0, cached, gen1, gen2, cache_info = run_service(
            service_config(), scenario
        )
        assert cached == gen0  # pre-delivery repeat rides the cache
        assert cache_info["hits"] >= 1
        fingerprints = {g["fingerprint"] for g in (gen0, gen1, gen2)}
        assert len(fingerprints) == 3
        for generation, body in enumerate((gen0, gen1, gen2)):
            appended = Dataset(
                dataset.schema,
                np.vstack(
                    [dataset.rows] + [new_rows] * generation
                ).astype(np.int32),
            )
            reference = sweep_mups(appended, [2, 5])
            for tau in (2, 5):
                assert body["mups"][str(tau)] == [
                    str(p) for p in reference.mups_at(tau).mups
                ], (generation, tau)

    def test_threaded_sweeps_during_deliveries_stay_consistent(self):
        """Concurrent /sweep traffic while deliveries land: every response
        must pair its fingerprint with that generation's MUP counts (a
        stale alias-keyed cache entry would pair an old body with a live
        generation)."""
        import numpy as np

        dataset = make_random_dataset(41, n=70)
        new_row = dataset.rows[0].tolist()
        deliveries = 3
        responses = []
        failures = []
        with BackgroundServer(service_config()) as server:
            _, reg = http_call(
                server, "POST", "/datasets", {"rows": dataset.rows.tolist()}
            )
            key = reg["dataset"]

            def sweeper():
                for _ in range(8):
                    status, body = http_call(
                        server, "POST", "/sweep",
                        {"dataset": key, "tau_range": "2:4"},
                    )
                    if status != 200:
                        failures.append((status, body))
                    else:
                        responses.append(body)

            def deliverer():
                for _ in range(deliveries):
                    status, body = http_call(
                        server, "POST", "/deliver",
                        {"dataset": key, "rows": [new_row]},
                    )
                    if status != 200:
                        failures.append((status, body))

            threads = [threading.Thread(target=sweeper) for _ in range(3)]
            threads.append(threading.Thread(target=deliverer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures
        # Ground truth per generation: base rows plus k delivered copies.
        expected = {}
        for k in range(deliveries + 1):
            generation = Dataset(
                dataset.schema,
                np.vstack([dataset.rows] + [[new_row]] * k).astype(np.int32)
                if k
                else dataset.rows,
            )
            reference = sweep_mups(generation, [2, 3, 4])
            expected[generation.content_fingerprint()] = {
                str(tau): [str(p) for p in reference.mups_at(tau).mups]
                for tau in (2, 3, 4)
            }
        for body in responses:
            assert body["fingerprint"] in expected, body["fingerprint"]
            assert body["mups"] == expected[body["fingerprint"]]


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------
def http_call(server, method, path, body=None):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=30
    )
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(
            method, path, payload, {"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _drop_seconds(body):
    """Strip wall-clock timings so response bodies compare deterministically."""
    if isinstance(body, dict):
        return {
            key: _drop_seconds(value)
            for key, value in body.items()
            if key != "seconds"
        }
    if isinstance(body, list):
        return [_drop_seconds(item) for item in body]
    return body


class TestHierarchyEndpoint:
    SPEC = {"A2": [[0, 0, 1]], "A1": [[0, 0]]}

    def reference(self, dataset, threshold, max_level=None, remedies=True):
        from repro.analysis.hierarchy import (
            HierarchyStack,
            find_mups_hierarchical,
        )
        from repro.data.hierarchy import AttributeHierarchy

        stack = HierarchyStack.of(
            dataset,
            {
                name: [AttributeHierarchy.of(name, level) for level in chain]
                for name, chain in self.SPEC.items()
            },
        )
        return find_mups_hierarchical(
            dataset,
            stack,
            threshold=threshold,
            max_level=max_level,
            remedies=remedies,
        )

    def test_hierarchy_matches_library(self):
        dataset = make_random_dataset(41, n=70)

        async def scenario(service):
            key = await register(service, dataset)
            return await service.hierarchy(key, self.SPEC, 4)

        body = run_service(service_config(), scenario)
        expected = self.reference(dataset, 4).as_dict()
        assert body["depth"] == 1
        assert _drop_seconds(body["levels"]) == _drop_seconds(expected["levels"])
        assert body["remedies"] == expected["remedies"]

    def test_hierarchy_max_level_and_no_remedies(self):
        dataset = make_random_dataset(43, n=60)

        async def scenario(service):
            key = await register(service, dataset)
            return await service.hierarchy(
                key, self.SPEC, 3, max_level=1, remedies=False
            )

        body = run_service(service_config(), scenario)
        expected = self.reference(
            dataset, 3, max_level=1, remedies=False
        ).as_dict()
        assert _drop_seconds(body["levels"]) == _drop_seconds(expected["levels"])
        assert body["remedies"] == []
        assert body["max_level"] == 1

    def test_hierarchy_results_are_cached(self):
        dataset = make_random_dataset(47, n=60)

        async def scenario(service):
            key = await register(service, dataset)
            first = await service.hierarchy(key, self.SPEC, 4)
            second = await service.hierarchy(key, self.SPEC, 4)
            return first, second, service.cache.info()

        first, second, cache_info = run_service(service_config(), scenario)
        assert first == second
        assert cache_info["hits"] >= 1

    def test_hierarchy_bad_inputs(self):
        dataset = make_random_dataset(51, n=40)

        async def scenario(service):
            key = await register(service, dataset)
            errors = {}
            for name, call in {
                "spec_type": service.hierarchy(key, ["A1"], 4),
                "empty_spec": service.hierarchy(key, {}, 4),
                "chain_type": service.hierarchy(key, {"A1": 3}, 4),
                "sparse_codes": service.hierarchy(key, {"A1": [[0, 7]]}, 4),
                "wrong_domain": service.hierarchy(
                    key, {"A1": [[0, 0, 1]]}, 4
                ),
                "threshold": service.hierarchy(key, self.SPEC, 0),
                "max_level": service.hierarchy(
                    key, self.SPEC, 4, max_level="deep"
                ),
            }.items():
                try:
                    await call
                except ServeError as error:
                    errors[name] = error.code
            return errors

        errors = run_service(service_config(), scenario)
        assert set(errors.values()) == {"bad_request"}
        assert len(errors) == 7

    def test_delivery_invalidates_hierarchy_results(self):
        dataset = make_random_dataset(53, n=60)

        async def scenario(service):
            key = await register(service, dataset)
            before = await service.hierarchy(key, self.SPEC, 4)
            await service.deliver(
                key, [dataset.rows[0].tolist()] * 3, threshold=2
            )
            after = await service.hierarchy(key, self.SPEC, 4)
            return before, after

        before, after = run_service(service_config(), scenario)
        assert before["fingerprint"] != after["fingerprint"]


class TestHttpEndToEnd:
    def test_full_request_cycle(self, example1_dataset):
        rows = example1_dataset.rows.tolist()
        with BackgroundServer(service_config()) as server:
            status, health = http_call(server, "GET", "/healthz")
            assert (status, health) == (200, {"status": "ok"})

            status, reg = http_call(
                server, "POST", "/datasets", {"rows": rows}
            )
            assert status == 200 and reg["created"]
            key = reg["dataset"]

            status, label = http_call(
                server, "POST", "/label",
                {"dataset": key, "patterns": ["1XX"], "threshold": 1},
            )
            assert status == 200
            assert label["coverage"] == [0] and label["covered"] == [False]

            status, ident = http_call(
                server, "POST", "/identify", {"dataset": key, "threshold": 1}
            )
            assert status == 200 and ident["mup_strings"] == ["1XX"]

            status, enhance = http_call(
                server, "POST", "/enhance",
                {"dataset": key, "threshold": 1, "level": 1},
            )
            assert status == 200 and enhance["targets"] == 1

            status, deliver = http_call(
                server, "POST", "/deliver",
                {"dataset": key, "rows": [[1, 1, 1]], "threshold": 1},
            )
            assert status == 200
            assert deliver["resolved"] == ["1XX"]
            assert deliver["rows_total"] == len(rows) + 1

            status, stats = http_call(server, "GET", "/stats")
            assert status == 200
            assert stats["registry"]["entries"] == 1

    def test_hierarchy_route(self):
        dataset = make_random_dataset(57, n=60)
        with BackgroundServer(service_config()) as server:
            _, reg = http_call(
                server, "POST", "/datasets",
                {"rows": dataset.rows.tolist()},
            )
            key = reg["dataset"]

            status, body = http_call(
                server, "POST", "/hierarchy",
                {
                    "dataset": key,
                    "hierarchies": {"A2": [[0, 0, 1]]},
                    "threshold": 4,
                },
            )
            assert status == 200
            assert body["depth"] == 1
            assert [entry["level"] for entry in body["levels"]] == [0, 1]

            status, bad = http_call(
                server, "POST", "/hierarchy",
                {"dataset": key, "threshold": 4},
            )
            assert status == 400 and "hierarchies" in bad["message"]

    def test_error_statuses(self, example1_dataset):
        with BackgroundServer(service_config()) as server:
            status, body = http_call(
                server, "POST", "/label",
                {"dataset": "nope", "patterns": ["XXX"]},
            )
            assert status == 404 and body["code"] == "unknown_dataset"

            status, reg = http_call(
                server, "POST", "/datasets",
                {"rows": example1_dataset.rows.tolist()},
            )
            key = reg["dataset"]

            status, body = http_call(
                server, "POST", "/label",
                {"dataset": key, "patterns": ["1X"]},  # wrong arity
            )
            assert status == 400 and body["code"] == "bad_pattern"

            status, body = http_call(
                server, "POST", "/identify", {"dataset": key}
            )
            assert status == 400 and "threshold" in body["message"]

            status, body = http_call(server, "GET", "/nowhere")
            assert status == 404 and body["code"] == "not_found"

            status, body = http_call(server, "GET", "/label")
            assert status == 405 and body["code"] == "method_not_allowed"

    def test_concurrent_clients_with_deliveries(self):
        dataset = make_random_dataset(23, n=100)
        probe = [None] * dataset.d
        failures = []
        with BackgroundServer(service_config()) as server:
            _, reg = http_call(
                server, "POST", "/datasets",
                {"rows": dataset.rows.tolist()},
            )
            key = reg["dataset"]

            def client():
                for _ in range(10):
                    status, body = http_call(
                        server, "POST", "/label",
                        {"dataset": key, "patterns": [probe]},
                    )
                    if status != 200 or body["coverage"][0] != body["total"]:
                        failures.append((status, body))

            def deliverer():
                for _ in range(3):
                    status, body = http_call(
                        server, "POST", "/deliver",
                        {
                            "dataset": key,
                            "rows": [dataset.rows[0].tolist()],
                            "threshold": 1,
                        },
                    )
                    if status != 200:
                        failures.append((status, body))

            threads = [threading.Thread(target=client) for _ in range(3)]
            threads.append(threading.Thread(target=deliverer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures
