"""Unit tests for the amortized threshold sweep and sensitivity reports."""

import json
from pathlib import Path

import pytest

from repro.analysis.sweep import (
    SweepPoint,
    parse_tau_range,
    sweep_mups,
    threshold_sensitivity,
)
from repro.analysis.thresholds import threshold_sweep
from repro.core.coverage import CoverageOracle
from repro.core.mups import find_mups
from repro.core.pattern import Pattern, X
from repro.data.airbnb import load_airbnb
from repro.data.compas import load_compas
from repro.data.dataset import Dataset, Schema
from repro.data.sampling import bootstrap_resample
from repro.data.scenarios import planted_mup_dataset, scenario_dataset
from repro.exceptions import ReproError

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def dataset():
    return scenario_dataset("zipf", 80, (3, 4, 2), seed=7)


# ----------------------------------------------------------------------
# tau-range parsing
# ----------------------------------------------------------------------
def test_parse_tau_range_forms():
    assert parse_tau_range("5") == (5,)
    assert parse_tau_range("2:6") == (2, 3, 4, 5, 6)
    assert parse_tau_range("2:10:3") == (2, 5, 8)
    assert parse_tau_range("9,1,5,5") == (1, 5, 9)
    assert parse_tau_range(" 3:4 ") == (3, 4)


@pytest.mark.parametrize(
    "text", ["", "a:b", "2:10:0", "2:10:-1", "5:2", "1:2:3:4", "x", "2,a"]
)
def test_parse_tau_range_rejects(text):
    with pytest.raises(ReproError):
        parse_tau_range(text)


# ----------------------------------------------------------------------
# sweep_mups basics
# ----------------------------------------------------------------------
def test_sweep_rejects_bad_inputs(dataset):
    with pytest.raises(ReproError):
        sweep_mups(dataset, [])
    with pytest.raises(ReproError):
        sweep_mups(dataset, [0])
    with pytest.raises(ReproError):
        sweep_mups(dataset, [2], attributes=[])
    with pytest.raises(ReproError):
        sweep_mups(dataset, [2], attributes=[3])
    with pytest.raises(ReproError):
        sweep_mups(dataset, [2], max_level=-1)


def test_mups_at_outside_range_raises(dataset):
    sweep = sweep_mups(dataset, [3, 6])
    with pytest.raises(ReproError):
        sweep.mups_at(2)
    with pytest.raises(ReproError):
        sweep.mups_at(7)


def test_sweep_covers_interior_thresholds(dataset):
    """Any integer τ between the extremes is answerable, queried or not."""
    sweep = sweep_mups(dataset, [2, 8])
    for tau in range(2, 9):
        assert sweep.mups_at(tau).mups == find_mups(dataset, threshold=tau).mups


def test_empty_dataset_root_is_the_only_mup():
    empty = Dataset(
        Schema.of(["a", "b"], [2, 3]),
        __import__("numpy").zeros((0, 2), dtype=__import__("numpy").int32),
    )
    sweep = sweep_mups(empty, [1, 5])
    for tau in (1, 3, 5):
        assert sweep.mups_at(tau).mups == (Pattern.root(2),)


def test_sweep_amortizes_coverage_work(dataset):
    """One sweep counts each pattern once; independent runs re-count per τ."""
    thresholds = [2, 3, 5, 8]
    memo = {}
    sweep = sweep_mups(dataset, thresholds, memo=memo)
    # Each distinct pattern is evaluated exactly once.
    assert sweep.stats.coverage_evaluations == len(memo)
    independent = 0
    for tau in thresholds:
        oracle = CoverageOracle(dataset)
        find_mups(dataset, threshold=tau, oracle=oracle)
        independent += oracle.evaluations
    assert sweep.stats.coverage_evaluations < independent


def test_memo_reuse_across_sweeps(dataset):
    memo = {}
    first = sweep_mups(dataset, [2, 6], memo=memo)
    assert first.stats.coverage_evaluations == len(memo)
    again = sweep_mups(dataset, [2, 6], memo=memo)
    assert again.stats.coverage_evaluations == 0
    assert again.mups_at(4).mups == first.mups_at(4).mups
    # A projected sweep shares the same table (patterns embed with X).
    projected = sweep_mups(dataset, [2, 6], attributes=[0, 1], memo=memo)
    assert projected.stats.coverage_evaluations == 0


def test_projection_matches_projected_dataset(dataset):
    attrs = (0, 2)
    sweep = sweep_mups(dataset, [1, 2, 4], attributes=attrs)
    assert sweep.attributes == attrs
    projected = Dataset(
        dataset.schema.project(list(attrs)), dataset.rows[:, attrs].copy()
    )
    for tau in (1, 2, 3, 4):
        reference = find_mups(projected, threshold=tau)
        embedded = []
        for pattern in reference.mups:
            values = [X] * dataset.d
            for j, a in enumerate(attrs):
                values[a] = pattern[j]
            embedded.append(Pattern(values))
        assert sweep.mups_at(tau).mups == tuple(sorted(embedded))


def test_max_level_matches_capped_run(dataset):
    sweep = sweep_mups(dataset, [2, 5], max_level=1)
    for tau in (2, 4, 5):
        capped = find_mups(dataset, threshold=tau, max_level=1)
        assert sweep.mups_at(tau).mups == capped.mups
        assert sweep.mups_at(tau).max_level == 1


def test_sweep_point_interval():
    point = SweepPoint(Pattern.of(1, X), coverage=3, min_parent_coverage=7)
    assert point.appears_at == 4
    assert point.disappears_above == 7
    assert not point.is_mup_at(3)
    assert point.is_mup_at(4)
    assert point.is_mup_at(7)
    assert not point.is_mup_at(8)
    root = SweepPoint(Pattern.root(2), coverage=10, min_parent_coverage=None)
    assert root.is_mup_at(11) and not root.is_mup_at(10)
    assert root.disappears_above is None


def test_planted_patterns_guaranteed(dataset):
    planted = [Pattern.of(0, X, 1), Pattern.of(X, 2, X)]
    constructed = planted_mup_dataset((2, 4, 3), planted, threshold=3, seed=9)
    sweep = sweep_mups(constructed, [3])
    mups = set(sweep.mups_at(3).mups)
    assert set(planted) <= mups


# ----------------------------------------------------------------------
# threshold_sweep rides the amortized engine
# ----------------------------------------------------------------------
def test_threshold_sweep_matches_find_mups(dataset):
    rows = threshold_sweep(dataset, [6, 2, 4])
    assert [r.threshold for r in rows] == [6, 2, 4]
    for row in rows:
        reference = find_mups(dataset, threshold=row.threshold)
        assert row.mup_count == len(reference)
        assert row.max_covered_level == reference.max_covered_level(dataset.d)


def test_threshold_sweep_rejects_unknown_algorithm(dataset):
    with pytest.raises(ReproError):
        threshold_sweep(dataset, [2], algorithm="nope")


# ----------------------------------------------------------------------
# bootstrap + sensitivity
# ----------------------------------------------------------------------
def test_bootstrap_resample_is_deterministic(dataset):
    a = bootstrap_resample(dataset, seed=[3, 1])
    b = bootstrap_resample(dataset, seed=[3, 1])
    c = bootstrap_resample(dataset, seed=[3, 2])
    assert (a.rows == b.rows).all()
    assert a.n == dataset.n
    assert a.content_fingerprint() == b.content_fingerprint()
    assert a.content_fingerprint() != c.content_fingerprint()


def test_bootstrap_resample_empty():
    import numpy as np

    empty = Dataset(Schema.of(["a"], [2]), np.zeros((0, 1), dtype=np.int32))
    assert bootstrap_resample(empty, seed=1).n == 0


def test_sensitivity_report_structure(dataset):
    report = threshold_sensitivity(dataset, [2, 4, 8], bootstrap=4, seed=3)
    assert report.thresholds == (2, 4, 8)
    assert set(report.counts) == {2, 4, 8}
    # Diffs reconstruct the set walk: |mups(t2)| = |mups(t1)| + in - out.
    sweep = sweep_mups(dataset, [2, 4, 8])
    for previous, current in [(2, 4), (4, 8)]:
        delta = len(report.appeared[current]) - len(report.disappeared[current])
        assert report.counts[current] == report.counts[previous] + delta
        assert set(report.appeared[current]) == (
            sweep.mups_at(current).as_set() - sweep.mups_at(previous).as_set()
        )
    # Support tables cover exactly the base MUP sets, values in [0, 1].
    assert report.bootstrap_replicates == 4
    for tau in report.thresholds:
        assert set(report.support[tau]) == sweep.mups_at(tau).as_set()
        assert all(0.0 <= s <= 1.0 for s in report.support[tau].values())
        assert report.novel_rate[tau] >= 0.0
    stable = report.stable_mups(4, min_support=0.0)
    assert set(stable) == sweep.mups_at(4).as_set()


def test_sensitivity_deterministic_in_seed(dataset):
    first = threshold_sensitivity(dataset, [2, 5], bootstrap=3, seed=11)
    second = threshold_sensitivity(dataset, [2, 5], bootstrap=3, seed=11)
    assert first.as_dict() == second.as_dict()


def test_sensitivity_rejects_negative_bootstrap(dataset):
    with pytest.raises(ReproError):
        threshold_sensitivity(dataset, [2], bootstrap=-1)


def test_stable_mups_requires_bootstrap(dataset):
    report = threshold_sensitivity(dataset, [2])
    with pytest.raises(ReproError):
        report.stable_mups(2)


# ----------------------------------------------------------------------
# golden fixtures: COMPAS / Airbnb sensitivity reports
# ----------------------------------------------------------------------
def test_golden_sensitivity_compas():
    expected = json.loads((FIXTURES / "sensitivity_compas.json").read_text())
    report = threshold_sensitivity(
        load_compas(n=400), [5, 10, 20, 40], bootstrap=3, seed=7
    )
    assert report.as_dict() == expected


def test_golden_sensitivity_airbnb():
    expected = json.loads((FIXTURES / "sensitivity_airbnb.json").read_text())
    report = threshold_sensitivity(
        load_airbnb(n=400, d=6), [2, 5, 10], bootstrap=3, seed=7
    )
    assert report.as_dict() == expected
