"""Unit tests for the analysis tooling (nutritional label, reports, τ)."""

import pytest

from repro.analysis.nutrition import coverage_label
from repro.analysis.report import enhancement_report, mup_report
from repro.analysis.thresholds import suggest_threshold, threshold_sweep
from repro.core.enhancement.greedy import greedy_cover
from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.mups import find_mups
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.data.compas import load_compas
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import ReproError


class TestCoverageLabel:
    def test_example1_label(self, example1_dataset):
        label = coverage_label(example1_dataset, threshold=1)
        assert label.n == 5
        assert label.d == 3
        assert label.mup_count == 1
        assert label.level_histogram == {1: 1}
        assert label.max_covered_level == 0

    def test_render_contains_key_lines(self, example1_dataset):
        text = coverage_label(example1_dataset, threshold=1).render()
        assert "Coverage" in text
        assert "threshold" in text
        assert "A1=1" in text  # the headline gap rendered with names

    def test_headline_limit(self):
        dataset = random_categorical_dataset(40, (2, 2, 2), seed=1, skew=1.2)
        label = coverage_label(dataset, threshold=6, headline_limit=2)
        assert len(label.headline_gaps) <= 2

    def test_reuses_existing_result(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        label = coverage_label(example1_dataset, threshold=1, result=result)
        assert label.mup_count == len(result)

    def test_compas_label_mentions_minority_gap(self):
        dataset = load_compas()
        label = coverage_label(dataset, threshold=10)
        assert label.mup_count > 0
        rendered = label.render()
        assert "uncovered regions" in rendered


class TestReports:
    def test_mup_report_contents(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        text = mup_report(example1_dataset, result)
        assert "1XX" in text
        assert "A1=1" in text
        assert "coverage" in text

    def test_mup_report_limit(self):
        dataset = random_categorical_dataset(40, (2, 2, 2), seed=2, skew=1.2)
        result = find_mups(dataset, threshold=8)
        limited = mup_report(dataset, result, limit=1)
        assert limited.count("\n") < mup_report(dataset, result).count("\n") or len(result) <= 1

    def test_enhancement_report(self, example2_space, example2_level2_targets):
        plan = greedy_cover(example2_level2_targets, example2_space)
        from repro.data.dataset import Dataset, Schema
        import numpy as np

        schema = Schema.of([f"A{i+1}" for i in range(5)], [2, 3, 3, 2, 2])
        dataset = Dataset(schema, np.zeros((1, 5), dtype=np.int32))
        text = enhancement_report(dataset, plan)
        assert "Acquisition plan" in text
        assert str(len(plan.combinations)) in text

    def test_enhancement_report_warns_unhittable(self, example2_space):
        oracle = ValidationOracle([ValidationRule({0: [1]})])
        plan = greedy_cover([Pattern.from_string("1XXXX")], example2_space, oracle)
        from repro.data.dataset import Dataset, Schema
        import numpy as np

        schema = Schema.of([f"A{i+1}" for i in range(5)], [2, 3, 3, 2, 2])
        dataset = Dataset(schema, np.zeros((1, 5), dtype=np.int32))
        assert "WARNING" in enhancement_report(dataset, plan)


class TestThresholds:
    def test_sweep_rows(self):
        dataset = random_categorical_dataset(60, (2, 2, 2), seed=3, skew=1.0)
        rows = threshold_sweep(dataset, [1, 3, 6])
        assert [r.threshold for r in rows] == [1, 3, 6]
        # Raising τ can only shrink (or keep) the covered prefix of levels.
        levels = [r.max_covered_level for r in rows]
        assert levels == sorted(levels, reverse=True)

    def test_sweep_requires_thresholds(self):
        dataset = random_categorical_dataset(10, (2, 2), seed=0)
        with pytest.raises(ReproError):
            threshold_sweep(dataset, [])

    def test_suggest_threshold_finds_knee(self):
        # Figure 11-like curve: fast rise then flat after 40.
        counts = [0, 20, 40, 60, 80]
        scores = [0.45, 0.60, 0.75, 0.77, 0.78]
        assert suggest_threshold(counts, scores) == 60

    def test_suggest_threshold_flat_curve(self):
        assert suggest_threshold([0, 10, 20], [0.5, 0.5, 0.5]) == 10

    def test_suggest_threshold_validates(self):
        with pytest.raises(ReproError):
            suggest_threshold([0, 10], [0.5, 0.6])
        with pytest.raises(ReproError):
            suggest_threshold([0, 10, 5], [0.5, 0.6, 0.7])
