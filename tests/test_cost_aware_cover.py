"""Tests for the cost-aware greedy variant (acquisition costs, §IV)."""

import pytest

from repro.core.enhancement.hitting_set import naive_greedy_cover
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import EnhancementError


class TestCostAwareGreedy:
    SPACE = PatternSpace([2, 2, 2])

    def test_cost_steers_choice(self):
        # Two targets, both hittable by a single combination through A1=1,
        # but combinations with A3=1 are expensive: greedy must pick the
        # cheap equivalent.
        targets = [Pattern.from_string("1XX")]

        def cost(combo):
            return 100.0 if combo[2] == 1 else 1.0

        plan = naive_greedy_cover(targets, self.SPACE, cost_fn=cost)
        assert len(plan.combinations) == 1
        assert plan.combinations[0][2] == 0

    def test_cost_vs_count_tradeoff(self):
        # One combination hits both targets but costs 10; two separate
        # combinations cost 1 each.  Cost-effectiveness (2/10 vs 1/1) should
        # prefer the two cheap picks.
        targets = [Pattern.from_string("10X"), Pattern.from_string("11X")]

        def cost(combo):
            return 1.0  # flat: behaves like plain greedy

        flat = naive_greedy_cover(targets, self.SPACE, cost_fn=cost)
        assert len(flat.combinations) == 2  # the targets conflict on A2

    def test_all_targets_still_hit(self):
        targets = [
            Pattern.from_string("1XX"),
            Pattern.from_string("X1X"),
            Pattern.from_string("XX1"),
        ]
        plan = naive_greedy_cover(targets, self.SPACE, cost_fn=lambda c: 1 + sum(c))
        remaining = set(targets)
        for combo in plan.combinations:
            remaining -= {t for t in remaining if t.matches(combo)}
        assert not remaining

    def test_non_positive_cost_rejected(self):
        with pytest.raises(EnhancementError):
            naive_greedy_cover(
                [Pattern.from_string("1XX")], self.SPACE, cost_fn=lambda c: 0.0
            )

    def test_without_cost_fn_unchanged(self):
        targets = [Pattern.from_string("1XX")]
        plain = naive_greedy_cover(targets, self.SPACE)
        assert len(plain.combinations) == 1
