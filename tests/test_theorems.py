"""The paper's two hardness constructions, reproduced as executable tests.

* Theorem 1: the diagonal dataset has ``n + C(n, n/2)`` MUPs at
  ``τ = n/2 + 1`` — exponential in ``n``.
* Theorem 2: the reduction from vertex cover to coverage enhancement; the
  MUPs are exactly the per-edge single-1 patterns and a greedy enhancement
  yields a valid vertex cover.
"""

import math

import pytest

from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.greedy import greedy_cover
from repro.core.mups import deepdiver, naive_mups, pattern_breaker, pattern_combiner
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.synthetic import (
    VERTEX_COVER_LEVEL,
    VERTEX_COVER_THRESHOLD,
    diagonal_dataset,
    diagonal_threshold,
    vertex_cover_dataset,
)


class TestTheorem1:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_mup_count_is_exponential(self, n):
        dataset = diagonal_dataset(n)
        tau = diagonal_threshold(n)
        expected = n + math.comb(n, n // 2)
        result = pattern_combiner(dataset, tau)
        assert len(result) == expected

    @pytest.mark.parametrize("n", [4, 6])
    def test_mup_structure(self, n):
        dataset = diagonal_dataset(n)
        tau = diagonal_threshold(n)
        result = deepdiver(dataset, tau)
        singles = [p for p in result if p.level == 1]
        halves = [p for p in result if p.level == n // 2]
        # n single-deterministic-1 patterns...
        assert len(singles) == n
        assert all(p.values[p.deterministic_indices()[0]] == 1 for p in singles)
        # ...plus C(n, n/2) all-zero patterns at level n/2.
        assert len(halves) == math.comb(n, n // 2)
        for pattern in halves:
            assert all(pattern[i] == 0 for i in pattern.deterministic_indices())

    @pytest.mark.parametrize("n", [4, 6])
    def test_algorithms_agree_on_construction(self, n):
        dataset = diagonal_dataset(n)
        tau = diagonal_threshold(n)
        reference = naive_mups(dataset, tau).as_set()
        assert pattern_breaker(dataset, tau).as_set() == reference
        assert pattern_combiner(dataset, tau).as_set() == reference
        assert deepdiver(dataset, tau).as_set() == reference


# Figure 1a's example graph: 5 vertices; edges chosen so vertex 0 and 3
# form a cover (a path-plus-star shape similar to the figure).
EXAMPLE_EDGES = [(0, 1), (0, 2), (0, 4), (3, 1), (3, 2)]


class TestTheorem2:
    def test_dataset_shape(self):
        dataset = vertex_cover_dataset(EXAMPLE_EDGES, num_vertices=5)
        assert dataset.n == 5 + 3
        assert dataset.d == len(EXAMPLE_EDGES)
        # The three padding rows are all zero.
        assert (dataset.rows[-3:] == 0).all()

    def test_mups_are_per_edge_patterns(self):
        dataset = vertex_cover_dataset(EXAMPLE_EDGES, num_vertices=5)
        result = deepdiver(dataset, VERTEX_COVER_THRESHOLD)
        expected = set()
        for j in range(len(EXAMPLE_EDGES)):
            values = [X] * len(EXAMPLE_EDGES)
            values[j] = 1
            expected.add(Pattern(values))
        assert result.as_set() == expected

    def test_greedy_enhancement_is_a_vertex_cover(self):
        dataset = vertex_cover_dataset(EXAMPLE_EDGES, num_vertices=5)
        space = PatternSpace.for_dataset(dataset)
        result = deepdiver(dataset, VERTEX_COVER_THRESHOLD)
        targets = uncovered_at_level(result.mups, space, VERTEX_COVER_LEVEL)
        plan = greedy_cover(targets, space)
        assert not plan.unhittable
        # Each collected combination must hit every edge pattern at least
        # once collectively: interpret each combination as a vertex subset
        # (1s mark covered edges); together they must cover all edges.
        covered_edges = set()
        for combo in plan.combinations:
            for j, value in enumerate(combo):
                if value == 1:
                    covered_edges.add(j)
        assert covered_edges == set(range(len(EXAMPLE_EDGES)))
        # The graph has a vertex cover of size 2 ({0, 3}); greedy's
        # logarithmic approximation should not need more than 3 picks here.
        assert len(plan.combinations) <= 3

    def test_rejects_bad_graphs(self):
        import pytest as _pytest

        from repro.exceptions import DataError

        with _pytest.raises(DataError):
            vertex_cover_dataset([], num_vertices=3)
        with _pytest.raises(DataError):
            vertex_cover_dataset([(0, 0)], num_vertices=3)
        with _pytest.raises(DataError):
            vertex_cover_dataset([(0, 9)], num_vertices=3)
