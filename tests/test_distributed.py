"""Tests for the socket shard-worker protocol and incremental spill reuse.

Covers the distributed layer end to end: the length-prefixed frame codec,
sticky shard placement, bit-identical socket fan-out, deterministic
fault injection (a worker killed mid-session must be resurrected without
changing any answer), invalidation routing, the hardened ``close()``
contract, ``delta_write`` reuse accounting, and backward-compatible reads
of the checked-in v1 manifest fixture.
"""

import json
import os
import shutil
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.engine import (
    DenseBoolEngine,
    DistributedPool,
    EngineConfig,
    MmapShardStore,
    ShardedEngine,
    ShardStoreWriter,
    WorkerDied,
    load_spill_dataset,
)
from repro.core.engine.distributed import (
    recv_message,
    send_message,
    serve_on_socket,
)
from repro.core.engine.sharded import _fork_available
from repro.core.mups.base import find_mups
from repro.core.pattern import Pattern, X
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EngineError, ReproError

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="spawn-local workers require os.fork"
)

V1_FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "shard_store_v1"
)


def v1_fixture_dataset():
    """The dataset tests/fixtures/shard_store_v1 was generated from."""
    return random_categorical_dataset(40, (3, 2, 2), seed=13, skew=1.2)


@pytest.fixture
def dataset():
    return random_categorical_dataset(90, (3, 3, 2), seed=21, skew=1.3)


@pytest.fixture
def patterns(dataset):
    result = [Pattern.root(dataset.d)]
    for attribute, cardinality in enumerate(dataset.cardinalities):
        for value in range(cardinality):
            result.append(Pattern.root(dataset.d).with_value(attribute, value))
    result.append(Pattern.of(1, X, 0))
    result.append(Pattern.of(2, 2, 1))
    result.append(Pattern.of(X, 0, 1))
    return result


def socket_engine(dataset, root, **overrides):
    options = dict(shards=4, workers=2, workers_mode="socket", spill_dir=root)
    options.update(overrides)
    return ShardedEngine(dataset, **options)


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def roundtrip(self, message):
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            return recv_message(right)
        finally:
            left.close()
            right.close()

    def test_plain_json_roundtrips(self):
        message = {"cmd": "ping", "v": 1, "nested": {"a": [1, 2, None]}}
        assert self.roundtrip(message) == message

    def test_ndarrays_ride_the_binary_tail(self):
        words = np.arange(12, dtype=np.uint64).reshape(3, 4)
        counts = np.array([5, 7], dtype=np.int64)
        decoded = self.roundtrip(
            {"cmd": "run_batch", "ops": [{"payload": [words, counts, 3]}]}
        )
        out_words, out_counts, scalar = decoded["ops"][0]["payload"]
        assert scalar == 3
        assert out_words.dtype == np.uint64
        assert np.array_equal(out_words, words)
        assert np.array_equal(out_counts, counts)
        # Decoded arrays are writable copies, not recv-buffer views.
        out_words[0, 0] = 99

    def test_empty_and_zero_length_arrays(self):
        empty = np.zeros((0,), dtype=np.uint64)
        decoded = self.roundtrip({"payload": empty})
        assert decoded["payload"].shape == (0,)
        assert decoded["payload"].dtype == np.uint64

    def test_truncated_stream_raises_worker_died(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10")  # half a length prefix + junk
            left.close()
            with pytest.raises(WorkerDied):
                recv_message(right)
        finally:
            right.close()


# ----------------------------------------------------------------------
# worker state machine (driven in-process)
# ----------------------------------------------------------------------
class TestWorkerState:
    def state(self):
        from repro.core.engine.distributed import _WorkerState

        return _WorkerState()

    def test_ping_reports_pid(self):
        response, keep = self.state().handle({"cmd": "ping", "v": 1})
        assert keep and response == {"ok": True, "pid": os.getpid()}

    def test_protocol_version_mismatch_is_refused(self):
        response, keep = self.state().handle({"cmd": "ping", "v": 999})
        assert keep and not response["ok"]
        assert "version" in response["error"]

    def test_unknown_command_is_refused(self):
        response, keep = self.state().handle({"cmd": "frobnicate", "v": 1})
        assert keep and not response["ok"]

    def test_shutdown_stops_the_loop(self):
        response, keep = self.state().handle({"cmd": "shutdown", "v": 1})
        assert response["ok"] and not keep

    def test_attach_run_invalidate_stats_lifecycle(self, dataset, tmp_path):
        build = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        spill = build.spill_path
        state = self.state()
        try:
            response, _ = state.handle(
                {"cmd": "attach", "path": spill, "v": 1}
            )
            assert response["ok"]
            full = build.full_mask()
            windows = [
                full[info.word_start : info.word_stop]
                for info in build._shards
            ]
            response, _ = state.handle(
                {
                    "cmd": "run_batch",
                    "path": spill,
                    "v": 1,
                    "ops": [
                        {"shard": s, "op": "count", "payload": windows[s]}
                        for s in range(2)
                    ],
                }
            )
            assert response["ok"]
            assert sum(response["results"]) == dataset.n
            response, _ = state.handle(
                {"cmd": "invalidate", "path": spill, "v": 1}
            )
            assert response["ok"] and response["dropped"]
            response, _ = state.handle({"cmd": "stats", "v": 1})
            assert response["ops_served"] == 2
            assert response["batches_served"] == 1
            assert response["invalidations"] == 1
            assert response["attached"] == []
        finally:
            build.close()

    def test_parse_endpoint_rejects_malformed_addresses(self):
        from repro.core.engine.distributed import _parse_endpoint

        assert _parse_endpoint("10.0.0.1:7000") == ("10.0.0.1", 7000)
        with pytest.raises(EngineError, match="host:port"):
            _parse_endpoint("no-port")
        with pytest.raises(EngineError, match="port"):
            _parse_endpoint("host:notanumber")


# ----------------------------------------------------------------------
# pool mechanics
# ----------------------------------------------------------------------
@needs_fork
class TestDistributedPool:
    def test_sticky_placement_is_shard_mod_workers(self):
        with DistributedPool.spawn_local(3) as pool:
            assert pool.worker_count == 3
            assert pool.placement(7) == [0, 1, 2, 0, 1, 2, 0]
            assert [pool.slot_for(s) for s in range(7)] == pool.placement(7)

    def test_run_shard_ops_batches_per_worker(self, dataset, tmp_path):
        engine = socket_engine(dataset, str(tmp_path))
        try:
            engine.coverage(Pattern.root(dataset.d))
            engine.coverage(Pattern.of(0, X, X))
            stats = engine._dist_pool.worker_stats()
            # 4 shards over 2 workers: the placement is symmetric, so both
            # workers see identical traffic, and each query family ships as
            # ONE batch frame per worker (ops per batch = owned shards).
            assert stats[0]["batches_served"] == stats[1]["batches_served"]
            assert stats[0]["ops_served"] == stats[1]["ops_served"]
            assert stats[0]["batches_served"] >= 1
            assert (
                stats[0]["ops_served"] == 2 * stats[0]["batches_served"]
            )  # each batch covers the worker's two shards
            assert all(engine.spill_path in s["attached"] for s in stats)
        finally:
            engine.close()

    def test_worker_death_is_recovered_transparently(self, dataset, tmp_path):
        """Deterministic fault injection: SIGKILL one worker mid-session;
        the next query must resurrect it and answer identically."""
        engine = socket_engine(dataset, str(tmp_path))
        dense = DenseBoolEngine(dataset)
        root = Pattern.root(dataset.d)
        try:
            assert engine.coverage(root) == dense.coverage(root)
            pool = engine._dist_pool
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10
            while time.time() < deadline:
                try:
                    os.kill(victim, 0)
                except OSError:
                    break
                time.sleep(0.05)
            probes = [root.with_value(0, v) for v in range(3)]
            assert list(engine.coverage_many(probes)) == list(
                dense.coverage_many(probes)
            )
            assert pool.retry_count >= 1
            assert pool.worker_pids()[0] != victim
            # The resurrected worker re-attached the spill path on its own.
            assert engine.spill_path in pool.worker_stats()[0]["attached"]
        finally:
            engine.close()

    def test_invalidate_messages_only_dirty_owners(self, dataset, tmp_path):
        engine = socket_engine(dataset, str(tmp_path))
        try:
            engine.coverage(Pattern.root(dataset.d))
            pool = engine._dist_pool
            path = engine.spill_path
            # Shard 1 lives on slot 1; only that worker gets a frame, but
            # every slot forgets the path for reattach bookkeeping.
            assert pool.invalidate(path, [1]) == 1
            stats = pool.worker_stats()
            assert [s["invalidations"] for s in stats] == [0, 1]
            # The dirty owner dropped its store; the clean worker keeps its
            # (hard-link-backed) mmaps serving.
            assert path in stats[0]["attached"]
            assert path not in stats[1]["attached"]
            # Pool-side bookkeeping forgot the path on every slot.
            assert all(path not in w.attached for w in pool._workers)
            # Re-attach works after an invalidation round.
            pool.attach(path, 4)
            assert all(
                path in s["attached"] for s in pool.worker_stats()
            )
        finally:
            engine.close()

    def test_worker_side_errors_do_not_trigger_retry(self, tmp_path):
        with DistributedPool.spawn_local(2) as pool:
            with pytest.raises(EngineError):
                pool.attach(str(tmp_path / "missing"), 1)
            assert pool.retry_count == 0

    def test_connect_to_externally_served_worker(self, dataset, tmp_path):
        """The remote topology: a worker served outside the pool's control,
        addressed by host:port exactly as ``repro worker`` would be."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        thread = threading.Thread(
            target=serve_on_socket, args=(listener,), daemon=True
        )
        thread.start()
        dense = DenseBoolEngine(dataset)
        build = ShardedEngine(dataset, shards=2, spill_dir=str(tmp_path))
        spill = build.spill_path
        try:
            full = build.full_mask()
            windows = [
                full[info.word_start : info.word_stop]
                for info in build._shards
            ]
            with DistributedPool.connect([f"127.0.0.1:{port}"]) as pool:
                assert pool.worker_count == 1
                pool.attach(spill, 2)
                results = pool.run_shard_ops(spill, "count", windows)
                assert sum(results) == dense.coverage(Pattern.root(dataset.d))
            # Closing a connected pool leaves the standing worker serving
            # (it is externally managed); a new coordinator can take over.
            follower = socket.create_connection(("127.0.0.1", port))
            try:
                send_message(follower, {"cmd": "ping", "v": 1})
                assert recv_message(follower)["ok"]
                send_message(follower, {"cmd": "shutdown", "v": 1})
                recv_message(follower)
            finally:
                follower.close()
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            build.close()


# ----------------------------------------------------------------------
# socket engine equivalence
# ----------------------------------------------------------------------
@needs_fork
class TestSocketEngine:
    def test_socket_mode_is_bit_identical_to_dense(
        self, dataset, patterns, tmp_path
    ):
        dense = DenseBoolEngine(dataset)
        engine = socket_engine(dataset, str(tmp_path))
        try:
            assert engine.effective_workers_mode == "socket"
            for pattern in patterns:
                assert engine.coverage(pattern) == dense.coverage(pattern)
            assert list(engine.coverage_many(patterns)) == list(
                dense.coverage_many(patterns)
            )
            family = engine.restrict_children(engine.full_mask(), 1)
            reference = dense.restrict_children(dense.full_mask(), 1)
            for child, expected in zip(family, reference):
                assert np.array_equal(
                    engine.mask_to_bool(child), dense.mask_to_bool(expected)
                )
        finally:
            engine.close()

    def test_socket_mup_sets_match_dense(self, dataset, tmp_path):
        reference = find_mups(dataset, threshold=3, engine="dense")
        engine = socket_engine(dataset, str(tmp_path))
        try:
            result = find_mups(dataset, threshold=3, engine=engine)
            assert result.as_set() == reference.as_set()
        finally:
            engine.close()

    def test_close_reaps_workers_and_spill(self, dataset, tmp_path):
        engine = socket_engine(dataset, str(tmp_path))
        engine.coverage(Pattern.root(dataset.d))
        pids = engine._dist_pool.worker_pids()
        path = engine.spill_path
        engine.close()
        assert not os.path.exists(path)
        deadline = time.time() + 10
        while time.time() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                    alive.append(pid)
                except OSError:
                    pass
            if not alive:
                break
            time.sleep(0.05)
        assert not alive

    def test_close_releases_everything_after_failed_fan_out(
        self, dataset, tmp_path, monkeypatch
    ):
        """The leak regression (satellite): a shard op raising mid-fan-out
        must not wedge ``close()`` — pools, mmaps, and the spill directory
        all go away."""
        engine = socket_engine(dataset, str(tmp_path))
        engine.coverage(Pattern.root(dataset.d))  # pool is live
        pool = engine._dist_pool
        pids = pool.worker_pids()
        path = engine.spill_path

        original = DistributedPool.run_shard_ops

        def explode(self, *args, **kwargs):
            raise EngineError("injected mid-fan-out failure")

        monkeypatch.setattr(DistributedPool, "run_shard_ops", explode)
        with pytest.raises(EngineError, match="injected"):
            engine.coverage(Pattern.of(0, X, X))
        monkeypatch.setattr(DistributedPool, "run_shard_ops", original)
        engine.close()
        assert not os.path.exists(path)
        assert engine._dist_pool is None
        for pid in pids:
            deadline = time.time() + 10
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                    time.sleep(0.05)
                except OSError:
                    break
            else:
                pytest.fail(f"worker {pid} leaked past close()")

    def test_template_rebuild_respawns_pool(self, dataset, tmp_path):
        engine = socket_engine(dataset, str(tmp_path))
        try:
            template = engine.template()
            assert template.workers_mode == "socket"
        finally:
            engine.close()
        rebuilt = ShardedEngine(
            dataset,
            shards=4,
            workers=2,
            workers_mode="socket",
            spill_dir=str(tmp_path),
        )
        try:
            assert rebuilt.coverage(Pattern.root(dataset.d)) == dataset.n
        finally:
            rebuilt.close()


# ----------------------------------------------------------------------
# incremental spill reuse
# ----------------------------------------------------------------------
class TestDeltaWrite:
    def test_localized_append_rewrites_one_shard(self, tmp_path):
        dataset = random_categorical_dataset(120, (4, 3, 2), seed=3, skew=1.4)
        engine = ShardedEngine(dataset, shards=4, spill_dir=str(tmp_path))
        try:
            unique, _ = dataset.unique_rows()
            # Duplicate the very first combination: only shard 0's counts
            # change, every other slice fingerprints identically.
            appended = dataset.append_rows(unique[:1].copy())
            result = ShardStoreWriter.delta_write(
                engine.store,
                appended,
                str(tmp_path / "delta"),
                owns_files=True,
            )
            try:
                assert result.dirty_shards == (0,)
                assert result.reused_shards == 3
                assert result.rewritten_shards == 1
                assert result.reused_bytes > 0
                total = result.reused_bytes + result.written_bytes
                assert result.written_bytes <= 0.5 * total
                # Clean shards are hard links to the same inodes.
                prev_entry = engine.store.manifest["shards"][1]
                new_entry = result.store.manifest["shards"][1]
                assert os.path.samefile(
                    engine.store.path / prev_entry["words_file"],
                    result.store.path / new_entry["words_file"],
                )
                assert result.store.format_version == 2
            finally:
                result.store.close()
        finally:
            engine.close()

    def test_delta_store_attaches_and_answers_identically(self, tmp_path):
        dataset = random_categorical_dataset(100, (3, 3, 2), seed=8, skew=1.2)
        engine = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        try:
            rows = np.array([[0, 0, 0], [2, 2, 1]], dtype=np.int32)
            appended = dataset.append_rows(rows)
            result = ShardStoreWriter.delta_write(
                engine.store, appended, str(tmp_path / "delta"), owns_files=False
            )
            result.store.close()
            # attach() re-validates every shard fingerprint — including the
            # hard-linked ones — against the appended dataset.
            attached = ShardedEngine.attach(appended, str(tmp_path / "delta"))
            dense = DenseBoolEngine(appended)
            try:
                probes = [Pattern.root(3), Pattern.of(0, 0, 0), Pattern.of(2, X, 1)]
                assert list(attached.coverage_many(probes)) == list(
                    dense.coverage_many(probes)
                )
            finally:
                attached.close()
        finally:
            engine.close()

    def test_delta_rebuild_hands_over_engine_state(self, tmp_path):
        dataset = random_categorical_dataset(80, (3, 2, 2), seed=5, skew=1.3)
        engine = ShardedEngine(
            dataset, shards=3, spill_dir=str(tmp_path), delta_spill=True
        )
        unique, _ = dataset.unique_rows()
        appended = dataset.append_rows(unique[:1].copy())
        successor = ShardedEngine.delta_rebuild(engine, appended)
        engine.close()
        dense = DenseBoolEngine(appended)
        try:
            assert successor.delta_result is not None
            assert successor.delta_result.reused_shards >= 1
            assert successor.delta_spill
            root = Pattern.root(3)
            assert successor.coverage(root) == dense.coverage(root)
        finally:
            successor.close()

    def test_schema_change_degrades_to_full_rewrite(self, tmp_path):
        dataset = random_categorical_dataset(60, (3, 2, 2), seed=2, skew=1.2)
        engine = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        try:
            # A dataset that flips uniformity (all multiplicities 1) cannot
            # reuse multiplicity shards; every slice is dirty.
            unique, _ = dataset.unique_rows()
            from repro.data.dataset import Dataset

            uniform = Dataset(dataset.schema, unique.copy())
            result = ShardStoreWriter.delta_write(
                engine.store, uniform, str(tmp_path / "delta"), owns_files=True
            )
            try:
                assert result.reused_shards == 0
                assert result.store.format_version == 2
            finally:
                result.store.close()
        finally:
            engine.close()


# ----------------------------------------------------------------------
# manifest v1 backward compatibility (checked-in fixture)
# ----------------------------------------------------------------------
class TestManifestV1Compat:
    def test_fixture_is_v1(self):
        with open(os.path.join(V1_FIXTURE, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["format"] == "repro-shard-store/v1"
        assert all("fingerprint" not in e for e in manifest["shards"])

    def test_v1_store_opens_without_fingerprints(self):
        store = MmapShardStore.open(V1_FIXTURE)
        try:
            assert store.format_version == 1
            assert store.shard_count == 3
            assert all(
                store.shard_fingerprint(s) is None
                for s in range(store.shard_count)
            )
        finally:
            store.close()

    def test_v1_attach_answers_identically_to_dense(self):
        dataset = v1_fixture_dataset()
        engine = ShardedEngine.attach(dataset, V1_FIXTURE)
        dense = DenseBoolEngine(dataset)
        try:
            probes = [Pattern.root(3)]
            for attribute, cardinality in enumerate(dataset.cardinalities):
                for value in range(cardinality):
                    probes.append(
                        Pattern.root(3).with_value(attribute, value)
                    )
            assert list(engine.coverage_many(probes)) == list(
                dense.coverage_many(probes)
            )
        finally:
            engine.close()
        # Attached stores never own the fixture's files.
        assert os.path.exists(os.path.join(V1_FIXTURE, "manifest.json"))

    def test_v1_previous_store_forces_full_rewrite(self, tmp_path):
        dataset = v1_fixture_dataset()
        prev = MmapShardStore.open(V1_FIXTURE)
        try:
            appended = dataset.append_rows(
                np.array([[0, 0, 0]], dtype=np.int32)
            )
            result = ShardStoreWriter.delta_write(
                prev, appended, str(tmp_path / "delta"), owns_files=True
            )
            try:
                assert result.reused_shards == 0
                assert result.store.format_version == 2
                attached = ShardedEngine.attach(
                    appended, str(tmp_path / "delta")
                )
                try:
                    assert attached.coverage(Pattern.root(3)) == appended.n
                finally:
                    attached.close()
            finally:
                result.store.close()
        finally:
            prev.close()

    def test_v1_fixture_has_no_dataset_payload(self):
        with pytest.raises(EngineError, match="dataset"):
            load_spill_dataset(V1_FIXTURE)

    def test_v2_dir_round_trips_through_load_spill_dataset(
        self, dataset, tmp_path
    ):
        engine = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        try:
            loaded = load_spill_dataset(engine.spill_path)
            assert (
                loaded.content_fingerprint() == dataset.content_fingerprint()
            )
        finally:
            engine.close()


# ----------------------------------------------------------------------
# configuration and CLI surface
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_endpoints_require_socket_mode(self):
        with pytest.raises(ReproError, match="socket"):
            EngineConfig(
                backend="sharded",
                worker_endpoints=["127.0.0.1:7000"],
                spill_dir="/tmp/x",
            ).validate()

    def test_endpoints_must_look_like_host_port(self, tmp_path):
        with pytest.raises(ReproError, match="host:port"):
            EngineConfig(
                backend="sharded",
                workers_mode="socket",
                worker_endpoints=["nonsense"],
                spill_dir=str(tmp_path),
            ).validate()

    def test_spawn_local_socket_requires_two_workers(self, tmp_path):
        with pytest.raises(ReproError, match="workers"):
            EngineConfig(
                backend="sharded",
                workers_mode="socket",
                workers=1,
                spill_dir=str(tmp_path),
            ).validate()

    def test_sharded_socket_requires_spill_dir(self):
        with pytest.raises(ReproError, match="spill"):
            EngineConfig(
                backend="sharded", workers_mode="socket", workers=2
            ).validate()

    def test_delta_spill_requires_spill_dir(self):
        with pytest.raises(ReproError, match="spill"):
            EngineConfig(backend="sharded", delta_spill=True).validate()

    def test_valid_socket_config_passes(self, tmp_path):
        EngineConfig(
            backend="sharded",
            workers_mode="socket",
            workers=2,
            spill_dir=str(tmp_path),
            delta_spill=True,
        ).validate()

    def test_planner_escalates_to_socket_when_starved(self, tmp_path):
        from repro.core.engine import plan_engine

        dataset = random_categorical_dataset(200, (4, 3, 3), seed=4, skew=1.2)
        plan = plan_engine(
            dataset,
            EngineConfig(
                backend="auto",
                spill_dir=str(tmp_path),
                max_resident_bytes=1,
                workers=2,
            ),
        )
        assert plan.config.workers_mode == "socket"
        assert any("socket" in line for line in plan.rationale)


class TestCliSurface:
    def test_worker_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["worker", "--host", "0.0.0.0", "--port", "7070"]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 7070
        assert callable(args.handler)

    def test_engine_options_accept_socket_flags(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "identify",
                "data.csv",
                "--threshold",
                "2",
                "--workers-mode",
                "socket",
                "--worker-endpoints",
                "h1:7000",
                "h2:7001",
                "--delta-spill",
                "--spill-dir",
                str(tmp_path),
            ]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.workers_mode == "socket"
        assert config.worker_endpoints == ("h1:7000", "h2:7001")
        assert config.delta_spill is True


# ----------------------------------------------------------------------
# serving layer warm start
# ----------------------------------------------------------------------
class TestServeWarmStart:
    def test_register_spill_attaches_existing_directory(
        self, dataset, tmp_path
    ):
        from repro.serve.registry import EngineRegistry

        build = ShardedEngine(dataset, shards=3, spill_dir=str(tmp_path))
        spill = build.spill_path
        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=4, max_bytes=1 << 30
        )
        try:
            entry, created = registry.register_spill(spill)
            assert created
            assert entry.snapshot.dataset.content_fingerprint() == (
                dataset.content_fingerprint()
            )
            assert entry.snapshot.oracle.coverage(
                Pattern.root(dataset.d)
            ) == dataset.n
            # Same directory again: the warm entry is reused, not rebuilt.
            again, created_again = registry.register_spill(spill)
            assert again is entry and not created_again
        finally:
            registry.close()
            # The attached engine must not have deleted the build's files.
            assert os.path.isdir(spill)
            build.close()

    def test_register_spill_rejects_non_store_directory(self, tmp_path):
        from repro.serve.registry import EngineRegistry

        registry = EngineRegistry(
            EngineConfig(backend="auto"), max_entries=2, max_bytes=1 << 30
        )
        try:
            with pytest.raises(ReproError):
                registry.register_spill(str(tmp_path))
        finally:
            registry.close()
