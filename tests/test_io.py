"""Unit tests for artefact persistence (repro.io)."""

import json

import pytest

from repro.core.enhancement.greedy import greedy_cover
from repro.core.mups import find_mups
from repro.exceptions import ReproError
from repro.io import (
    load_enhancement_result,
    load_mup_result,
    save_enhancement_result,
    save_mup_result,
)


class TestMupResultRoundtrip:
    def test_roundtrip(self, example1_dataset, tmp_path):
        result = find_mups(example1_dataset, threshold=1)
        path = tmp_path / "mups.json"
        save_mup_result(result, path)
        loaded = load_mup_result(path)
        assert loaded.mups == result.mups
        assert loaded.threshold == result.threshold
        assert loaded.max_level == result.max_level
        assert loaded.stats.nodes_generated == result.stats.nodes_generated

    def test_roundtrip_with_max_level(self, example1_dataset, tmp_path):
        result = find_mups(example1_dataset, threshold=2, max_level=1)
        path = tmp_path / "mups.json"
        save_mup_result(result, path)
        assert load_mup_result(path).max_level == 1

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError):
            load_mup_result(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"format": "repro.mup_result", "version": 999, "threshold": 1, "mups": []}
            )
        )
        with pytest.raises(ReproError):
            load_mup_result(path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_mup_result(path)


class TestEnhancementResultRoundtrip:
    def test_roundtrip(self, example2_space, example2_level2_targets, tmp_path):
        plan = greedy_cover(example2_level2_targets, example2_space)
        path = tmp_path / "plan.json"
        save_enhancement_result(plan, path)
        loaded = load_enhancement_result(path)
        assert loaded.combinations == plan.combinations
        assert loaded.generalized == plan.generalized
        assert loaded.targets == plan.targets
        assert loaded.unhittable == plan.unhittable

    def test_rejects_wrong_format(self, tmp_path, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        path = tmp_path / "mups.json"
        save_mup_result(result, path)
        with pytest.raises(ReproError):
            load_enhancement_result(path)
