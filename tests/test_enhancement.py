"""Unit and integration tests for coverage enhancement (§IV, Algs. 4–5)."""

import numpy as np
import pytest

from repro.core.coverage import CoverageOracle
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.greedy import enhance_coverage, greedy_cover
from repro.core.enhancement.hitting_set import naive_greedy_cover
from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.enhancement.value_count import targets_by_value_count
from repro.core.mups import deepdiver
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EnhancementError


def _hits(combo, targets):
    return {t for t in targets if t.matches(combo)}


class TestExample2Greedy:
    """The paper's running Example 2 (§IV-B)."""

    def test_first_pick_hits_three_patterns(self, example2_space, example2_level2_targets):
        plan = greedy_cover(example2_level2_targets, example2_space)
        first = plan.combinations[0]
        assert len(_hits(first, example2_level2_targets)) == 3

    def test_greedy_uses_three_combinations(self, example2_space, example2_level2_targets):
        # The paper's greedy run collects three value combinations; three is
        # also optimal (P1, P5, P2 pairwise conflict on A3).
        plan = greedy_cover(example2_level2_targets, example2_space)
        assert len(plan.combinations) == 3
        assert not plan.unhittable

    def test_all_targets_hit(self, example2_space, example2_level2_targets):
        plan = greedy_cover(example2_level2_targets, example2_space)
        hit = set()
        for combo in plan.combinations:
            hit |= _hits(combo, example2_level2_targets)
        assert hit == set(example2_level2_targets)

    def test_paper_combination_02011_hits_p1_p3_p4(self, example2_level2_targets):
        hits = _hits((0, 2, 0, 1, 1), example2_level2_targets)
        assert set(map(str, hits)) == {"XX01X", "XXXX1", "02XXX"}

    def test_naive_baseline_agrees_on_cover_size(
        self, example2_space, example2_level2_targets
    ):
        greedy_plan = greedy_cover(example2_level2_targets, example2_space)
        naive_plan = naive_greedy_cover(example2_level2_targets, example2_space)
        assert len(naive_plan.combinations) == len(greedy_plan.combinations)
        assert not naive_plan.unhittable


class TestGeneralization:
    def test_generalized_pattern_hits_same_targets(
        self, example2_space, example2_level2_targets
    ):
        plan = greedy_cover(example2_level2_targets, example2_space)
        for combo, general in zip(plan.combinations, plan.generalized):
            base_hits = _hits(combo, example2_level2_targets)
            for alternative in example2_space.combinations_matching(general):
                assert base_hits <= _hits(alternative, example2_level2_targets)

    def test_generalized_pattern_covers_the_combo(
        self, example2_space, example2_level2_targets
    ):
        plan = greedy_cover(example2_level2_targets, example2_space)
        for combo, general in zip(plan.combinations, plan.generalized):
            assert general.matches(combo)


class TestValidationIntegration:
    def test_blocked_targets_reported_unhittable(self, example2_space):
        # Forbid A1=1 entirely; the target 1XXXX becomes unhittable.
        oracle = ValidationOracle([ValidationRule({0: [1]})])
        targets = [Pattern.from_string("1XXXX"), Pattern.from_string("0XXXX")]
        plan = greedy_cover(targets, example2_space, oracle)
        assert set(map(str, plan.unhittable)) == {"1XXXX"}
        assert len(plan.combinations) == 1
        assert plan.combinations[0][0] == 0

    def test_all_output_combinations_are_valid(self, example2_space, example2_level2_targets):
        oracle = ValidationOracle([ValidationRule({0: [0], 1: [2]})])
        plan = greedy_cover(example2_level2_targets, example2_space, oracle)
        for combo in plan.combinations:
            assert oracle.is_valid_values(combo)

    def test_naive_respects_validation_too(self, example2_space, example2_level2_targets):
        oracle = ValidationOracle([ValidationRule({0: [0], 1: [2]})])
        plan = naive_greedy_cover(example2_level2_targets, example2_space, oracle)
        for combo in plan.combinations:
            assert oracle.is_valid_values(combo)


class TestGreedyVsNaiveRandom:
    @pytest.mark.parametrize("seed", range(6))
    def test_both_covers_complete_and_comparable(self, seed):
        space = PatternSpace([2, 3, 2, 2])
        rng = np.random.default_rng(seed)
        targets = list({space.random_pattern(rng, level=2) for _ in range(8)})
        fast = greedy_cover(targets, space)
        slow = naive_greedy_cover(targets, space)
        assert not fast.unhittable and not slow.unhittable
        # Both are greedy runs; tie-breaking may differ, but each cover is
        # complete and the sizes stay within the greedy guarantee band.
        for plan in (fast, slow):
            remaining = set(targets)
            for combo in plan.combinations:
                remaining -= {t for t in remaining if t.matches(combo)}
            assert not remaining
        assert abs(len(fast.combinations) - len(slow.combinations)) <= max(
            1, len(targets) // 2
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_each_pick_is_greedy_optimal(self, seed):
        space = PatternSpace([2, 2, 3])
        rng = np.random.default_rng(seed + 100)
        targets = list({space.random_pattern(rng) for _ in range(6)})
        targets = [t for t in targets if t.level > 0]
        plan = greedy_cover(targets, space)
        remaining = set(targets)
        for combo in plan.combinations:
            best_possible = max(
                len(_hits(c, remaining)) for c in space.all_combinations()
            )
            actual = len(_hits(combo, remaining))
            assert actual == best_possible
            remaining -= _hits(combo, remaining)


class TestEndToEnd:
    @pytest.mark.parametrize("level", [1, 2])
    def test_enhancement_reaches_target_level(self, level):
        dataset = random_categorical_dataset(60, (2, 3, 2), seed=9, skew=1.1)
        tau = 5
        mups = deepdiver(dataset, tau).mups
        result, enhanced = enhance_coverage(dataset, mups, level=level, threshold=tau)
        assert not result.unhittable
        after = deepdiver(enhanced, tau)
        assert after.max_covered_level(dataset.d) >= level

    def test_enhanced_dataset_grows_by_copies(self):
        dataset = random_categorical_dataset(60, (2, 2, 2), seed=10, skew=1.2)
        tau = 4
        mups = deepdiver(dataset, tau).mups
        result, enhanced = enhance_coverage(
            dataset, mups, level=1, threshold=tau, copies=2
        )
        assert enhanced.n == dataset.n + 2 * len(result.combinations)

    def test_copies_must_be_positive(self):
        dataset = random_categorical_dataset(30, (2, 2), seed=0, skew=1.0)
        mups = deepdiver(dataset, 3).mups
        with pytest.raises(EnhancementError):
            enhance_coverage(dataset, mups, level=1, threshold=3, copies=0)

    def test_result_rows_array(self, example2_space, example2_level2_targets):
        plan = greedy_cover(example2_level2_targets, example2_space)
        rows = plan.rows()
        assert rows.shape == (len(plan.combinations), example2_space.d)

    def test_empty_targets_yield_empty_plan(self, example2_space):
        plan = greedy_cover([], example2_space)
        assert plan.combinations == ()
        assert plan.targets == 0
        assert plan.rows().size == 0


class TestValueCountVariant:
    def test_matches_bruteforce(self):
        dataset = random_categorical_dataset(40, (2, 3, 2), seed=11, skew=1.0)
        tau = 4
        oracle = CoverageOracle(dataset)
        space = PatternSpace.for_dataset(dataset)
        mups = deepdiver(dataset, tau).mups
        for bound in (1, 2, 3, 4, 6, 12):
            targets = set(targets_by_value_count(mups, space, bound))
            brute = {
                p
                for p in space.all_patterns()
                if oracle.coverage(p) < tau and space.value_count(p) >= bound
            }
            assert targets == brute, f"value-count bound {bound}"

    def test_bound_one_includes_all_uncovered(self, example2_space, example2_mups):
        targets = targets_by_value_count(example2_mups, example2_space, 1)
        # Every MUP itself qualifies at bound 1.
        assert set(example2_mups) <= set(targets)

    def test_bad_bound_rejected(self, example2_space):
        with pytest.raises(EnhancementError):
            targets_by_value_count([], example2_space, 0)

    def test_value_count_targets_coverable(self, example2_space, example2_mups):
        targets = targets_by_value_count(example2_mups, example2_space, 12)
        plan = greedy_cover(targets, example2_space)
        assert not plan.unhittable


class TestNaiveGuard:
    def test_naive_refuses_huge_universe(self):
        space = PatternSpace([10] * 8)
        with pytest.raises(EnhancementError):
            naive_greedy_cover([], space)
