"""Unit tests for continuous-attribute bucketization (§II).

The regression classes pin the numeric-attribute bugfixes: non-finite
rejection (NaN used to sort into the top bucket silently), strictly
ascending thresholds, single-bucket constant columns, and the closed
last-bucket label.
"""

import numpy as np
import pytest

from repro.data.bucketize import (
    bucketize_equal_width,
    bucketize_quantiles,
    bucketize_thresholds,
)
from repro.exceptions import DataError


class TestThresholds:
    def test_compas_age_buckets(self):
        # The paper's COMPAS encoding: <20, 20-39, 40-59, >=60.
        ages = [15, 20, 39, 40, 59, 60, 85]
        codes, labels = bucketize_thresholds(ages, [20, 40, 60])
        assert codes.tolist() == [0, 1, 1, 2, 2, 3, 3]
        assert len(labels) == 4

    def test_custom_labels(self):
        codes, labels = bucketize_thresholds([1, 5], [3], labels=["low", "high"])
        assert labels == ["low", "high"]
        assert codes.tolist() == [0, 1]

    def test_label_count_checked(self):
        with pytest.raises(DataError):
            bucketize_thresholds([1], [3], labels=["only-one"])

    def test_unsorted_thresholds_rejected(self):
        with pytest.raises(DataError):
            bucketize_thresholds([1], [5, 3])

    def test_duplicate_thresholds_rejected(self):
        # A non-strict check used to let [20, 20, 40] through, creating a
        # zero-width bucket that no value could land in.
        with pytest.raises(DataError, match="strictly ascending"):
            bucketize_thresholds([1, 25], [20, 20, 40])

    def test_non_finite_thresholds_rejected(self):
        with pytest.raises(DataError, match="finite"):
            bucketize_thresholds([1.0], [float("nan")])

    def test_empty_thresholds_rejected(self):
        with pytest.raises(DataError):
            bucketize_thresholds([1], [])

    def test_default_labels_readable(self):
        _codes, labels = bucketize_thresholds([1, 25, 45], [20, 40])
        assert labels[0].startswith("<")
        assert labels[-1].startswith(">=")


class TestEqualWidth:
    def test_even_split(self):
        codes, labels = bucketize_equal_width([0.0, 2.5, 5.0, 7.5, 10.0], 4)
        assert codes.tolist() == [0, 1, 2, 3, 3]
        assert len(labels) == 4

    def test_constant_column_single_bucket(self):
        # A constant column used to return one real label padded with
        # "(empty)" entries, so a Schema built from it claimed cardinality
        # `buckets` and inflated the pattern lattice with empty values.
        codes, labels = bucketize_equal_width([3.0, 3.0], 3)
        assert codes.tolist() == [0, 0]
        assert labels == ["[3,3]"]

    def test_last_bucket_label_closed(self):
        # The max value is included in the last bucket, so its label must
        # render closed: [7.5,10], not [7.5,10).
        _codes, labels = bucketize_equal_width([0.0, 2.5, 5.0, 7.5, 10.0], 4)
        assert labels[-1] == "[7.5,10]"
        assert all(label.endswith(")") for label in labels[:-1])

    def test_requires_two_buckets(self):
        with pytest.raises(DataError):
            bucketize_equal_width([1.0], 1)

    def test_empty_column_rejected(self):
        with pytest.raises(DataError):
            bucketize_equal_width([], 2)


class TestQuantiles:
    def test_equal_population(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        codes, labels = bucketize_quantiles(values, 4)
        counts = np.bincount(codes)
        assert len(counts) == 4
        assert counts.min() > 180  # roughly balanced

    def test_heavy_ties_collapse(self):
        codes, labels = bucketize_quantiles([1.0] * 10 + [2.0], 4)
        assert len(set(codes.tolist())) <= len(labels)

    def test_all_identical(self):
        codes, labels = bucketize_quantiles([5.0] * 4, 3)
        assert codes.tolist() == [0, 0, 0, 0]

    def test_last_bucket_label_closed(self):
        _codes, labels = bucketize_quantiles([0.0, 1.0, 2.0, 3.0], 2)
        assert labels[-1].endswith("]")
        assert all(label.endswith(")") for label in labels[:-1])

    def test_requires_two_buckets(self):
        with pytest.raises(DataError):
            bucketize_quantiles([1.0, 2.0], 1)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            bucketize_quantiles([], 2)


class TestNonFiniteRejection:
    """NaN sorts after every float, so searchsorted used to drop NaN rows
    silently into the top bucket in all three bucketizers."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_thresholds_rejects(self, bad):
        with pytest.raises(DataError, match="non-finite"):
            bucketize_thresholds([1.0, bad, 3.0], [2.0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_equal_width_rejects(self, bad):
        with pytest.raises(DataError, match="non-finite"):
            bucketize_equal_width([1.0, bad, 3.0], 2)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_quantiles_rejects(self, bad):
        with pytest.raises(DataError, match="non-finite"):
            bucketize_quantiles([1.0, bad, 3.0], 2)

    def test_error_names_the_offending_row(self):
        with pytest.raises(DataError, match="row 1"):
            bucketize_equal_width([1.0, float("nan"), 3.0], 2)
