"""End-to-end tests for the command-line interface."""

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.synthetic import random_categorical_dataset


@pytest.fixture
def csv_file(tmp_path):
    """A small integer-coded CSV with a header row."""
    dataset = random_categorical_dataset(60, (2, 3, 2), seed=4, skew=1.0)
    path = tmp_path / "data.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["color", "size", "shape"])
        writer.writerows(dataset.rows.tolist())
    return str(path)


class TestIdentify:
    def test_identify_prints_mups(self, csv_file, capsys):
        code = main(["identify", csv_file, "--threshold", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "maximal uncovered pattern" in output

    def test_identify_with_projection(self, csv_file, capsys):
        code = main(
            ["identify", csv_file, "--threshold", "5", "--attributes", "color", "size"]
        )
        assert code == 0

    def test_identify_with_algorithm_choice(self, csv_file, capsys):
        code = main(
            ["identify", csv_file, "--threshold", "5", "--algorithm", "pattern_breaker"]
        )
        assert code == 0

    def test_identify_with_level_cap(self, csv_file, capsys):
        code = main(["identify", csv_file, "--threshold", "5", "--max-level", "1"])
        assert code == 0


class TestLabel:
    def test_label_renders_widget(self, csv_file, capsys):
        code = main(["label", csv_file, "--threshold", "5"])
        assert code == 0
        assert "Coverage" in capsys.readouterr().out


class TestEnhance:
    def test_enhance_prints_plan(self, csv_file, capsys):
        code = main(["enhance", csv_file, "--threshold", "5", "--level", "1"])
        assert code == 0
        assert "Acquisition plan" in capsys.readouterr().out

    def test_enhance_with_rule(self, csv_file, capsys):
        code = main(
            [
                "enhance",
                csv_file,
                "--threshold",
                "5",
                "--level",
                "1",
                "--rule",
                "color=1,size=2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Acquisition plan" in output

    def test_enhance_with_bad_rule_returns_2(self, csv_file, capsys):
        code = main(
            ["enhance", csv_file, "--threshold", "5", "--level", "1", "--rule", "junk"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_enhance_rule_unknown_attribute_returns_2(self, csv_file, capsys):
        code = main(
            ["enhance", csv_file, "--threshold", "5", "--level", "1", "--rule", "zz=1"]
        )
        assert code == 2


class TestSweep:
    def test_sweep_tau_range_prints_tables(self, csv_file, capsys):
        code = main(["sweep", csv_file, "--tau-range", "2:8:2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold sweep over τ ∈ [2, 8]" in out
        assert "appeared" in out and "disappears above" in out

    def test_sweep_explicit_thresholds_with_bootstrap(self, csv_file, capsys):
        code = main(
            [
                "sweep", csv_file,
                "--thresholds", "3", "6",
                "--bootstrap", "2",
                "--seed", "9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bootstrap support over 2 replicates (seed 9)" in out
        assert "mean support" in out

    def test_sweep_json_matches_library(self, csv_file, capsys):
        import json as json_module

        from repro.analysis.sweep import threshold_sensitivity
        from repro.cli import _load_csv

        code = main(["sweep", csv_file, "--tau-range", "2:5", "--json"])
        assert code == 0
        body = json_module.loads(capsys.readouterr().out)
        expected = threshold_sensitivity(
            _load_csv(csv_file, None), [2, 3, 4, 5]
        ).as_dict()
        assert body == expected

    def test_sweep_counts_match_identify(self, csv_file, capsys):
        """Amortized CLI counts agree with per-τ identify runs."""
        import json as json_module

        assert main(["sweep", csv_file, "--tau-range", "4:6", "--json"]) == 0
        counts = json_module.loads(capsys.readouterr().out)["counts"]
        for tau in (4, 5, 6):
            assert main(["identify", csv_file, "--threshold", str(tau)]) == 0
            out = capsys.readouterr().out
            expected = counts[str(tau)]
            assert f"{expected} maximal uncovered pattern(s) at τ={tau}" in out

    def test_sweep_explain_plan_uses_sweep_shape(self, csv_file, capsys):
        code = main(
            ["sweep", csv_file, "--tau-range", "2:4", "--explain-plan"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query shape 'sweep'" in out

    def test_sweep_requires_some_thresholds(self, csv_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", csv_file])

    def test_sweep_bad_range_returns_2(self, csv_file, capsys):
        code = main(["sweep", csv_file, "--tau-range", "9:1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs_on_bundled_compas(self, capsys):
        code = main(["demo", "--threshold", "10", "--limit", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "marital_status" in output


class TestErrors:
    def test_missing_file_returns_2(self, capsys):
        code = main(["identify", "/does/not/exist.csv", "--threshold", "5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_attribute_returns_2(self, csv_file, capsys):
        code = main(
            ["identify", csv_file, "--threshold", "5", "--attributes", "nope"]
        )
        assert code == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ["packed", "sharded"])
    def test_identify_output_identical_across_engines(self, csv_file, engine, capsys):
        assert main(["identify", csv_file, "--threshold", "5"]) == 0
        reference = capsys.readouterr().out
        code = main(["identify", csv_file, "--threshold", "5", "--engine", engine])
        assert code == 0
        assert capsys.readouterr().out == reference

    def test_identify_with_shards_and_workers(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--shards",
                "3",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "maximal uncovered pattern" in capsys.readouterr().out

    def test_label_and_enhance_accept_sharded(self, csv_file, capsys):
        assert (
            main(
                ["label", csv_file, "--threshold", "5", "--engine", "sharded"]
            )
            == 0
        )
        assert (
            main(
                [
                    "enhance",
                    csv_file,
                    "--threshold",
                    "5",
                    "--level",
                    "1",
                    "--engine",
                    "sharded",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )

    def test_oversharding_is_clamped_not_an_error(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--shards",
                "100000",
            ]
        )
        assert code == 0

    def test_invalid_shard_count_returns_2(self, csv_file, capsys):
        code = main(
            ["identify", csv_file, "--threshold", "5", "--engine", "sharded", "--shards", "0"]
        )
        assert code == 2
        assert "shard count" in capsys.readouterr().err


class TestOutOfCore:
    def test_identify_out_of_core_matches_in_memory(
        self, csv_file, tmp_path, capsys
    ):
        assert main(["identify", csv_file, "--threshold", "5"]) == 0
        reference = capsys.readouterr().out
        spill = tmp_path / "spill"
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--shards",
                "3",
                "--spill-dir",
                str(spill),
                "--max-resident-bytes",
                "4096",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == reference

    def test_identify_with_process_workers(self, csv_file, tmp_path, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--shards",
                "3",
                "--workers",
                "2",
                "--workers-mode",
                "process",
                "--spill-dir",
                str(tmp_path / "spill"),
            ]
        )
        assert code == 0
        assert "maximal uncovered pattern" in capsys.readouterr().out

    def test_spill_dir_requires_sharded_engine(self, csv_file, tmp_path, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--spill-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_shards_require_sharded_engine(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--shards",
                "16",
            ]
        )
        assert code == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_workers_require_sharded_engine(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--workers",
                "4",
            ]
        )
        assert code == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_workers_mode_requires_sharded_engine(self, csv_file, capsys):
        # The default engine is now "auto" (which accepts sharded knobs as
        # planner constraints), so the inapplicable combination must name
        # the backend explicitly.
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--workers-mode",
                "thread",
            ]
        )
        assert code == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_process_mode_without_spill_dir_returns_2(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "sharded",
                "--workers",
                "2",
                "--workers-mode",
                "process",
            ]
        )
        assert code == 2
        assert "out-of-core" in capsys.readouterr().err


class TestAutoPlanner:
    """The auto planner is the CLI default and honors its constraints."""

    def test_auto_is_the_default_and_matches_explicit_engines(
        self, csv_file, capsys
    ):
        assert main(["identify", csv_file, "--threshold", "5"]) == 0
        auto_output = capsys.readouterr().out
        for engine in ("dense", "packed", "sharded"):
            code = main(
                ["identify", csv_file, "--threshold", "5", "--engine", engine]
            )
            assert code == 0
            assert capsys.readouterr().out == auto_output

    def test_explain_plan_prints_rationale(self, csv_file, capsys):
        code = main(
            ["identify", csv_file, "--threshold", "5", "--explain-plan"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "engine plan:" in output
        assert "projected" in output
        assert "maximal uncovered pattern" in output

    def test_explain_plan_reports_hand_picked_engines(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--engine",
                "packed",
                "--explain-plan",
            ]
        )
        assert code == 0
        assert "hand-picked" in capsys.readouterr().out

    def test_auto_escalates_to_out_of_core_under_memory_budget(
        self, csv_file, tmp_path, capsys
    ):
        """The acceptance pin: projected packed bytes above the budget
        select the out-of-core mode, with identical answers."""
        assert main(["identify", csv_file, "--threshold", "5"]) == 0
        reference = capsys.readouterr().out
        spill = tmp_path / "spill"
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--explain-plan",
                "--spill-dir",
                str(spill),
                "--max-resident-bytes",
                "16",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "out-of-core" in output
        assert "max_resident_bytes=16" in output
        # The plan renders first; the report itself is byte-identical.
        assert output.endswith(reference)
        # The planner's spill subdirectory is removed when the run ends.
        import os

        assert os.listdir(spill) == []

    def test_auto_accepts_sharded_knobs_as_constraints(self, csv_file, capsys):
        code = main(
            [
                "identify",
                csv_file,
                "--threshold",
                "5",
                "--explain-plan",
                "--shards",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backend=sharded shards=3" in output
        assert "requested explicitly" in output


@pytest.fixture
def hierarchy_setup(tmp_path):
    """A CSV whose every code is observed plus a matching stack spec."""
    import json

    rng = np.random.default_rng(9)
    rows = rng.integers(0, [2, 3, 2], size=(60, 3)).tolist()
    rows += [[0, 0, 0], [1, 1, 1], [0, 2, 0], [1, 2, 1], [0, 1, 0]]
    path = tmp_path / "hier.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["color", "size", "shape"])
        writer.writerows(rows)
    spec = tmp_path / "stack.json"
    spec.write_text(
        json.dumps(
            {
                "size": [
                    {"groups": [0, 0, 1], "labels": ["small", "large"]}
                ],
                "color": [[0, 0]],
            }
        )
    )
    return str(path), str(spec)


@pytest.fixture
def numeric_csv(tmp_path):
    """A CSV mixing categorical columns with one numeric column."""
    rng = np.random.default_rng(13)
    path = tmp_path / "numeric.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["color", "size", "price"])
        for _ in range(70):
            writer.writerow(
                [
                    int(rng.integers(0, 2)),
                    int(rng.integers(0, 3)),
                    round(float(rng.lognormal(0.0, 1.0)), 3),
                ]
            )
    return str(path)


class TestHierarchyCommand:
    def test_prints_level_table_and_remedies(self, hierarchy_setup, capsys):
        path, spec = hierarchy_setup
        code = main(
            ["hierarchy", path, "--threshold", "5", "--hierarchy", spec]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "level" in output
        assert "generalize" in output or "no covered generalization" in output

    def test_no_remedies_flag(self, hierarchy_setup, capsys):
        path, spec = hierarchy_setup
        code = main(
            [
                "hierarchy",
                path,
                "--threshold",
                "5",
                "--hierarchy",
                spec,
                "--no-remedies",
            ]
        )
        assert code == 0
        assert "generalize to" not in capsys.readouterr().out

    def test_json_output(self, hierarchy_setup, capsys):
        import json

        path, spec = hierarchy_setup
        code = main(
            [
                "hierarchy",
                path,
                "--threshold",
                "5",
                "--hierarchy",
                spec,
                "--json",
            ]
        )
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert [entry["level"] for entry in body["levels"]] == [0, 1]
        assert "remedies" in body

    def test_bad_spec_returns_2(self, hierarchy_setup, tmp_path, capsys):
        path, _spec = hierarchy_setup
        bad = tmp_path / "bad.json"
        bad.write_text('{"size": [[0, 0, 7]]}')
        code = main(
            ["hierarchy", path, "--threshold", "5", "--hierarchy", str(bad)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_attribute_in_spec_returns_2(
        self, hierarchy_setup, tmp_path, capsys
    ):
        path, _spec = hierarchy_setup
        bad = tmp_path / "unknown.json"
        bad.write_text('{"nope": [[0, 0]]}')
        code = main(
            ["hierarchy", path, "--threshold", "5", "--hierarchy", str(bad)]
        )
        assert code == 2


class TestBucketSweepCommand:
    def test_prints_sweep_table(self, numeric_csv, capsys):
        code = main(
            [
                "bucketsweep",
                numeric_csv,
                "--column",
                "price",
                "--buckets",
                "2",
                "4",
                "8",
                "--threshold",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "buckets" in output

    def test_json_output(self, numeric_csv, capsys):
        import json

        code = main(
            [
                "bucketsweep",
                numeric_csv,
                "--column",
                "price",
                "--buckets",
                "2",
                "4",
                "--threshold",
                "4",
                "--json",
            ]
        )
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert [point["buckets"] for point in body["points"]] == [2, 4]

    def test_missing_column_returns_2(self, numeric_csv, capsys):
        code = main(
            [
                "bucketsweep",
                numeric_csv,
                "--column",
                "weight",
                "--buckets",
                "2",
                "--threshold",
                "4",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_non_nesting_buckets_return_2(self, numeric_csv, capsys):
        code = main(
            [
                "bucketsweep",
                numeric_csv,
                "--column",
                "price",
                "--buckets",
                "2",
                "3",
                "--threshold",
                "4",
            ]
        )
        assert code == 2
        assert "nest" in capsys.readouterr().err
