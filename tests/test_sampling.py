"""Tests for coverage-preserving subsampling, including its core invariant."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.mups import deepdiver
from repro.data.dataset import Dataset, Schema
from repro.data.sampling import coverage_preserving_sample, sample_size_required
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import DataError


class TestBasics:
    def test_quota_caps_duplicates(self):
        rows = [[0, 0]] * 10 + [[1, 1]] * 2
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        sample = coverage_preserving_sample(dataset, threshold=3)
        assert sample.n == 5  # 3 + 2
        counts = {tuple(r): 0 for r in sample.rows}
        for row in sample.rows:
            counts[tuple(row)] += 1
        assert counts[(0, 0)] == 3
        assert counts[(1, 1)] == 2

    def test_sample_size_required(self):
        rows = [[0, 0]] * 10 + [[1, 1]] * 2
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        assert sample_size_required(dataset, 3) == 5
        assert sample_size_required(dataset, 100) == 12

    def test_budget_enforced(self):
        rows = [[0, 0]] * 10 + [[1, 1]] * 10
        dataset = Dataset.from_rows(rows, cardinalities=[2, 2])
        with pytest.raises(DataError):
            coverage_preserving_sample(dataset, threshold=5, max_size=7)

    def test_threshold_validated(self):
        dataset = Dataset.from_rows([[0]], cardinalities=[2])
        with pytest.raises(DataError):
            coverage_preserving_sample(dataset, threshold=0)
        with pytest.raises(DataError):
            sample_size_required(dataset, 0)

    def test_empty_dataset(self):
        dataset = Dataset(Schema.binary(2), np.zeros((0, 2), dtype=np.int32))
        assert coverage_preserving_sample(dataset, threshold=2).n == 0

    def test_labels_follow(self):
        dataset = Dataset(
            Schema.binary(1),
            np.array([[0], [0], [0], [1]], dtype=np.int32),
            labels={"y": np.array([1, 2, 3, 4])},
        )
        sample = coverage_preserving_sample(dataset, threshold=2, seed=1)
        assert sample.n == 3
        # Every kept label value corresponds to its kept row.
        for row, label in zip(sample.rows, sample.label("y")):
            assert (row[0] == 1) == (label == 4)

    def test_deterministic_given_seed(self):
        dataset = random_categorical_dataset(200, (2, 3), seed=5, skew=0.5)
        a = coverage_preserving_sample(dataset, threshold=2, seed=9)
        b = coverage_preserving_sample(dataset, threshold=2, seed=9)
        assert np.array_equal(a.rows, b.rows)


class TestMupInvariant:
    def test_mup_set_preserved_on_skewed_data(self):
        dataset = random_categorical_dataset(500, (2, 3, 2), seed=6, skew=1.0)
        tau = 8
        before = deepdiver(dataset, tau).as_set()
        sample = coverage_preserving_sample(dataset, threshold=tau, seed=2)
        after = deepdiver(sample, tau).as_set()
        assert before == after
        assert sample.n <= dataset.n

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_mup_set_preserved_property(self, seed, tau):
        dataset = random_categorical_dataset(60, (2, 2, 3), seed=seed, skew=0.8)
        before = deepdiver(dataset, tau).as_set()
        sample = coverage_preserving_sample(dataset, threshold=tau, seed=seed)
        after = deepdiver(sample, tau).as_set()
        assert before == after
