"""Unit tests for the pattern graph / PatternSpace (§III-B)."""

import itertools

import numpy as np
import pytest

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import PatternError


@pytest.fixture
def binary3() -> PatternSpace:
    """The Figure 2 space: three binary attributes."""
    return PatternSpace([2, 2, 2])


class TestCounts:
    def test_figure2_node_count(self, binary3):
        # The paper: (2 + 1)^3 = 27 nodes.
        assert binary3.node_count() == 27

    def test_figure2_edge_count(self, binary3):
        # The paper: c * d * (c+1)^{d-1} = 2 * 3 * 9 = 54 edges.
        assert binary3.edge_count() == 54

    def test_figure2_level_widths(self, binary3):
        # Level 1 has C(3,1)*2 = 6 nodes, level 2 has C(3,2)*4 = 12.
        assert binary3.level_width(0) == 1
        assert binary3.level_width(1) == 6
        assert binary3.level_width(2) == 12
        assert binary3.level_width(3) == 8

    def test_level_width_out_of_range(self, binary3):
        with pytest.raises(PatternError):
            binary3.level_width(4)

    def test_combination_count(self):
        space = PatternSpace([2, 3, 5])
        assert space.combination_count() == 30

    def test_mixed_cardinality_node_count(self):
        space = PatternSpace([2, 3, 5])
        assert space.node_count() == 3 * 4 * 6

    def test_value_count_paper_example(self):
        # P = X1X0 over binary attributes: c_{A_P} = 2 * 2 = 4.
        space = PatternSpace([2, 2, 2, 2])
        assert space.value_count(Pattern.from_string("X1X0")) == 4

    def test_value_count_root_and_leaf(self):
        space = PatternSpace([2, 3])
        assert space.value_count(Pattern.root(2)) == 6
        assert space.value_count(Pattern.from_string("11")) == 1

    def test_all_patterns_enumerates_node_count(self, binary3):
        assert sum(1 for _ in binary3.all_patterns()) == 27

    def test_all_combinations(self, binary3):
        combos = list(binary3.all_combinations())
        assert len(combos) == 8
        assert (0, 0, 0) in combos and (1, 1, 1) in combos


class TestValidation:
    def test_validate_accepts_good_pattern(self, binary3):
        pattern = Pattern.from_string("1X0")
        assert binary3.validate(pattern) is pattern

    def test_validate_rejects_wrong_length(self, binary3):
        with pytest.raises(PatternError):
            binary3.validate(Pattern.from_string("1X"))

    def test_validate_rejects_out_of_range_value(self, binary3):
        with pytest.raises(PatternError):
            binary3.validate(Pattern.from_string("12X"))

    def test_constructor_rejects_empty(self):
        with pytest.raises(PatternError):
            PatternSpace([])

    def test_constructor_rejects_zero_cardinality(self):
        with pytest.raises(PatternError):
            PatternSpace([2, 0])

    def test_for_dataset(self, example1_dataset):
        space = PatternSpace.for_dataset(example1_dataset)
        assert space.cardinalities == (2, 2, 2)


class TestNavigation:
    def test_children_enumerates_all(self, binary3):
        children = set(map(str, binary3.children(Pattern.from_string("0XX"))))
        assert children == {"00X", "01X", "0X0", "0X1"}

    def test_rule1_children_paper_example(self, binary3):
        # §III-C: node 0XX generates 0X0, 0X1, 00X, 01X.
        children = set(map(str, binary3.rule1_children(Pattern.from_string("0XX"))))
        assert children == {"00X", "01X", "0X0", "0X1"}

    def test_rule1_children_respect_rightmost_rule(self, binary3):
        # §III-C: node X1X generates only X10 and X11.
        children = set(map(str, binary3.rule1_children(Pattern.from_string("X1X"))))
        assert children == {"X10", "X11"}

    def test_rule1_parent_inverts_rule1(self, binary3):
        for pattern in binary3.all_patterns():
            for child in binary3.rule1_children(pattern):
                assert binary3.rule1_parent(child) == pattern

    def test_rule1_generates_each_node_once(self, binary3):
        # Theorem 3: every non-root node is generated exactly once.
        generated = []
        for pattern in binary3.all_patterns():
            generated.extend(binary3.rule1_children(pattern))
        assert len(generated) == len(set(generated)) == 26  # all but the root

    def test_rule2_parents_paper_example(self):
        # §III-D: X01 generates XX1; 000 generates 00X, 0X0, X00.
        space = PatternSpace([2, 2, 2])
        assert set(map(str, space.rule2_parents(Pattern.from_string("X01")))) == {"XX1"}
        assert set(map(str, space.rule2_parents(Pattern.from_string("000")))) == {
            "00X",
            "0X0",
            "X00",
        }

    def test_rule2_child_inverts_rule2(self, binary3):
        for pattern in binary3.all_patterns():
            for parent in binary3.rule2_parents(pattern):
                assert space_child_matches(binary3, parent, pattern)

    def test_rule2_generates_each_non_leaf_once(self, binary3):
        generated = []
        for pattern in binary3.all_patterns():
            generated.extend(binary3.rule2_parents(pattern))
        # All 27 - 8 = 19 non-leaf nodes are generated exactly once.
        assert len(generated) == len(set(generated)) == 19

    def test_sibling_family_partitions(self, binary3):
        family = binary3.sibling_family(Pattern.from_string("1XX"), 2)
        assert set(map(str, family)) == {"1X0", "1X1"}

    def test_sibling_family_requires_x(self, binary3):
        with pytest.raises(PatternError):
            binary3.sibling_family(Pattern.from_string("1X0"), 2)


def space_child_matches(space, parent, child):
    return space.rule2_child(parent) == child


class TestDescendants:
    def test_appendix_c_example(self, example2_space):
        # Appendix C: subset patterns of P1 = XX01X at level 3.
        expanded = set(
            map(str, example2_space.descendants_at_level(Pattern.from_string("XX01X"), 3))
        )
        assert expanded == {
            "0X01X",
            "1X01X",
            "X001X",
            "X101X",
            "X201X",
            "XX010",
            "XX011",
        }

    def test_descendants_at_own_level_is_self(self, example2_space):
        pattern = Pattern.from_string("XX01X")
        assert list(example2_space.descendants_at_level(pattern, 2)) == [pattern]

    def test_descendants_below_level_raises(self, example2_space):
        with pytest.raises(PatternError):
            list(example2_space.descendants_at_level(Pattern.from_string("XX01X"), 1))

    def test_descendants_count_binary(self, binary3):
        # From the root, level-l descendants = level width.
        for level in range(4):
            descendants = list(binary3.descendants_at_level(binary3.root(), level))
            assert len(descendants) == binary3.level_width(level)
            assert len(set(descendants)) == len(descendants)

    def test_combinations_matching(self, binary3):
        combos = set(binary3.combinations_matching(Pattern.from_string("1XX")))
        assert combos == {(1, a, b) for a in (0, 1) for b in (0, 1)}

    def test_random_pattern_respects_level(self, binary3):
        rng = np.random.default_rng(0)
        for level in range(4):
            pattern = binary3.random_pattern(rng, level)
            assert pattern.level == level
            binary3.validate(pattern)

    def test_random_pattern_rejects_bad_level(self, binary3):
        rng = np.random.default_rng(0)
        with pytest.raises(PatternError):
            binary3.random_pattern(rng, 9)
