"""Unit tests for the dataset simulators (COMPAS, AirBnB, BlueNile, synthetic)."""

import numpy as np
import pytest

from repro.data.airbnb import AMENITY_NAMES, load_airbnb, load_airbnb_full
from repro.data.bluenile import BLUENILE_SCHEMA, load_bluenile
from repro.data.compas import COMPAS_SCHEMA, hispanic_female_split, load_compas
from repro.data.synthetic import (
    correlated_binary_dataset,
    diagonal_dataset,
    random_categorical_dataset,
)
from repro.exceptions import DataError


class TestCompas:
    def test_default_size_and_schema(self):
        dataset = load_compas()
        assert dataset.n == 6889
        assert dataset.schema == COMPAS_SCHEMA
        assert dataset.cardinalities == (2, 4, 4, 7)

    def test_deterministic_given_seed(self):
        assert np.array_equal(load_compas(seed=1).rows, load_compas(seed=1).rows)
        assert not np.array_equal(load_compas(seed=1).rows, load_compas(seed=2).rows)

    def test_hispanic_female_count_is_100(self):
        dataset = load_compas()
        rows = dataset.rows
        hf = (rows[:, 0] == 1) & (rows[:, 2] == 2)
        assert int(hf.sum()) == 100

    def test_widowed_hispanics_are_two_and_reoffended(self):
        # The paper's XX23 anecdote: two matching rows, both re-offended.
        dataset = load_compas()
        rows = dataset.rows
        wh = (rows[:, 2] == 2) & (rows[:, 3] == 3)
        assert int(wh.sum()) == 2
        assert dataset.label("reoffended")[wh].tolist() == [1, 1]

    def test_all_single_values_covered_at_tau_10(self):
        # §V-B1: "all the single attribute values contain more instances
        # than the threshold".
        dataset = load_compas()
        for attribute in range(dataset.d):
            counts = dataset.value_counts(attribute)
            assert min(counts) >= 10

    def test_label_present(self):
        dataset = load_compas()
        label = dataset.label("reoffended")
        assert set(np.unique(label)) <= {0, 1}

    def test_hispanic_female_split(self):
        dataset = load_compas()
        test, pool, rest = hispanic_female_split(dataset)
        assert len(test) == 20
        assert len(pool) == 80
        assert len(test) + len(pool) + len(rest) == dataset.n
        assert set(test).isdisjoint(pool)

    def test_small_n_still_works(self):
        dataset = load_compas(n=500, seed=3)
        assert dataset.n == 500


class TestAirbnb:
    def test_shape_and_binary(self):
        dataset = load_airbnb(n=2000, d=13)
        assert dataset.n == 2000
        assert dataset.d == 13
        assert dataset.cardinalities == (2,) * 13

    def test_attribute_names_are_amenities(self):
        dataset = load_airbnb(n=100, d=5)
        assert dataset.schema.names == AMENITY_NAMES[:5]

    def test_explicit_attribute_selection(self):
        dataset = load_airbnb(n=100, attributes=["tv", "gym"])
        assert dataset.schema.names == ("tv", "gym")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(DataError):
            load_airbnb(n=10, attributes=["jacuzzi"])

    def test_d_bounds_checked(self):
        with pytest.raises(DataError):
            load_airbnb(n=10, d=99)

    def test_rates_are_heterogeneous(self):
        dataset = load_airbnb(n=5000, d=36)
        rates = dataset.rows.mean(axis=0)
        assert rates.max() > 0.75
        assert rates.min() < 0.25

    def test_deterministic_given_seed(self):
        a = load_airbnb(n=500, d=8, seed=4)
        b = load_airbnb(n=500, d=8, seed=4)
        assert np.array_equal(a.rows, b.rows)

    def test_full_table(self):
        dataset = load_airbnb_full(n=300)
        assert dataset.d == 41
        assert dataset.cardinalities[-5:] == (3, 6, 5, 5, 10)


class TestBlueNile:
    def test_cardinalities_match_paper(self):
        dataset = load_bluenile(n=5000)
        assert dataset.schema == BLUENILE_SCHEMA
        assert dataset.cardinalities == (10, 4, 7, 8, 3, 3, 5)

    def test_default_catalog_size(self):
        dataset = load_bluenile(n=116_300)
        assert dataset.n == 116_300

    def test_round_shape_dominates(self):
        dataset = load_bluenile(n=20_000)
        shapes = dataset.value_counts("shape")
        assert shapes[0] == max(shapes)

    def test_finish_correlates_with_cut(self):
        dataset = load_bluenile(n=20_000)
        rows = dataset.rows
        top_cut = rows[:, 1] >= 2
        poor_polish_given_top = (rows[top_cut, 4] == 0).mean()
        poor_polish_given_low = (rows[~top_cut, 4] == 0).mean()
        assert poor_polish_given_top < poor_polish_given_low


class TestSynthetic:
    def test_diagonal_needs_two(self):
        with pytest.raises(DataError):
            diagonal_dataset(1)

    def test_random_skew_concentrates_low_codes(self):
        dataset = random_categorical_dataset(5000, (5,), seed=0, skew=1.5)
        counts = dataset.value_counts(0)
        assert counts[0] == max(counts)

    def test_random_uniform_when_no_skew(self):
        dataset = random_categorical_dataset(6000, (3,), seed=0, skew=0.0)
        counts = dataset.value_counts(0)
        assert max(counts) - min(counts) < 600

    def test_random_rejects_negative_n(self):
        with pytest.raises(DataError):
            random_categorical_dataset(-1, (2,))

    def test_correlated_binary_shape(self):
        dataset = correlated_binary_dataset(1000, 6, seed=1)
        assert dataset.n == 1000
        assert dataset.d == 6

    def test_correlated_binary_validates_inputs(self):
        with pytest.raises(DataError):
            correlated_binary_dataset(10, 0)
        with pytest.raises(DataError):
            correlated_binary_dataset(10, 2, correlation=1.5)
        with pytest.raises(DataError):
            correlated_binary_dataset(10, 2, base_rates=[0.5])

    def test_correlated_binary_is_correlated(self):
        dataset = correlated_binary_dataset(
            8000, 2, seed=2, base_rates=[0.5, 0.5], correlation=0.9
        )
        rows = dataset.rows
        correlation = np.corrcoef(rows[:, 0], rows[:, 1])[0, 1]
        assert correlation > 0.2
