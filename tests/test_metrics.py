"""Unit tests for classification metrics (§V-B2 substrate)."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    train_test_split,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 0, 1, 0], [1, 1, 1, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            accuracy_score([1, 0], [1])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            accuracy_score([], [])


class TestConfusionAndF1:
    def test_confusion_counts(self):
        true = [1, 1, 0, 0, 1]
        pred = [1, 0, 1, 0, 1]
        assert confusion_matrix(true, pred) == (2, 1, 1, 1)

    def test_precision_recall(self):
        true = [1, 1, 0, 0]
        pred = [1, 0, 1, 0]
        assert precision_score(true, pred) == pytest.approx(0.5)
        assert recall_score(true, pred) == pytest.approx(0.5)

    def test_f1_harmonic_mean(self):
        true = [1, 1, 1, 0]
        pred = [1, 1, 0, 0]
        precision, recall = 1.0, 2 / 3
        expected = 2 * precision * recall / (precision + recall)
        assert f1_score(true, pred) == pytest.approx(expected)

    def test_f1_zero_when_no_positive_predictions(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_precision_zero_when_no_positive_predictions(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_recall_zero_when_no_positives_exist(self):
        assert recall_score([0, 0], [1, 1]) == 0.0

    def test_custom_positive_class(self):
        true = [2, 2, 0]
        pred = [2, 0, 0]
        assert recall_score(true, pred, positive=2) == pytest.approx(0.5)


class TestTrainTestSplit:
    def test_partition(self):
        train, test = train_test_split(100, test_fraction=0.25, seed=0)
        assert len(train) == 75 and len(test) == 25
        assert set(train).isdisjoint(test)
        assert set(train) | set(test) == set(range(100))

    def test_deterministic(self):
        a = train_test_split(50, seed=3)
        b = train_test_split(50, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_bad_fraction(self):
        with pytest.raises(DataError):
            train_test_split(10, test_fraction=1.5)

    def test_too_few_rows(self):
        with pytest.raises(DataError):
            train_test_split(1)
