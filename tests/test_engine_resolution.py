"""Error-path and option-forwarding tests for engine resolution."""

import numpy as np
import pytest

from repro.core.engine import (
    DenseBoolEngine,
    PackedBitsetEngine,
    ShardedEngine,
    engine_name,
    resolve_engine,
)
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import ReproError


@pytest.fixture
def dataset():
    return random_categorical_dataset(30, (2, 3, 2), seed=3, skew=1.0)


class TestUnknownSpecs:
    def test_unknown_name_lists_available(self, dataset):
        with pytest.raises(ReproError, match="unknown coverage engine"):
            resolve_engine("roaring", dataset)
        with pytest.raises(ReproError, match="sharded"):
            # The error names the available backends.
            resolve_engine("nope", dataset)

    def test_unknown_name_in_engine_name(self):
        with pytest.raises(ReproError, match="unknown coverage engine"):
            engine_name("nope")

    def test_non_engine_class_rejected(self, dataset):
        with pytest.raises(ReproError, match="cannot interpret"):
            resolve_engine(int, dataset)

    def test_non_engine_object_rejected(self, dataset):
        with pytest.raises(ReproError, match="cannot interpret"):
            resolve_engine(42, dataset)

    def test_factory_returning_non_engine_rejected(self, dataset):
        with pytest.raises(ReproError, match="not a CoverageEngine"):
            resolve_engine(lambda ds: "not an engine", dataset)


class TestForeignDataset:
    def test_instance_bound_to_other_dataset_rejected(self, dataset):
        other = random_categorical_dataset(10, (2, 3, 2), seed=9)
        engine = PackedBitsetEngine(other)
        with pytest.raises(ReproError, match="different dataset"):
            resolve_engine(engine, dataset)

    def test_equal_but_distinct_dataset_still_rejected(self, dataset):
        # Identity, not equality: a copy is a different index lifetime.
        clone = Dataset(dataset.schema, dataset.rows.copy())
        engine = DenseBoolEngine(clone)
        with pytest.raises(ReproError, match="different dataset"):
            resolve_engine(engine, dataset)

    def test_same_dataset_instance_passes_through(self, dataset):
        engine = ShardedEngine(dataset, shards=2)
        assert resolve_engine(engine, dataset) is engine

    def test_options_on_instance_rejected(self, dataset):
        engine = PackedBitsetEngine(dataset)
        with pytest.raises(ReproError, match="prebuilt instance"):
            resolve_engine(engine, dataset, mask_cache_size=0)


class TestOptionForwarding:
    def test_options_reach_the_constructor(self, dataset):
        engine = resolve_engine("sharded", dataset, shards=2, workers=None)
        assert isinstance(engine, ShardedEngine)
        assert engine.shard_count == 2
        assert engine.workers is None

    def test_cache_can_be_disabled_by_option(self, dataset):
        engine = resolve_engine("packed", dataset, mask_cache_size=0)
        assert engine.mask_cache_size == 0
        from repro.core.pattern import Pattern

        engine.coverage(Pattern.root(dataset.d))
        engine.coverage(Pattern.root(dataset.d))
        assert engine.cache_info()["hits"] == 0

    def test_factory_spec_resolves(self, dataset):
        template = ShardedEngine(dataset, shards=3).template()
        rebuilt = resolve_engine(template, dataset)
        assert isinstance(rebuilt, ShardedEngine)
        assert rebuilt.requested_shards == 3
        assert engine_name(template) == "sharded"

    def test_deprecation_warning_spells_out_the_equivalent_config(
        self, dataset
    ):
        """The legacy-kwargs shim must name the migration target exactly:
        the EngineConfig(...) call that replaces the deprecated call, not
        just the parameter style."""
        with pytest.warns(DeprecationWarning) as caught:
            resolve_engine("sharded", dataset, shards=2, mask_cache_size=0)
        message = str(caught[0].message)
        assert (
            "repro.core.engine.EngineConfig"
            "(backend='sharded', mask_cache_size=0, shards=2)"
        ) in message
        with pytest.warns(DeprecationWarning) as caught:
            resolve_engine("packed", dataset, mask_cache_size=4)
        assert (
            "EngineConfig(backend='packed', mask_cache_size=4)"
            in str(caught[0].message)
        )


class TestShardClamping:
    def test_more_shards_than_rows_clamps(self, dataset):
        engine = ShardedEngine(dataset, shards=10_000)
        assert engine.requested_shards == 10_000
        # One shard per distinct combination at most — never more than rows.
        assert engine.shard_count == engine.unique_count <= dataset.n
        from repro.core.pattern import Pattern

        assert engine.coverage(Pattern.root(dataset.d)) == dataset.n

    def test_empty_dataset_keeps_one_shard(self):
        empty = Dataset(Schema.binary(3), np.zeros((0, 3), dtype=np.int32))
        engine = ShardedEngine(empty, shards=5)
        assert engine.shard_count == 1
        from repro.core.pattern import Pattern

        assert engine.coverage(Pattern.root(3)) == 0

    def test_invalid_shard_and_worker_counts(self, dataset):
        with pytest.raises(ReproError, match="shard count"):
            ShardedEngine(dataset, shards=0)
        with pytest.raises(ReproError, match="worker count"):
            ShardedEngine(dataset, shards=2, workers=0)


class TestBaseContract:
    def test_generic_match_mask_chain(self, dataset):
        """The base-class restriction chain (what a minimal backend gets)."""
        from repro.core.engine import CoverageEngine
        from repro.core.pattern import Pattern, X

        class MinimalEngine(DenseBoolEngine):
            name = "minimal-test"
            # Fall back to the generic chained-restrict composition.
            _compute_match_mask = CoverageEngine._compute_match_mask

        reference = DenseBoolEngine(dataset)
        minimal = MinimalEngine(dataset)
        for pattern in (Pattern.root(3), Pattern.of(1, X, 1), Pattern.of(0, 2, 0)):
            assert minimal.coverage(pattern) == reference.coverage(pattern)
        assert minimal.total == dataset.n

    def test_engine_name_branches(self, dataset):
        assert engine_name(None) == "dense"
        assert engine_name("sharded") == "sharded"
        assert engine_name(PackedBitsetEngine) == "packed"
        assert engine_name(ShardedEngine(dataset, shards=2)) == "sharded"
        with pytest.raises(ReproError, match="cannot interpret"):
            engine_name(3.14)

    @pytest.mark.parametrize("engine_spec", ["dense", "packed", "sharded"])
    def test_pattern_validation_errors(self, dataset, engine_spec):
        from repro.core.pattern import Pattern, X
        from repro.exceptions import PatternError

        engine = resolve_engine(engine_spec, dataset)
        with pytest.raises(PatternError, match="length"):
            engine.coverage(Pattern.of(X, X))  # wrong arity
        with pytest.raises(PatternError, match="out-of-range"):
            engine.coverage(Pattern.of(9, X, X))  # value beyond cardinality

    @pytest.mark.parametrize("engine_spec", ["dense", "packed", "sharded"])
    def test_empty_dataset_counts(self, engine_spec):
        from repro.core.pattern import Pattern

        empty = Dataset(Schema.binary(2), np.zeros((0, 2), dtype=np.int32))
        engine = resolve_engine(engine_spec, empty)
        root = Pattern.root(2)
        assert engine.coverage(root) == 0
        assert list(engine.coverage_many([root, root])) == [0, 0]
        assert engine.count(engine.match_mask(root)) == 0
        assert list(engine.mask_to_bool(engine.match_mask(root))) == []

    def test_template_preserves_cache_config_for_every_backend(self, dataset):
        """Rebuilding from template() must keep mask_cache_size (and shard
        configuration), not silently reset it to the default."""
        other = random_categorical_dataset(12, (2, 3, 2), seed=44)
        for engine in (
            DenseBoolEngine(dataset, mask_cache_size=0),
            PackedBitsetEngine(dataset, mask_cache_size=7),
            ShardedEngine(dataset, shards=2, workers=2, mask_cache_size=0),
        ):
            rebuilt = resolve_engine(engine.template(), other)
            assert type(rebuilt) is type(engine)
            assert rebuilt.mask_cache_size == engine.mask_cache_size
        rebuilt = resolve_engine(
            ShardedEngine(dataset, shards=2, workers=3).template(), other
        )
        assert rebuilt.requested_shards == 2
        assert rebuilt.workers == 3

    def test_unique_inverse_after_primed_cache(self, dataset):
        """A dataset primed with a precomputed aggregation must still be
        able to derive the row -> unique-index mapping."""
        unique, counts = dataset.unique_rows()
        primed = Dataset(dataset.schema, dataset.rows.copy())
        primed._prime_unique_cache(unique, counts)
        inverse = primed.unique_inverse()
        assert inverse is not None
        assert np.array_equal(unique[inverse], primed.rows)

    def test_greedy_accepts_unnamed_factory_spec(self, dataset):
        from repro.core.enhancement.greedy import greedy_cover
        from repro.core.enhancement.oracle import ValidationOracle
        from repro.core.pattern import Pattern, X
        from repro.core.pattern_graph import PatternSpace

        space = PatternSpace.for_dataset(dataset)
        targets = [Pattern.of(0, X, X), Pattern.of(X, 1, X)]
        named = greedy_cover(targets, space, ValidationOracle([]), engine="packed")
        factory = greedy_cover(
            targets,
            space,
            ValidationOracle([]),
            engine=lambda ds: PackedBitsetEngine(ds),
        )
        assert factory.combinations == named.combinations
