"""Unit tests for the pluggable coverage-engine layer."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.coverage import CoverageOracle
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    CoverageEngine,
    DenseBoolEngine,
    PackedBitsetEngine,
    engine_name,
    resolve_engine,
)
from repro.core.mups.base import find_mups, resolve_threshold
from repro.core.pattern import Pattern
from repro.data.bitset import BitVector
from repro.data.dataset import Dataset, Schema
from repro.exceptions import PatternError, ReproError


@pytest.fixture(params=sorted(ENGINES))
def engine_of(request):
    def build(dataset):
        return ENGINES[request.param](dataset)

    build.name = request.param
    return build


class TestRegistry:
    def test_both_backends_registered(self):
        assert ENGINES["dense"] is DenseBoolEngine
        assert ENGINES["packed"] is PackedBitsetEngine
        assert DEFAULT_ENGINE in ENGINES

    def test_resolve_rejects_unknown(self, example1_dataset):
        with pytest.raises(ReproError):
            resolve_engine("sparse", example1_dataset)
        with pytest.raises(ReproError):
            resolve_engine(42, example1_dataset)

    def test_resolve_rejects_foreign_dataset_instance(self, example1_dataset):
        other = Dataset.from_strings(["11", "01"])
        engine = PackedBitsetEngine(other)
        with pytest.raises(ReproError):
            resolve_engine(engine, example1_dataset)
        with pytest.raises(ReproError):
            CoverageOracle(example1_dataset, engine=engine)

    def test_engine_name_normalizes_specs(self):
        assert engine_name(None) == DEFAULT_ENGINE
        assert engine_name("packed") == "packed"
        assert engine_name(PackedBitsetEngine) == "packed"
        with pytest.raises(ReproError):
            engine_name("sparse")

    def test_oracle_exposes_engine(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset, engine="packed")
        assert isinstance(oracle.engine, PackedBitsetEngine)
        assert isinstance(
            CoverageOracle(example1_dataset).engine, ENGINES[DEFAULT_ENGINE]
        )


class TestEngineContract:
    def test_example1_coverage(self, example1_dataset, engine_of):
        engine = engine_of(example1_dataset)
        assert engine.coverage(Pattern.from_string("XXX")) == 5
        assert engine.coverage(Pattern.from_string("0XX")) == 5
        assert engine.coverage(Pattern.from_string("1XX")) == 0
        assert engine.coverage(Pattern.from_string("0X1")) == 3

    def test_pattern_validation(self, example1_dataset, engine_of):
        engine = engine_of(example1_dataset)
        with pytest.raises(PatternError):
            engine.coverage(Pattern.from_string("XX"))
        with pytest.raises(PatternError):
            engine.coverage(Pattern.of(5, "X", "X"))

    def test_coverage_many_empty(self, example1_dataset, engine_of):
        engine = engine_of(example1_dataset)
        assert engine.coverage_many([]).shape == (0,)
        assert engine.count_many([]).shape == (0,)

    def test_empty_dataset(self, engine_of):
        dataset = Dataset(Schema.binary(2), np.zeros((0, 2), dtype=np.int32))
        engine = engine_of(dataset)
        assert engine.coverage(Pattern.root(2)) == 0
        assert list(engine.coverage_many([Pattern.root(2)])) == [0]
        assert engine.count(engine.full_mask()) == 0

    def test_duplicate_multiplicities_counted(self, engine_of):
        dataset = Dataset.from_strings(["00", "00", "00", "01"])
        engine = engine_of(dataset)
        assert engine.unique_count == 2
        assert engine.coverage(Pattern.from_string("0X")) == 4
        assert engine.coverage(Pattern.from_string("00")) == 3

    def test_restrict_children_matches_restrict(self, example1_dataset, engine_of):
        engine = engine_of(example1_dataset)
        mask = engine.full_mask()
        family = engine.restrict_children(mask, 1)
        assert len(family) == 2
        for value, child in enumerate(family):
            expected = engine.mask_to_bool(engine.restrict(mask, 1, value))
            assert np.array_equal(engine.mask_to_bool(child), expected)


class TestPackedSpecifics:
    def test_masks_are_bitvectors(self, example1_dataset):
        engine = PackedBitsetEngine(example1_dataset)
        assert isinstance(engine.full_mask(), BitVector)
        assert isinstance(engine.match_mask(Pattern.from_string("0XX")), BitVector)

    def test_index_is_packed_smaller(self):
        rng = np.random.default_rng(0)
        dataset = Dataset.from_rows(rng.integers(0, 5, size=(2000, 4)).tolist())
        assert Dataset.unique_rows(dataset)[0].shape[0] > 64
        dense = DenseBoolEngine(dataset)
        packed = PackedBitsetEngine(dataset)
        assert packed.index_nbytes < dense.index_nbytes

    def test_weighted_and_uniform_paths_agree(self):
        # Duplicate rows exercise the weighted-count path; the dense engine
        # is the reference.
        rows = [[0, 1], [0, 1], [1, 0], [1, 1], [0, 0], [0, 0], [0, 0]]
        dataset = Dataset.from_rows(rows)
        dense = DenseBoolEngine(dataset)
        packed = PackedBitsetEngine(dataset)
        patterns = [
            Pattern.of(a, b)
            for a in ("X", 0, 1)
            for b in ("X", 0, 1)
        ]
        assert list(dense.coverage_many(patterns)) == list(
            packed.coverage_many(patterns)
        )


class TestFacadeSelection:
    def test_find_mups_engine_kwarg(self, example1_dataset):
        for algorithm in sorted(
            ("naive", "apriori", "pattern_breaker", "pattern_combiner", "deepdiver")
        ):
            dense = find_mups(
                example1_dataset, threshold=1, algorithm=algorithm, engine="dense"
            )
            packed = find_mups(
                example1_dataset, threshold=1, algorithm=algorithm, engine="packed"
            )
            assert dense.as_set() == packed.as_set() == {Pattern.from_string("1XX")}

    def test_find_mups_rejects_unknown_engine(self, example1_dataset):
        with pytest.raises(ReproError):
            find_mups(
                example1_dataset, threshold=1, algorithm="deepdiver", engine="sparse"
            )

    def test_resolve_threshold_needs_no_index(self, example1_dataset):
        assert resolve_threshold(example1_dataset, threshold_rate=0.5) == 3
        assert resolve_threshold(example1_dataset, threshold_rate=0.0) == 1
        with pytest.raises(ValueError):
            resolve_threshold(example1_dataset, threshold_rate=-0.1)

    def test_mup_result_membership_cached(self, example1_dataset):
        result = find_mups(example1_dataset, threshold=1)
        assert Pattern.from_string("1XX") in result
        assert Pattern.from_string("0XX") not in result
        assert result.as_set() is result.as_set()


class TestCliEngineFlag:
    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n" + "\n".join(["0,1,0", "0,0,1", "0,0,0", "0,1,1"]))
        return str(path)

    def test_identify_runs_on_both_engines(self, csv_file, capsys):
        outputs = []
        for engine in ("dense", "packed"):
            assert (
                main(["identify", csv_file, "--threshold", "1", "--engine", engine])
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "1XX" in outputs[0]

    def test_unknown_engine_rejected(self, csv_file):
        with pytest.raises(SystemExit):
            main(["identify", csv_file, "--threshold", "1", "--engine", "sparse"])

    def test_help_documents_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["identify", "--help"])
        help_text = capsys.readouterr().out
        assert "--engine" in help_text
        assert "packed" in help_text


class TestMaskCacheConcurrency:
    """Regression: the hot-mask LRU under concurrent ``match_mask`` calls.

    Before the cache took a lock, two threads missing on the same pattern
    could both insert the mask (double-counting its bytes) while evictions
    subtracted sizes that were never added — ``cache_info()["nbytes"]``
    went negative and the counters drifted from the call count.
    """

    def test_threaded_match_mask_keeps_accounting_consistent(self):
        import random
        import threading

        from repro.data.synthetic import random_categorical_dataset

        dataset = random_categorical_dataset(300, (3, 3, 2, 2), seed=5, skew=0.8)
        engine = PackedBitsetEngine(dataset, mask_cache_size=4)
        pool = [Pattern.of(*row) for row in {tuple(r) for r in dataset.rows}]
        pool = sorted(pool, key=lambda p: p.values)[:12]
        truth = {
            p.values: sum(1 for row in dataset.rows if p.matches(row))
            for p in pool
        }

        n_threads, iterations = 8, 30
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(iterations):
                pattern = rng.choice(pool)
                count = engine.coverage(pattern)
                if count != truth[pattern.values]:
                    errors.append(("count", pattern, count))
                info = engine.cache_info()
                if info["nbytes"] < 0:
                    errors.append(("negative nbytes", dict(info)))

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not errors, errors[:3]
            info = engine.cache_info()
            # Every coverage call is exactly one hit or one miss.
            assert info["hits"] + info["misses"] == n_threads * iterations
            assert info["entries"] <= 4
            assert info["nbytes"] >= 0
            assert 0.0 <= info["hit_rate"] <= 1.0
        finally:
            engine.close()
