"""Unit tests for the coverage oracle (Definition 2, Appendix A)."""

import numpy as np
import pytest

from repro.core.coverage import CoverageOracle, coverage_scan, max_covered_level
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset, Schema
from repro.exceptions import PatternError


class TestCoverageOracle:
    def test_appendix_a_example(self, example1_dataset):
        # Appendix A computes cov(0X1) = 3 on Example 1's data.
        oracle = CoverageOracle(example1_dataset)
        assert oracle.coverage(Pattern.from_string("0X1")) == 3

    def test_root_coverage_is_n(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.coverage(Pattern.root(3)) == example1_dataset.n == 5

    def test_example1_uncovered_region(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.coverage(Pattern.from_string("1XX")) == 0

    def test_leaf_coverage_counts_duplicates(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        # 001 appears twice (t2 and t5).
        assert oracle.coverage(Pattern.from_string("001")) == 2

    def test_is_covered(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.is_covered(Pattern.from_string("0X1"), threshold=3)
        assert not oracle.is_covered(Pattern.from_string("0X1"), threshold=4)

    def test_unique_count(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.unique_count == 4  # 010, 001, 000, 011

    def test_matches_scan_on_random_data(self, random_dataset_factory):
        dataset = random_dataset_factory(3, n=60, cardinalities=(2, 3, 4))
        oracle = CoverageOracle(dataset)
        from repro.core.pattern_graph import PatternSpace

        space = PatternSpace.for_dataset(dataset)
        for pattern in space.all_patterns():
            assert oracle.coverage(pattern) == coverage_scan(dataset, pattern)

    def test_rejects_wrong_length_pattern(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        with pytest.raises(PatternError):
            oracle.coverage(Pattern.from_string("1X"))

    def test_rejects_out_of_range_value(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        with pytest.raises(PatternError):
            oracle.coverage(Pattern.from_string("5XX"))

    def test_evaluation_counter(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.evaluations == 0
        oracle.coverage(Pattern.root(3))
        oracle.coverage(Pattern.from_string("0X1"))
        assert oracle.evaluations == 2

    def test_empty_dataset(self):
        dataset = Dataset(Schema.binary(2), np.zeros((0, 2), dtype=np.int32))
        oracle = CoverageOracle(dataset)
        assert oracle.coverage(Pattern.root(2)) == 0
        assert oracle.coverage(Pattern.from_string("11")) == 0


class TestMaskPlumbing:
    def test_restrict_mask_matches_direct(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        mask = oracle.full_mask()
        mask = oracle.restrict_mask(mask, 0, 0)
        mask = oracle.restrict_mask(mask, 2, 1)
        assert oracle.coverage_of_mask(mask) == oracle.coverage(
            Pattern.from_string("0X1")
        )

    def test_match_mask_selects_unique_rows(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        rows = oracle.matching_rows(Pattern.from_string("0X1"))
        assert sorted(map(tuple, rows)) == [(0, 0, 1), (0, 1, 1)]

    def test_value_mask_is_index_column(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        mask = oracle.value_mask(0, 1)
        assert mask.sum() == 0  # no unique row has A1 = 1


class TestThresholdFromRate:
    def test_rate_to_count(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.threshold_from_rate(0.2) == 1
        assert oracle.threshold_from_rate(0.5) == 3  # ceil(2.5)

    def test_zero_rate_floors_at_one(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        assert oracle.threshold_from_rate(0.0) == 1

    def test_negative_rate_rejected(self, example1_dataset):
        oracle = CoverageOracle(example1_dataset)
        with pytest.raises(ValueError):
            oracle.threshold_from_rate(-0.1)


class TestMaxCoveredLevel:
    def test_min_mup_level_minus_one(self):
        mups = [Pattern.from_string("11X"), Pattern.from_string("X10")]
        assert max_covered_level(mups) == 1

    def test_no_mups_means_fully_covered(self):
        assert max_covered_level([], d=4) == 4

    def test_no_mups_without_d_raises(self):
        with pytest.raises(ValueError):
            max_covered_level([])

    def test_root_mup_gives_minus_one(self):
        assert max_covered_level([Pattern.root(3)]) == -1


class TestCoverageScan:
    def test_scan_example1(self, example1_dataset):
        assert coverage_scan(example1_dataset, Pattern.from_string("0X1")) == 3
        assert coverage_scan(example1_dataset, Pattern.root(3)) == 5

    def test_scan_rejects_wrong_length(self, example1_dataset):
        with pytest.raises(PatternError):
            coverage_scan(example1_dataset, Pattern.from_string("0X"))
