"""Unit tests for MUP expansion to level-λ targets (Appendix C)."""

import pytest

from repro.core.coverage import CoverageOracle
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.mups import deepdiver
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.data.synthetic import random_categorical_dataset
from repro.exceptions import EnhancementError


class TestExample2:
    def test_level2_targets_expand_shallow_mups(self, example2_space, example2_mups):
        # λ = 2: the MUPs of level <= 2 are P1 (XX01X), P3 (XXXX1), and
        # P4 (02XXX) and P5 (XX11X); P3 sits at level 1 and must be expanded
        # into its level-2 descendants (Appendix C).  (The paper's running
        # text calls the target set "P1 to P6", but P2 and P6 are level-3
        # patterns — the precise semantics is Appendix C's.)
        targets = set(uncovered_at_level(example2_mups, example2_space, 2))
        expected = set()
        for mup in example2_mups:
            if mup.level <= 2:
                expected |= set(example2_space.descendants_at_level(mup, 2))
        assert targets == expected
        assert Pattern.from_string("XX01X") in targets
        assert Pattern.from_string("02XXX") in targets
        assert Pattern.from_string("XX11X") in targets
        assert Pattern.from_string("0XXX1") in targets  # expanded from P3
        assert Pattern.from_string("1X20X") not in targets  # P2 is level 3

    def test_deeper_mup_ignored(self, example2_space, example2_mups):
        # P7 = X020X (level 3) contributes nothing at λ = 2.
        p7 = example2_mups[6]
        targets = uncovered_at_level([p7], example2_space, 2)
        assert targets == []

    def test_covering_mups_only_is_insufficient(self, example2_space, example2_mups):
        # Appendix C's counterexample: 1X11X (level 3) is uncovered (child
        # of P5 = XX11X) yet matched by none of the paper's three
        # combinations — hence λ = 3 requires expansion, not just MUPs.
        paper_combos = [(0, 2, 0, 1, 1), (0, 2, 1, 1, 1), (1, 0, 2, 0, 1)]
        problem_pattern = Pattern.from_string("1X11X")
        assert any(problem_pattern.covers(Pattern(c)) is False for c in paper_combos)
        assert all(not problem_pattern.matches(c) for c in paper_combos)
        targets = uncovered_at_level(example2_mups, example2_space, 3)
        assert problem_pattern in targets


class TestSemantics:
    def test_targets_are_exactly_uncovered_patterns_at_level(self):
        dataset = random_categorical_dataset(40, (2, 3, 2), seed=8, skew=0.9)
        tau = 4
        oracle = CoverageOracle(dataset)
        space = PatternSpace.for_dataset(dataset)
        mups = deepdiver(dataset, tau).mups
        for level in range(space.d + 1):
            targets = set(uncovered_at_level(mups, space, level))
            brute = {
                p
                for p in space.all_patterns()
                if p.level == level and oracle.coverage(p) < tau
            }
            # Patterns only below deeper MUPs are covered at this level, so
            # the brute-force set must match exactly.
            assert targets == brute

    def test_mup_at_level_is_its_own_target(self, example2_space):
        mup = Pattern.from_string("XX01X")
        targets = uncovered_at_level([mup], example2_space, 2)
        assert targets == [mup]

    def test_deduplication_across_mups(self, example2_space):
        # Two MUPs sharing descendants must not duplicate targets.
        mups = [Pattern.from_string("0XXXX"), Pattern.from_string("X0XXX")]
        targets = uncovered_at_level(mups, example2_space, 2)
        assert len(targets) == len(set(targets))
        assert Pattern.from_string("00XXX") in targets

    def test_level_out_of_range(self, example2_space):
        with pytest.raises(EnhancementError):
            uncovered_at_level([], example2_space, 9)

    def test_limit_guard(self, example2_space, example2_mups):
        with pytest.raises(EnhancementError):
            uncovered_at_level(example2_mups, example2_space, 4, limit=10)

    def test_empty_mups_empty_targets(self, example2_space):
        assert uncovered_at_level([], example2_space, 3) == []
