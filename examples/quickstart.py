"""Quickstart: assess and remedy coverage for a small categorical dataset.

Run with::

    python examples/quickstart.py

Walks the full paper pipeline on a toy HR dataset: encode the data, find
the maximal uncovered patterns (MUPs), print the nutritional-label coverage
widget, and plan the cheapest data acquisition that guarantees coverage at
level 2.
"""

from repro import (
    CoverageOracle,
    Dataset,
    PatternSpace,
    Schema,
    enhance_coverage,
    find_mups,
    mup_report,
)
from repro.analysis import coverage_label
from repro.data.synthetic import random_categorical_dataset


def main() -> None:
    # A skewed dataset over three categorical attributes: gender (2),
    # seniority (3), and department (4).
    schema = Schema.of(
        ["gender", "seniority", "department"],
        [2, 3, 4],
        [
            ["male", "female"],
            ["junior", "mid", "senior"],
            ["eng", "sales", "hr", "legal"],
        ],
    )
    base = random_categorical_dataset(
        400, schema.cardinalities, seed=3, skew=1.2, names=schema.names
    )
    dataset = Dataset(schema, base.rows)

    print(dataset.describe())
    print()

    # 1. Identify the maximal uncovered patterns at threshold τ = 12.
    tau = 12
    result = find_mups(dataset, threshold=tau, algorithm="deepdiver")
    print(mup_report(dataset, result))
    print()

    # 2. The nutritional-label widget (what a dataset search engine would
    #    show next to this dataset).
    print(coverage_label(dataset, threshold=tau, result=result).render())
    print()

    # 3. Remedy: the smallest set of value combinations to collect so that
    #    every pattern of up to 2 attributes is covered.
    plan, enhanced = enhance_coverage(dataset, result.mups, level=2, threshold=tau)
    print(plan.describe(schema))
    print()

    after = find_mups(enhanced, threshold=tau)
    print(
        f"max covered level: {result.max_covered_level(dataset.d)} -> "
        f"{after.max_covered_level(dataset.d)} "
        f"(dataset grew from {dataset.n} to {enhanced.n} rows)"
    )

    # Sanity: the oracle confirms each planned combination now clears τ.
    oracle = CoverageOracle(enhanced)
    space = PatternSpace.for_dataset(enhanced)
    for combo in plan.combinations:
        from repro import Pattern

        assert oracle.coverage(Pattern(combo)) >= tau


if __name__ == "__main__":
    main()
