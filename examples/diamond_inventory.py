"""Inventory-gap analysis on a high-cardinality catalog (BlueNile, §V-A).

Run with::

    python examples/diamond_inventory.py

A retailer wants every plausible (shape, cut, color, ...) combination of up
to two attributes represented in the catalog.  High attribute cardinalities
(10 shapes x 8 clarities x ...) make the pattern graph wide, which is the
regime where DEEPDIVER shines and the bottom-up algorithm struggles — and
where the value-count variant of enhancement (Definition 7) is the natural
formulation: cover every uncovered pattern that represents at least ``v``
distinct stone configurations.
"""

import time

from repro import find_mups
from repro.core.enhancement import greedy_cover, targets_by_value_count
from repro.core.pattern_graph import PatternSpace
from repro.data.bluenile import load_bluenile


def main() -> None:
    catalog = load_bluenile(n=50_000)
    print(catalog.describe())
    print()

    tau = 25
    for algorithm in ("deepdiver", "pattern_breaker", "pattern_combiner"):
        start = time.perf_counter()
        result = find_mups(catalog, threshold=tau, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        print(f"{algorithm:18s}: {len(result):6d} MUPs in {elapsed:6.2f}s")
    print()

    result = find_mups(catalog, threshold=tau, algorithm="deepdiver")
    shallow = [p for p in result if p.level <= 2]
    print(f"{len(shallow)} MUPs involve at most two attributes; examples:")
    for pattern in sorted(shallow, key=lambda p: p.level)[:8]:
        print(f"  {pattern}  ->  {pattern.describe(catalog.schema)}")
    print()

    # Value-count enhancement: cover every uncovered pattern standing for at
    # least 2000 distinct stone configurations.
    space = PatternSpace.for_dataset(catalog)
    targets = targets_by_value_count(result.mups, space, min_value_count=2_000)
    plan = greedy_cover(targets, space)
    print(
        f"To cover all {len(targets)} uncovered patterns with value count "
        f">= 2000, source {len(plan.combinations)} stone type(s):"
    )
    print(plan.describe(catalog.schema))


if __name__ == "__main__":
    main()
