"""Nutritional-label coverage widget for a large listings dataset (§I, §V).

Run with::

    python examples/airbnb_nutrition_label.py

Generates an AirBnB-like dataset (60K listings, 13 boolean amenities),
prints the coverage widget at several thresholds, and reproduces the
bell-shaped MUP level distribution of Figure 6 on the n=1000, τ=50 setting.
"""

from repro import find_mups
from repro.analysis import coverage_label
from repro.data.airbnb import load_airbnb


def main() -> None:
    dataset = load_airbnb(n=60_000, d=13)

    print("Coverage widget at increasing thresholds:")
    for rate in (0.0001, 0.001, 0.01):
        result = find_mups(dataset, threshold_rate=rate, algorithm="deepdiver")
        threshold = result.threshold
        label = coverage_label(dataset, threshold=threshold, result=result)
        print()
        print(f"--- τ = {threshold} ({rate:.4%} of n) ---")
        print(label.render())

    # Figure 6's setting: 1000 listings, 13 attributes, τ = 50.
    small = load_airbnb(n=1_000, d=13)
    result = find_mups(small, threshold=50, algorithm="deepdiver")
    print()
    print("Figure 6 — MUP level distribution (n=1000, d=13, τ=50):")
    histogram = result.level_histogram()
    peak = max(histogram.values())
    for level in range(14):
        count = histogram.get(level, 0)
        bar = "#" * max(1, round(40 * count / peak)) if count else ""
        print(f"  level {level:2d}  {count:6d}  {bar}")
    print(
        "\nThe distribution is bell-shaped: covering every MUP is hopeless, "
        "but only a handful of (dangerous) MUPs live at levels 1-2 — "
        "exactly the ones coverage enhancement targets."
    )


if __name__ == "__main__":
    main()
