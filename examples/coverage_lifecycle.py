"""Operating coverage over a dataset's lifetime (library extensions).

Run with::

    python examples/coverage_lifecycle.py

A dataset is a living thing: deliveries arrive, stale rows get purged,
subsets get shared.  This walk-through chains the library's maintenance
tools around the paper's core:

1. assess once, persist the MUP set for review (`repro.io`);
2. keep the MUP set current across deliveries without re-running
   identification (`IncrementalMupIndex`);
3. compare assessments before/after an acquisition (`coverage_diff`);
4. share a smaller dataset that provably preserves the coverage profile
   (`coverage_preserving_sample`);
5. assess at a coarser granularity via attribute hierarchies and drill
   into the gaps (`repro.data.hierarchy`).
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IncrementalMupIndex, find_mups
from repro.analysis import coverage_diff
from repro.data import (
    AttributeHierarchy,
    coverage_preserving_sample,
    drill_down,
    rollup,
)
from repro.data.bluenile import load_bluenile
from repro.io import load_mup_result, save_mup_result


def main() -> None:
    catalog = load_bluenile(n=20_000)
    tau = 15

    # --- 1. Assess and persist -----------------------------------------
    initial = find_mups(catalog, threshold=tau)
    with tempfile.TemporaryDirectory() as tmp:
        artefact = Path(tmp) / "mups.json"
        save_mup_result(initial, artefact)
        reviewed = load_mup_result(artefact)
    print(f"initial assessment: {len(reviewed)} MUPs at τ={tau}")

    # --- 2. Incremental maintenance ------------------------------------
    index = IncrementalMupIndex(catalog, threshold=tau)
    rng = np.random.default_rng(3)
    delivery = [
        tuple(int(rng.integers(0, c)) for c in catalog.cardinalities)
        for _ in range(25)
    ]
    resolved = index.add_rows(delivery)
    print(
        f"after a 25-stone delivery: {len(resolved)} MUP(s) resolved, "
        f"{len(index.mups())} remain (no full re-run needed)"
    )

    # --- 3. Diff two assessments ---------------------------------------
    after = find_mups(index.dataset, threshold=tau)
    diff = coverage_diff(initial, after, catalog.d)
    print(
        f"diff vs initial: resolved={len(diff.resolved)} "
        f"persisting={len(diff.persisting)} refined={len(diff.refined)} "
        f"regressed={len(diff.regressed)}"
    )

    # --- 4. Share a smaller, coverage-equivalent sample ----------------
    sample = coverage_preserving_sample(catalog, threshold=tau, seed=1)
    sample_mups = find_mups(sample, threshold=tau)
    assert sample_mups.as_set() == initial.as_set()
    print(
        f"coverage-preserving sample: {sample.n} of {catalog.n} rows "
        f"({sample.n / catalog.n:.0%}) with an *identical* MUP set"
    )

    # --- 5. Coarse assessment via hierarchies ---------------------------
    shape_hierarchy = AttributeHierarchy.from_label_map(
        catalog.schema,
        "shape",
        {
            "round": "classic", "princess": "classic", "cushion": "classic",
            "oval": "elongated", "emerald": "elongated", "pear": "elongated",
            "marquise": "elongated", "asscher": "fancy", "radiant": "fancy",
            "heart": "fancy",
        },
    )
    roll = rollup(catalog, [shape_hierarchy])
    coarse = find_mups(roll.dataset, threshold=tau)
    print(f"rolled-up assessment (3 shape families): {len(coarse)} MUPs")
    shallow = [p for p in coarse if p.level <= 2][:3]
    for mup in shallow:
        fine = drill_down(mup, roll)
        print(
            f"  coarse gap {mup.describe(roll.dataset.schema)} covers "
            f"{len(fine)} fine pattern(s) to investigate"
        )


if __name__ == "__main__":
    main()
