"""The paper's COMPAS case study (§V-B), end to end.

Run with::

    python examples/compas_audit.py

1. Find the MUPs of the COMPAS-like dataset over (sex, age, race,
   marital status) at τ = 10 and surface the widowed-Hispanic gap (XX23).
2. Train a decision tree to predict recidivism; show that overall accuracy
   looks fine while the Hispanic-female subgroup is mispredicted, and that
   remedying coverage fixes the subgroup without hurting overall accuracy
   (Figure 11).
3. Plan the data acquisition with a human-configured validation oracle
   (§V-B3): no "unknown" marital status, no married/widowed/... under-20s.
"""

import numpy as np

from repro import ValidationOracle, find_mups, mup_report
from repro.core.enhancement import greedy_cover, uncovered_at_level
from repro.core.pattern_graph import PatternSpace
from repro.data.compas import load_compas
from repro.ml import cross_validate, subgroup_coverage_experiment
from repro.ml.model_eval import removed_subgroup_accuracy


def main() -> None:
    dataset = load_compas()
    print(dataset.describe())
    print()

    # --- 1. Coverage assessment (§V-B1) --------------------------------
    result = find_mups(dataset, threshold=10, algorithm="deepdiver")
    histogram = result.level_histogram()
    print(
        f"{len(result)} MUPs at τ=10 "
        + ", ".join(f"{count} at level {level}" for level, count in histogram.items())
    )
    print(mup_report(dataset, result, limit=10))
    widowed_hispanic = [p for p in result if str(p) == "XX23"]
    if widowed_hispanic:
        print(
            "\nNote the MUP XX23: "
            f"{widowed_hispanic[0].describe(dataset.schema)} — the paper's "
            "headline example of a minority subgroup the data cannot support."
        )
    print()

    # --- 2. Effect on a trained classifier (§V-B2, Figure 11) ----------
    accuracy, f1 = cross_validate(dataset.rows, dataset.label("reoffended"))
    print(f"cross-validated accuracy={accuracy:.2f}, f1={f1:.2f} — looks fine!")
    rows = dataset.rows
    hf_mask = (rows[:, 0] == 1) & (rows[:, 2] == 2)
    print("\nHispanic women (HF) tell a different story:")
    print("HF in training | HF accuracy | HF f1 | overall accuracy")
    for row in subgroup_coverage_experiment(dataset, "reoffended", hf_mask):
        print(
            f"{row.subgroup_in_training:14d} | {row.subgroup_accuracy:11.2f} | "
            f"{row.subgroup_f1:5.2f} | {row.overall_accuracy:.2f}"
        )
    fo_mask = (rows[:, 0] == 1) & (rows[:, 2] == 3)
    mo_mask = (rows[:, 0] == 0) & (rows[:, 2] == 3)
    print(
        "\nExcluded-subgroup accuracy: "
        f"female/other={removed_subgroup_accuracy(dataset, 'reoffended', fo_mask):.2f}, "
        f"male/other={removed_subgroup_accuracy(dataset, 'reoffended', mo_mask):.2f} "
        "(the paper: 0.39 vs 0.59 — men of other races resemble the "
        "majority more than women do)"
    )
    print()

    # --- 3. Coverage enhancement with a validation oracle (§V-B3) ------
    oracle = ValidationOracle.from_named_rules(
        dataset.schema,
        [
            {"marital_status": ["unknown"]},
            {
                "age": ["<20"],
                "marital_status": [
                    "married",
                    "separated",
                    "widowed",
                    "significant-other",
                    "divorced",
                ],
            },
        ],
    )
    space = PatternSpace.for_dataset(dataset)
    targets = uncovered_at_level(result.mups, space, 2)
    plan = greedy_cover(targets, space, oracle)
    print(plan.describe(dataset.schema))
    if plan.unhittable:
        print(
            "\nThe unhittable targets all require semantically invalid "
            "combinations; the domain expert marks those MUPs immaterial."
        )


if __name__ == "__main__":
    main()
