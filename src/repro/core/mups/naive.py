"""Naive MUP enumeration (§III-A).

One counter per pattern: enumerate all ``Π (c_i + 1)`` patterns, mark the
uncovered ones, then keep those with no uncovered parent.  Exponential in
``d`` by construction; it exists as the ground-truth reference for tests and
as the baseline the paper reports timing out in §V-C.  Coverage is still
evaluated for every pattern, but in batched slabs through the engine's
``coverage_many`` so the Python-loop overhead stays off the hot path.
"""

from __future__ import annotations

from itertools import islice
from typing import Optional

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset
from repro.exceptions import ReproError

#: Refuse to enumerate pattern spaces beyond this size: the naive algorithm
#: is quadratic in the number of uncovered patterns and exists for testing.
_MAX_PATTERNS = 5_000_000

#: Patterns per batched coverage_many call.
_BATCH = 2048


@register_algorithm("naive", query_shape="batch")
def naive_mups(
    dataset: Dataset,
    threshold: int,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
) -> MupResult:
    """Enumerate every pattern and filter to the maximal uncovered ones.

    Args:
        dataset: dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        max_level: optionally ignore MUPs deeper than this level.
        oracle: reuse a prebuilt coverage oracle.
        engine: coverage-engine spec (name, ``"auto"``, EngineConfig,
            class, or instance) when no oracle is given.
    """
    space = PatternSpace.for_dataset(dataset)
    if space.node_count() > _MAX_PATTERNS:
        raise ReproError(
            f"naive enumeration over {space.node_count()} patterns refused; "
            f"use pattern_breaker / pattern_combiner / deepdiver"
        )
    oracle = oracle or CoverageOracle(dataset, engine=engine)
    stats = SearchStats()
    watch = Stopwatch()

    uncovered = set()
    patterns = space.all_patterns()
    while True:
        batch = list(islice(patterns, _BATCH))
        if not batch:
            break
        stats.nodes_generated += len(batch)
        stats.coverage_evaluations += len(batch)
        for pattern, count in zip(batch, oracle.coverage_many(batch)):
            if count < threshold:
                uncovered.add(pattern)

    mups = []
    for pattern in uncovered:
        if max_level is not None and pattern.level > max_level:
            continue
        # A parent of an uncovered pattern is uncovered iff it is in the
        # uncovered set, because the set is exhaustive.
        if not any(parent in uncovered for parent in pattern.parents()):
            mups.append(pattern)

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mups), threshold, stats, max_level)
