"""PATTERN-COMBINER: the bottom-up algorithm (§III-D, Algorithm 2).

One pass over the data yields exact counts for every level-``d`` value
combination; the traversal then repeatedly *combines* uncovered nodes upward
via Rule 2 (each parent generated exactly once — Theorem 4).  A parent's
coverage is the sum over a disjoint child family obtained by specializing
its right-most ``X``; any covered child in the family contributes ≥ τ, so
the parent is covered and the branch is pruned.  MUPs at level ``ℓ`` are the
uncovered nodes none of whose parents at ``ℓ - 1`` is uncovered.

The initial level-``d`` sweep enumerates all ``Π c_i`` combinations, which
is the intrinsic cost of the bottom-up strategy — exactly why Figure 13
shows it losing on the high-cardinality BlueNile data.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset
from repro.exceptions import ReproError

#: Refuse combination spaces whose bottom level alone would not fit in RAM.
_MAX_COMBINATIONS = 20_000_000


@register_algorithm("pattern_combiner", query_shape="batch")
def pattern_combiner(
    dataset: Dataset,
    threshold: int,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
) -> MupResult:
    """Run PATTERN-COMBINER.

    Args:
        dataset: dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        oracle: accepted for interface parity; the bottom-up algorithm only
            needs the aggregated unique rows, not per-pattern queries.
        engine: accepted for interface parity, like ``oracle`` (any
            :class:`~repro.core.engine.EngineSpec`, including an
            ``EngineConfig`` or ``"auto"``).
    """
    space = PatternSpace.for_dataset(dataset)
    if space.combination_count() > _MAX_COMBINATIONS:
        raise ReproError(
            f"bottom level has {space.combination_count()} combinations; "
            f"use pattern_breaker or deepdiver for this schema"
        )
    stats = SearchStats()
    watch = Stopwatch()

    # Exact counts of the combinations present in the data (one data pass).
    unique, counts = dataset.unique_rows()
    present: Dict[Pattern, int] = {}
    for row, count in zip(unique, counts):
        present[Pattern(row)] = int(count)

    # Level-d seed: every value combination below the threshold.
    count_map: Dict[Pattern, int] = {}
    for combo in space.all_combinations():
        stats.nodes_generated += 1
        pattern = Pattern(combo)
        count = present.get(pattern, 0)
        stats.coverage_evaluations += 1
        if count < threshold:
            count_map[pattern] = count

    mups = []
    if not count_map:
        stats.seconds = watch.elapsed()
        return MupResult((), threshold, stats)

    for _level in range(space.d, -1, -1):
        next_count: Dict[Pattern, int] = {}
        for pattern in count_map:
            # Rule 2: this node generates exactly the parents whose
            # Rule-2 generator child it is, so no parent is built twice.
            for parent in space.rule2_parents(pattern):
                stats.nodes_generated += 1
                pivot = parent.rightmost_nondeterministic()
                total = 0
                covered = False
                for sibling in space.sibling_family(parent, pivot):
                    child_count = count_map.get(sibling)
                    if child_count is None:
                        # Covered child => contributes >= τ => parent covered.
                        covered = True
                        break
                    total += child_count
                stats.coverage_evaluations += 1
                if not covered and total < threshold:
                    next_count[parent] = total
                else:
                    stats.pruned += 1
        for pattern in count_map:
            if all(parent not in next_count for parent in pattern.parents()):
                mups.append(pattern)
        if not next_count:
            break
        count_map = next_count

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mups), threshold, stats)
