"""PATTERN-BREAKER: the top-down BFS algorithm (§III-C, Algorithm 1).

Starts at the all-``X`` root and moves level by level, breaking covered
patterns into more specific candidates via Rule 1 (each node is generated
exactly once — Theorem 3).  A candidate is pruned without evaluation when
any of its parents was uncovered or itself pruned; an evaluated candidate
with ``cov < τ`` is a MUP (all its parents are covered by construction).

Coverage is evaluated incrementally: each frontier node carries its match
mask over the unique value combinations, so a child's coverage costs one
vectorized AND with the inverted index (Appendix A).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset


@register_algorithm("pattern_breaker")
def pattern_breaker(
    dataset: Dataset,
    threshold: int,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    use_masks: bool = True,
) -> MupResult:
    """Run PATTERN-BREAKER.

    Args:
        dataset: dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        max_level: stop after this level; returns all MUPs with
            ``ℓ(P) <= max_level``.
        oracle: reuse a prebuilt coverage oracle.
        use_masks: thread parent match-masks down the tree (Appendix A
            optimization); disable only for the ablation benchmark.
    """
    space = PatternSpace.for_dataset(dataset)
    oracle = oracle or CoverageOracle(dataset)
    stats = SearchStats()
    watch = Stopwatch()
    depth = space.d if max_level is None else min(max_level, space.d)

    root = space.root()
    mups = []
    # Frontier entries: pattern -> match mask (or None when masks are off).
    frontier: Dict[Pattern, Optional[np.ndarray]] = {
        root: oracle.full_mask() if use_masks else None
    }
    covered_prev: set = set()

    for level in range(0, depth + 1):
        if not frontier:
            break
        covered_here: set = set()
        next_frontier: Dict[Pattern, Optional[np.ndarray]] = {}
        for pattern, mask in frontier.items():
            stats.nodes_generated += 1
            if level > 0:
                # Prune when any parent is missing from the covered frontier
                # of the previous level (it was uncovered or pruned).
                pruned = False
                for parent in pattern.parents():
                    if parent not in covered_prev:
                        pruned = True
                        break
                if pruned:
                    stats.pruned += 1
                    continue
            if use_masks:
                count = oracle.coverage_of_mask(mask)
            else:
                count = oracle.coverage(pattern)
            stats.coverage_evaluations += 1
            if count < threshold:
                # Every parent is covered (the prune above guarantees it),
                # so an uncovered candidate here is maximal by definition.
                mups.append(pattern)
                continue
            covered_here.add(pattern)
            if level == depth:
                continue
            start = pattern.rightmost_deterministic() + 1
            for index in range(start, space.d):
                if pattern[index] != X:
                    continue
                for value in range(space.cardinalities[index]):
                    child = pattern.with_value(index, value)
                    child_mask = (
                        oracle.restrict_mask(mask, index, value) if use_masks else None
                    )
                    next_frontier[child] = child_mask
        covered_prev = covered_here
        frontier = next_frontier

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mups), threshold, stats, max_level)
