"""PATTERN-BREAKER: the top-down BFS algorithm (§III-C, Algorithm 1).

Starts at the all-``X`` root and moves level by level, breaking covered
patterns into more specific candidates via Rule 1 (each node is generated
exactly once — Theorem 3).  A candidate is pruned without evaluation when
any of its parents was uncovered or itself pruned; an evaluated candidate
with ``cov < τ`` is a MUP (all its parents are covered by construction).

Coverage is evaluated incrementally and in batch: each frontier node
carries its match mask over the unique value combinations, a whole level's
surviving candidates are counted with one ``coverage_of_masks`` pass, and
the child masks of a covered node are produced one sibling family at a
time through the engine's vectorized ``restrict_children`` (Appendix A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.engine.base import Mask
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset


@register_algorithm("pattern_breaker", query_shape="batch")
def pattern_breaker(
    dataset: Dataset,
    threshold: int,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    use_masks: bool = True,
) -> MupResult:
    """Run PATTERN-BREAKER.

    Args:
        dataset: dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        max_level: stop after this level; returns all MUPs with
            ``ℓ(P) <= max_level``.
        oracle: reuse a prebuilt coverage oracle.
        engine: coverage-engine spec (name, ``"auto"``, EngineConfig,
            class, or instance) when no oracle is given.
        use_masks: thread parent match-masks down the tree (Appendix A
            optimization); disable only for the ablation benchmark.
    """
    space = PatternSpace.for_dataset(dataset)
    oracle = oracle or CoverageOracle(dataset, engine=engine)
    stats = SearchStats()
    watch = Stopwatch()
    depth = space.d if max_level is None else min(max_level, space.d)

    root = space.root()
    mups = []
    # Frontier entries: pattern -> match mask (or None when masks are off).
    frontier: Dict[Pattern, Optional[Mask]] = {
        root: oracle.full_mask() if use_masks else None
    }
    covered_prev: set = set()

    for level in range(0, depth + 1):
        if not frontier:
            break
        # Prune candidates whose parents were uncovered or pruned, then
        # evaluate the whole surviving frontier in one batched pass.
        survivors: List[Tuple[Pattern, Optional[Mask]]] = []
        for pattern, mask in frontier.items():
            stats.nodes_generated += 1
            if level > 0:
                pruned = False
                for parent in pattern.parents():
                    if parent not in covered_prev:
                        pruned = True
                        break
                if pruned:
                    stats.pruned += 1
                    continue
            survivors.append((pattern, mask))
        if use_masks:
            counts = oracle.coverage_of_masks([mask for _, mask in survivors])
        else:
            counts = oracle.coverage_many([pattern for pattern, _ in survivors])
        stats.coverage_evaluations += len(survivors)

        covered_here: set = set()
        next_frontier: Dict[Pattern, Optional[Mask]] = {}
        for (pattern, mask), count in zip(survivors, counts):
            if count < threshold:
                # Every parent is covered (the prune above guarantees it),
                # so an uncovered candidate here is maximal by definition.
                mups.append(pattern)
                continue
            covered_here.add(pattern)
            if level == depth:
                continue
            start = pattern.rightmost_deterministic() + 1
            for index in range(start, space.d):
                if pattern[index] != X:
                    continue
                if use_masks:
                    family = oracle.restrict_children(mask, index)
                else:
                    family = [None] * space.cardinalities[index]
                for value, child_mask in enumerate(family):
                    child = pattern.with_value(index, value)
                    next_frontier[child] = child_mask
        covered_prev = covered_here
        frontier = next_frontier

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mups), threshold, stats, max_level)
