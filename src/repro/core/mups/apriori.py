"""APRIORI adaptation for MUP discovery — the §V-C comparison baseline.

Each ``⟨attribute, value⟩`` pair becomes an item; transactions are the
dataset rows.  Classic level-wise apriori finds the frequent item-sets
(support ≥ τ); a MUP corresponds to an *infrequent* candidate whose
sub-item-sets are all frequent and whose items name distinct attributes.

The paper adapts apriori to highlight its handicaps, which this
implementation reproduces faithfully:

* the item lattice (``2^{Σ c_i}``) is far larger than the pattern graph
  (``Π (c_i + 1)``);
* candidates pairing two values of the *same* attribute are generated and
  counted even though no transaction can contain both (we track them in
  ``stats.pruned`` as wasted work).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset

Item = Tuple[int, int]  # (attribute index, value)
ItemSet = Tuple[Item, ...]  # sorted tuple of items


def _pattern_of(itemset: ItemSet, d: int) -> Pattern:
    values = [X] * d
    for attribute, value in itemset:
        values[attribute] = value
    return Pattern(values)


def _has_duplicate_attribute(itemset: ItemSet) -> bool:
    attributes = [attribute for attribute, _ in itemset]
    return len(set(attributes)) != len(attributes)


@register_algorithm("apriori", query_shape="batch")
def apriori_mups(
    dataset: Dataset,
    threshold: int,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
) -> MupResult:
    """Run the APRIORI adaptation.

    Args:
        dataset: dataset to assess.
        threshold: absolute support/coverage threshold ``τ``.
        max_level: optionally stop after item-sets of this size.
        oracle: reuse a prebuilt coverage oracle (supports are pattern
            coverages for attribute-distinct item-sets).
        engine: coverage-engine spec (name, ``"auto"``, EngineConfig,
            class, or instance) when no oracle is given.
    """
    oracle = oracle or CoverageOracle(dataset, engine=engine)
    d = dataset.d
    stats = SearchStats()
    watch = Stopwatch()
    depth = d if max_level is None else min(max_level, d)

    mups: List[Pattern] = []

    def supports(itemsets: Sequence[ItemSet]) -> List[int]:
        """Support of each item-set, counting the whole level in one pass.

        Candidates pairing two values of one attribute have support 0 by
        construction — no transaction holds both — yet apriori still pays
        to generate/count them (the wasted work §V-C calls out, tracked in
        ``stats.pruned``).  The attribute-distinct rest maps to patterns and
        goes through the engine's batched ``coverage_many``.
        """
        stats.coverage_evaluations += len(itemsets)
        valid: List[int] = []
        patterns: List[Pattern] = []
        for position, itemset in enumerate(itemsets):
            if _has_duplicate_attribute(itemset):
                stats.pruned += 1
            else:
                valid.append(position)
                patterns.append(_pattern_of(itemset, d))
        result = [0] * len(itemsets)
        for position, count in zip(valid, oracle.coverage_many(patterns)):
            result[position] = int(count)
        return result

    # Level 1: singletons. The empty item-set (the root pattern) has support
    # n; when even the root is uncovered it is the only MUP.
    if oracle.total < threshold:
        stats.seconds = watch.elapsed()
        return MupResult((Pattern.root(d),), threshold, stats, max_level)

    singletons: List[ItemSet] = [
        ((attribute, value),)
        for attribute in range(d)
        for value in range(dataset.cardinalities[attribute])
    ]
    stats.nodes_generated += len(singletons)
    frequent_prev: List[ItemSet] = []
    frequent_prev_set: set = set()
    for itemset, support in zip(singletons, supports(singletons)):
        if support >= threshold:
            frequent_prev.append(itemset)
            frequent_prev_set.add(frozenset(itemset))
        else:
            mups.append(_pattern_of(itemset, d))

    size = 1
    while frequent_prev and size < depth:
        size += 1
        candidates: Dict[ItemSet, None] = {}
        # Classic prefix join of L_{k-1} with itself.
        sorted_prev = sorted(frequent_prev)
        for i, left in enumerate(sorted_prev):
            for right in sorted_prev[i + 1 :]:
                if left[:-1] != right[:-1]:
                    break
                candidate = tuple(sorted(left + (right[-1],)))
                candidates[candidate] = None
        # Subset-pruned survivors of the level, counted in one batch.
        survivors: List[ItemSet] = []
        for candidate in candidates:
            stats.nodes_generated += 1
            subsets: List[FrozenSet[Item]] = [
                frozenset(c) for c in combinations(candidate, size - 1)
            ]
            if any(subset not in frequent_prev_set for subset in subsets):
                continue
            survivors.append(candidate)
        frequent_now: List[ItemSet] = []
        frequent_now_set: set = set()
        for candidate, support in zip(survivors, supports(survivors)):
            if support >= threshold:
                frequent_now.append(candidate)
                frequent_now_set.add(frozenset(candidate))
            elif not _has_duplicate_attribute(candidate):
                # Infrequent, all sub-item-sets frequent, valid pattern:
                # this is a MUP.
                mups.append(_pattern_of(candidate, d))
        frequent_prev = frequent_now
        frequent_prev_set = frequent_now_set

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mups), threshold, stats, max_level)
