"""MUP identification algorithms (§III + the §V-C APRIORI baseline)."""

from repro.core.mups.base import MupResult, find_mups, ALGORITHMS
from repro.core.mups.naive import naive_mups
from repro.core.mups.pattern_breaker import pattern_breaker
from repro.core.mups.pattern_combiner import pattern_combiner
from repro.core.mups.deepdiver import deepdiver
from repro.core.mups.apriori import apriori_mups

__all__ = [
    "MupResult",
    "find_mups",
    "ALGORITHMS",
    "naive_mups",
    "pattern_breaker",
    "pattern_combiner",
    "deepdiver",
    "apriori_mups",
]
