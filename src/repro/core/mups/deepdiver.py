"""DEEPDIVER: DFS search with dominance pruning (§III-E, Algorithm 3).

DEEPDIVER dives down covered Rule-1 chains until it hits an uncovered node,
then climbs toward the root through uncovered parents until it reaches a
node all of whose parents are covered — a MUP.  Discovered MUPs feed the
Appendix B dominance index, which prunes both the nodes they dominate
(descendants: cannot be MUPs, not worth expanding) and the nodes dominating
them (ancestors: necessarily covered, so their coverage need not be
evaluated).

Two evident typos in the published pseudocode are corrected (see DESIGN.md):
the climb stack is seeded with the uncovered node that triggered it, and a
node that *dominates* a known MUP is treated as covered — every ancestor of
a MUP is covered by monotonicity, so flagging it uncovered would contradict
Definition 5.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.dominance import MupDominanceIndex
from repro.core.engine import EngineSpec
from repro.core.engine.base import Mask
from repro.core.mups.base import MupResult, register_algorithm
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset


@register_algorithm("deepdiver", query_shape="point")
def deepdiver(
    dataset: Dataset,
    threshold: int,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    use_dominance_index: bool = True,
) -> MupResult:
    """Run DEEPDIVER.

    Args:
        dataset: dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        max_level: do not explore below this level; returns all MUPs with
            ``ℓ(P) <= max_level`` (Figure 16's scaling mode).
        oracle: reuse a prebuilt coverage oracle.
        engine: coverage-engine spec (name, ``"auto"``, EngineConfig,
            class, or instance) when no oracle is given.
        use_dominance_index: disable only for the Appendix B ablation; a
            linear scan over the MUP list is used instead.
    """
    space = PatternSpace.for_dataset(dataset)
    oracle = oracle or CoverageOracle(dataset, engine=engine)
    stats = SearchStats()
    watch = Stopwatch()
    depth = space.d if max_level is None else min(max_level, space.d)

    index = MupDominanceIndex(space.cardinalities)
    mup_set = set()
    coverage_cache: Dict[Pattern, int] = {}

    def coverage_of(pattern: Pattern, mask: Optional[Mask] = None) -> int:
        cached = coverage_cache.get(pattern)
        if cached is not None:
            return cached
        stats.coverage_evaluations += 1
        if mask is not None:
            count = oracle.coverage_of_mask(mask)
        else:
            count = oracle.coverage(pattern)
        coverage_cache[pattern] = count
        return count

    def dominated_by_mups(pattern: Pattern) -> bool:
        stats.dominance_checks += 1
        if use_dominance_index:
            return index.dominated_by_any(pattern)
        return any(m.dominates(pattern) for m in mup_set)

    def dominates_mups(pattern: Pattern) -> bool:
        stats.dominance_checks += 1
        if use_dominance_index:
            return index.dominates_any(pattern)
        return any(pattern.dominates(m) for m in mup_set)

    def climb_to_mup(pattern: Pattern) -> Pattern:
        """Follow uncovered parents upward until all parents are covered."""
        current = pattern
        while True:
            moved = False
            for parent in current.parents():
                if coverage_of(parent) < threshold:
                    current = parent
                    moved = True
                    break
            if not moved:
                return current

    root = space.root()
    stack = [(root, oracle.full_mask())]
    while stack:
        pattern, mask = stack.pop()
        stats.nodes_generated += 1
        if dominated_by_mups(pattern):
            stats.pruned += 1
            continue
        if dominates_mups(pattern):
            # Ancestors of MUPs are covered by monotonicity; skip the
            # coverage evaluation and keep expanding.
            uncovered = False
            stats.pruned += 1
        else:
            uncovered = coverage_of(pattern, mask) < threshold
        if uncovered:
            mup = climb_to_mup(pattern)
            if mup not in mup_set:
                mup_set.add(mup)
                index.add(mup)
            continue
        if pattern.level >= depth:
            continue
        start = pattern.rightmost_deterministic() + 1
        for attr in range(start, space.d):
            if pattern[attr] != X:
                continue
            # One vectorized pass builds the whole sibling family's masks.
            family = oracle.restrict_children(mask, attr)
            for value, child_mask in enumerate(family):
                child = pattern.with_value(attr, value)
                stack.append((child, child_mask))

    stats.seconds = watch.elapsed()
    return MupResult(tuple(mup_set), threshold, stats, max_level)
