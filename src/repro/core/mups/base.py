"""Shared result type and facade for the MUP identification algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro._util import SearchStats
from repro.core.coverage import CoverageOracle, max_covered_level, threshold_from_rate
from repro.core.engine import AUTO, EngineConfig, EngineSpec
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.exceptions import ReproError


@dataclass(frozen=True)
class MupResult:
    """Output of a MUP identification run (Problem 1).

    Attributes:
        mups: the maximal uncovered patterns, sorted for reproducibility.
        threshold: the absolute coverage threshold ``τ`` used.
        stats: traversal counters and wall-clock time.
        max_level: the level cap, when the run was level-limited (Fig. 16);
            ``None`` means the full pattern graph was considered.
    """

    mups: Tuple[Pattern, ...]
    threshold: int
    stats: SearchStats
    max_level: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mups", tuple(sorted(self.mups)))
        # Membership is queried in inner loops (incremental maintenance,
        # cross-checks); cache the set once instead of per __contains__.
        object.__setattr__(self, "_mup_set", frozenset(self.mups))

    def __len__(self) -> int:
        return len(self.mups)

    def __iter__(self):
        return iter(self.mups)

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern in self._mup_set

    def as_set(self) -> frozenset:
        return self._mup_set

    def level_histogram(self) -> Dict[int, int]:
        """MUP count per level — the series behind Figure 6."""
        histogram: Dict[int, int] = {}
        for pattern in self.mups:
            histogram[pattern.level] = histogram.get(pattern.level, 0) + 1
        return dict(sorted(histogram.items()))

    def max_covered_level(self, d: int) -> int:
        """Definition 6 for this MUP set (``d`` when fully covered)."""
        return max_covered_level(self.mups, d)

    def at_level(self, level: int) -> List[Pattern]:
        """MUPs at exactly ``level``."""
        return [p for p in self.mups if p.level == level]


AlgorithmFn = Callable[..., MupResult]

#: Registry used by the facade, CLI, and the benchmark harness.
ALGORITHMS: Dict[str, AlgorithmFn] = {}

#: Query shape of each registered algorithm — ``"point"`` for DFS-style
#: traversals dominated by single-pattern probes (latency-bound),
#: ``"batch"`` for level sweeps that count whole candidate generations at
#: once (throughput-bound).  Feeds the planner's cost model.
ALGORITHM_SHAPES: Dict[str, str] = {}


def register_algorithm(
    name: str, query_shape: str = "point"
) -> Callable[[AlgorithmFn], AlgorithmFn]:
    """Decorator registering an algorithm under ``name``.

    Args:
        name: registry key used by the facade, CLI, and benchmarks.
        query_shape: ``"point"`` or ``"batch"`` — how the algorithm
            exercises the coverage engine (see :data:`ALGORITHM_SHAPES`).
    """

    def decorate(fn: AlgorithmFn) -> AlgorithmFn:
        ALGORITHMS[name] = fn
        ALGORITHM_SHAPES[name] = query_shape
        return fn

    return decorate


def algorithm_query_shape(name: str) -> str:
    """The registered query shape of ``name`` (``"point"`` if unknown)."""
    return ALGORITHM_SHAPES.get(name, "point")


def _plan_auto_engine(
    dataset: Dataset, engine: EngineSpec, algorithm: str
) -> EngineSpec:
    """Resolve ``"auto"`` engine specs with the algorithm's query shape.

    Pre-planning here (instead of letting ``resolve_engine`` plan with the
    default shape) lets the cost model distinguish DFS point probes from
    apriori-style batch sweeps.  Non-auto specs pass through untouched.
    """
    if isinstance(engine, str) and engine == AUTO:
        engine = EngineConfig(backend=AUTO)
    if isinstance(engine, EngineConfig) and engine.is_auto:
        from repro.core.engine.planner import plan_engine

        return plan_engine(
            dataset, engine, query_shape=algorithm_query_shape(algorithm)
        ).config
    return engine


def resolve_threshold(
    dataset: Dataset,
    threshold: Optional[int] = None,
    threshold_rate: Optional[float] = None,
) -> int:
    """Normalize (absolute τ | rate) inputs into an absolute τ ≥ 1."""
    if (threshold is None) == (threshold_rate is None):
        raise ReproError("specify exactly one of threshold / threshold_rate")
    if threshold is not None:
        if threshold < 1:
            raise ReproError(f"threshold must be >= 1, got {threshold}")
        return int(threshold)
    # Straight from the dataset size — no need to build an inverted index
    # just to read n.
    return threshold_from_rate(threshold_rate, dataset.n)


def find_mups(
    dataset: Dataset,
    threshold: Optional[int] = None,
    threshold_rate: Optional[float] = None,
    algorithm: str = "deepdiver",
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
) -> MupResult:
    """Facade: identify the maximal uncovered patterns of a dataset.

    Args:
        dataset: the dataset to assess.
        threshold: absolute coverage threshold ``τ``.
        threshold_rate: alternatively, a rate of ``n`` (paper's sweeps).
        algorithm: one of ``naive``, ``pattern_breaker``, ``pattern_combiner``,
            ``deepdiver``, ``apriori``.
        max_level: only look for MUPs at level ≤ this cap (supported by
            ``pattern_breaker`` and ``deepdiver``; Figure 16).
        oracle: optionally reuse a prebuilt coverage oracle.
        engine: coverage-engine selection used to build the oracle — an
            :class:`~repro.core.engine.EngineConfig`, a backend name
            (``"auto"`` consults the workload-aware planner), a class, or
            an instance; ignored when ``oracle`` is given.

    Returns:
        A :class:`MupResult`.
    """
    if algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        )
    tau = resolve_threshold(dataset, threshold, threshold_rate)
    kwargs = {}
    if max_level is not None:
        kwargs["max_level"] = max_level
    if oracle is not None:
        kwargs["oracle"] = oracle
    elif engine is not None:
        kwargs["engine"] = _plan_auto_engine(dataset, engine, algorithm)
    return ALGORITHMS[algorithm](dataset, tau, **kwargs)
