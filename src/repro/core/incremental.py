"""Incremental MUP maintenance under data arrival and removal.

The paper's workflow alternates assessment and acquisition: identify MUPs,
collect tuples, re-assess.  Re-running identification from scratch after
every delivery wastes the structure of the previous answer.  This module
maintains the MUP set incrementally:

* **Adding tuples** only *increases* coverages.  A MUP that matches no new
  tuple is untouched (its coverage is unchanged and its parents only got
  safer).  A MUP that became covered is *resolved*; fresh MUPs can appear
  only strictly below it, so a localized top-down search of its dominated
  sub-graph repairs the set.
* **Removing tuples** only *decreases* coverages.  Every pattern whose
  coverage dropped matches a removed tuple, so new MUPs live inside the
  tiny sub-lattices ``{P : P[i] ∈ {X, c[i]}}`` of the removed combinations
  ``c`` (2^d nodes each, with the usual monotonicity pruning); existing
  MUPs survive unless one of their parents became uncovered.

Every public operation is cross-checked against from-scratch recomputation
in the property tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.coverage import CoverageOracle
from repro.core.engine import CoverageEngine, EngineSpec, invalidate_stats_cache
from repro.core.mups.base import MupResult, find_mups
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset
from repro.exceptions import DataError, EngineError, ReproError


def _engine_template(engine: EngineSpec) -> EngineSpec:
    """An engine spec reusable across rebuilt datasets.

    The index rebuilds its oracle after every delivery/removal, so a
    prebuilt engine instance (bound to the initial dataset) is reduced to
    its :meth:`~repro.core.engine.CoverageEngine.template` — a declarative
    :class:`~repro.core.engine.EngineConfig` carrying the same
    configuration (shard count, worker pool, cache capacity) onto the new
    dataset, with none of the old dataset's masks or cached state; names,
    configs, and classes pass through.  An ``"auto"`` spec re-plans on
    every rebuild, so the backend escalates as deliveries grow the index.
    """
    if isinstance(engine, CoverageEngine):
        return engine.template()
    return engine


class IncrementalMupIndex:
    """Maintains the MUP set of a dataset across row additions/removals.

    Args:
        dataset: the initial dataset.
        threshold: the coverage threshold τ (fixed for the index lifetime).
        algorithm: identification algorithm for the initial computation.
        engine: coverage-engine backend used for every (re)built oracle.
        oracle: an already-warm oracle over ``dataset`` to adopt instead of
            building a fresh index (the serving layer registers datasets
            before any threshold is known).  The index takes ownership: the
            adopted oracle's engine is closed on the first delivery, like
            every engine the index builds itself.  Its engine's template
            configures the rebuilds unless ``engine`` is also given.
    """

    def __init__(
        self,
        dataset: Dataset,
        threshold: int,
        algorithm: str = "deepdiver",
        engine: EngineSpec = None,
        oracle: CoverageOracle = None,
    ) -> None:
        if threshold < 1:
            raise ReproError(f"threshold must be >= 1, got {threshold}")
        self._space = PatternSpace.for_dataset(dataset)
        self._threshold = threshold
        self._dataset = dataset
        if oracle is not None:
            if oracle.dataset is not dataset:
                raise ReproError(
                    "the adopted oracle indexes a different dataset than "
                    "the one the index maintains"
                )
            self._engine_spec = _engine_template(
                engine if engine is not None else oracle.engine
            )
            self._oracle = oracle
        else:
            self._engine_spec = _engine_template(engine)
            self._oracle = CoverageOracle(dataset, engine=self._engine_spec)
        initial = find_mups(
            dataset, threshold=threshold, algorithm=algorithm, oracle=self._oracle
        )
        self._mups: Set[Pattern] = set(initial.mups)
        self.recomputations = 0  # localized searches performed (stats)
        self.delta_rebuilds = 0  # rebuilds served by a delta spill (stats)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def oracle(self) -> CoverageOracle:
        """The oracle over the current dataset (replaced on every delivery).

        Consumers that keep long-lived references (the serving layer's
        snapshots) must re-read this property after a delivery; the
        previously returned oracle keeps answering for the *old* dataset.
        """
        return self._oracle

    @property
    def threshold(self) -> int:
        return self._threshold

    def mups(self) -> Tuple[Pattern, ...]:
        """The current MUP set, sorted."""
        return tuple(sorted(self._mups))

    def max_covered_level(self) -> int:
        """Definition 6 for the current state."""
        if not self._mups:
            return self._dataset.d
        return min(p.level for p in self._mups) - 1

    def coverage(self, pattern: Pattern) -> int:
        """Current coverage of a pattern."""
        return self._oracle.coverage(pattern)

    def _delta_rebuild(self, new_dataset: Dataset):
        """A delta-spilled engine over ``new_dataset``, or ``None``.

        Only attempted when the retiring engine is an open out-of-core
        sharded engine built with ``delta_spill=True``: unchanged shard
        files are hard-linked into the successor spill directory and only
        the shards whose unique-combination slice changed re-serialize, so
        a small delivery re-indexes in O(changed shards).  Any
        :class:`EngineError` falls back to the from-scratch build — delta
        reuse is an optimization, never a correctness dependency.
        """
        from repro.core.engine.sharded import ShardedEngine

        retired = self._oracle.engine
        if not (
            isinstance(retired, ShardedEngine)
            and retired.out_of_core
            and retired.delta_spill
            and retired.store is not None
            and not retired.store.closed
        ):
            return None
        try:
            return ShardedEngine.delta_rebuild(retired, new_dataset)
        except EngineError:
            return None

    def _rebuild_oracle(self, new_dataset: Dataset) -> None:
        """Re-index ``new_dataset`` and swap it in, retiring the old engine.

        Exception-safe: the new oracle is built *before* any state changes,
        so a failed construction (e.g. a spill-dir write error) leaves the
        index fully consistent on the old dataset + old oracle, still
        answering queries.  On success the dataset and oracle swap together
        and the retired engine is closed in a ``finally`` — worker pools
        shut down and out-of-core spill directories are deleted instead of
        leaking (or lingering until GC).  The engines this index builds are
        its own: prebuilt instances are reduced to templates in
        ``__init__``.  Engines configured with ``delta_spill=True`` rebuild
        through :meth:`_delta_rebuild` first (clean shards hard-linked, not
        re-serialized) and fall back to a fresh build on any engine error.
        """
        delta_engine = self._delta_rebuild(new_dataset)
        if delta_engine is not None:
            new_oracle = CoverageOracle(new_dataset, engine=delta_engine)
            self.delta_rebuilds += 1
        else:
            new_oracle = CoverageOracle(new_dataset, engine=self._engine_spec)
        retired = self._oracle.engine
        try:
            # The retired dataset's planner stats are stale the moment the
            # delivery lands; drop them so a later plan re-measures.
            invalidate_stats_cache(self._dataset.content_fingerprint())
            self._dataset = new_dataset
            self._oracle = new_oracle
        finally:
            retired.close()

    # ------------------------------------------------------------------
    # additions
    # ------------------------------------------------------------------
    def add_rows(self, rows: Iterable[Sequence[int]]) -> List[Pattern]:
        """Append tuples and repair the MUP set.

        Returns:
            The MUPs *resolved* (covered) by this delivery.
        """
        addition = np.asarray(list(rows), dtype=np.int32)
        if addition.size == 0:
            return []
        if addition.ndim == 1:
            addition = addition.reshape(1, -1)
        self._rebuild_oracle(self._dataset.append_rows(addition))

        # Only MUPs matching some new tuple changed coverage.
        touched = [
            mup
            for mup in self._mups
            if any(mup.matches(row) for row in addition)
        ]
        resolved = [
            mup for mup in touched if self._oracle.coverage(mup) >= self._threshold
        ]
        for mup in resolved:
            self._mups.discard(mup)
        # Fresh MUPs can only be (strict) descendants of resolved MUPs.
        for mup in resolved:
            self._search_below(mup)
        return sorted(resolved)

    def _search_below(self, resolved: Pattern) -> None:
        """Localized top-down search of the sub-graph under ``resolved``.

        ``resolved`` is covered now; its uncovered descendants with all
        parents covered are new MUPs.  The descent stops at uncovered
        nodes (their own descendants cannot be maximal).
        """
        self.recomputations += 1
        visited: Set[Pattern] = set()
        frontier: List[Pattern] = [resolved]
        while frontier:
            pattern = frontier.pop()
            for child in self._space.children(pattern):
                if child in visited:
                    continue
                visited.add(child)
                if self._oracle.coverage(child) >= self._threshold:
                    frontier.append(child)
                    continue
                if child in self._mups:
                    continue
                if self._all_parents_covered(child):
                    self._mups.add(child)
                # Uncovered but non-maximal: a sibling branch will reach the
                # actual MUP; do not descend below an uncovered node.

    def _all_parents_covered(self, pattern: Pattern) -> bool:
        parents = list(pattern.parents())
        if not parents:
            return True
        counts = self._oracle.coverage_many(parents)
        return bool((counts >= self._threshold).all())

    # ------------------------------------------------------------------
    # removals
    # ------------------------------------------------------------------
    def remove_rows(self, indices: Sequence[int]) -> List[Pattern]:
        """Delete rows by index and repair the MUP set.

        Returns:
            The newly appearing MUPs.
        """
        indices = np.unique(np.asarray(indices, dtype=np.int64))
        if indices.size == 0:
            return []
        if indices.min() < 0 or indices.max() >= self._dataset.n:
            raise DataError(
                f"row indices out of range [0, {self._dataset.n})"
            )
        removed_rows = self._dataset.rows[indices]
        keep = np.ones(self._dataset.n, dtype=bool)
        keep[indices] = False
        before = set(self._mups)
        self._rebuild_oracle(self._dataset.mask(keep))

        # 1. Existing MUPs may stop being maximal (a parent became
        #    uncovered) — exactly when the parent matches a removed tuple.
        for mup in list(self._mups):
            demoted = False
            for parent in mup.parents():
                if any(parent.matches(row) for row in removed_rows):
                    if self._oracle.coverage(parent) < self._threshold:
                        demoted = True
                        break
            if demoted:
                self._mups.discard(mup)

        # 2. New uncovered patterns match some removed combination: search
        #    each removed combination's sub-lattice {P : P[i] in {X, c[i]}}.
        for combo in {tuple(int(v) for v in row) for row in removed_rows}:
            self._search_sublattice(combo)
        return sorted(set(self._mups) - before)

    def _search_sublattice(self, combo: Tuple[int, ...]) -> None:
        """Top-down search of the 2^d lattice of patterns matching ``combo``."""
        self.recomputations += 1
        root = self._space.root()
        visited: Set[Pattern] = {root}
        frontier: List[Pattern] = [root]
        while frontier:
            pattern = frontier.pop()
            if self._oracle.coverage(pattern) >= self._threshold:
                # Covered: specialize further within the sub-lattice.
                for index in pattern.nondeterministic_indices():
                    child = pattern.with_value(index, combo[index])
                    if child not in visited:
                        visited.add(child)
                        frontier.append(child)
                continue
            # Uncovered: a MUP iff all parents covered.
            if pattern not in self._mups and self._all_parents_covered(pattern):
                self._mups.add(pattern)

    # ------------------------------------------------------------------
    # verification helper
    # ------------------------------------------------------------------
    def as_result(self) -> MupResult:
        """Snapshot the current state as a :class:`MupResult`."""
        from repro._util import SearchStats

        return MupResult(
            mups=tuple(self._mups),
            threshold=self._threshold,
            stats=SearchStats(),
        )
