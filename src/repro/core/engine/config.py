"""Declarative engine configuration: every backend knob in one object.

Before this module, the engine knobs (backend name, shard count, worker
pool, spill directory, resident budget, mask-cache capacity) travelled as
loose keyword arguments duplicated across the oracle, the five MUP
algorithms, enhancement, the incremental index, and the CLI — and each
call site re-implemented (or forgot) the cross-field validity checks.
:class:`EngineConfig` collapses that sprawl into one frozen, validated,
serializable dataclass:

* **one vocabulary** — a config names the backend (``"dense"`` /
  ``"packed"`` / ``"sharded"``, or ``"auto"`` for the workload-aware
  planner in :mod:`repro.core.engine.planner`) and carries every option a
  built-in backend accepts; unset options (``None``) defer to the
  backend's own defaults;
* **one validator** — :meth:`validate` holds the cross-field rules the
  CLI used to hand-roll (sharded-only flags, out-of-core prerequisites,
  process-pool preconditions), so programmatic callers get the same clear
  :class:`~repro.exceptions.EngineError` messages as ``--engine`` users;
* **one serialization** — ``to_dict`` / ``from_dict`` round-trip losslessly
  (manifests, benchmark payloads) and :meth:`from_cli_args` lifts an
  ``argparse`` namespace straight into a validated config.

A config is also a **dataset-free engine factory**: calling it with a
dataset builds the configured engine, which is exactly the contract
:meth:`~repro.core.engine.base.CoverageEngine.template` promises — engine
templates now *are* ``EngineConfig`` instances for the registered
backends.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.engine.base import DEFAULT_ENGINE, ENGINES, CoverageEngine
from repro.core.engine.compressed import CHUNK_BITS
from repro.core.engine.kernels import KERNEL_TIERS
from repro.core.engine.sharded import WORKERS_MODES
from repro.exceptions import EngineError

#: Pseudo-backend name: let the planner choose the real backend.
AUTO = "auto"

#: Backend names whose constructor options EngineConfig fully describes.
#: (Custom registered backends keep their own kwargs and bypass the
#: config-level option validation.)
BUILTIN_BACKENDS = (AUTO, "dense", "packed", "sharded", "compressed")

#: Options that only the sharded backend (or the auto planner) consumes.
_SHARDED_ONLY = (
    "shards",
    "workers",
    "workers_mode",
    "spill_dir",
    "max_resident_bytes",
    "worker_endpoints",
    "delta_spill",
)

#: Options that only the compressed backend (or the auto planner) consumes.
_COMPRESSED_ONLY = ("array_cutoff", "run_cutoff")


@dataclass(frozen=True)
class EngineConfig:
    """A complete, validated description of one engine configuration.

    Attributes:
        backend: registry name of the backend, or ``"auto"`` to let the
            workload-aware planner choose one.
        shards: shard count (sharded backend; planner hint under auto).
        workers: worker-pool size for shard fan-out.
        workers_mode: ``"thread"`` / ``"process"`` / ``"socket"`` shard
            fan-out pool.
        spill_dir: out-of-core spill root (forces the out-of-core mode).
        max_resident_bytes: resident byte budget.  With ``backend="sharded"``
            this is the mmap loader's LRU budget and requires ``spill_dir``;
            with ``backend="auto"`` it is the planner's **memory budget** —
            the planner escalates to out-of-core when the projected packed
            index exceeds it.
        mask_cache_size: hot-mask LRU capacity (``None`` = backend default,
            ``0`` disables caching).
        kernel_tier: compiled-kernel tier for the inner loops —
            ``"auto"`` / ``"jit"`` / ``"python"`` (``None`` defers to the
            ``REPRO_KERNELS`` environment variable, then availability).
            Validation checks the name only; availability of the jit tier
            is enforced when the engine is built or planned, so configs
            stay portable across machines with and without numba.
        array_cutoff: compressed backend — largest container cardinality
            kept as a sorted ``uint16`` array (1..65536).
        run_cutoff: compressed backend — largest interval count kept as a
            run container (>= 1).
        worker_endpoints: ``host:port`` addresses of standing shard
            workers (``workers_mode="socket"`` only); unset, socket mode
            spawns local workers.
        delta_spill: let rebuilds over appended data reuse the previous
            spill directory via delta writes (out-of-core only).

    Every field except ``backend`` defaults to ``None`` (= "backend
    default"); construction validates the combination and raises
    :class:`EngineError` on contradictions.
    """

    backend: str = DEFAULT_ENGINE
    shards: Optional[int] = None
    workers: Optional[int] = None
    workers_mode: Optional[str] = None
    spill_dir: Optional[str] = None
    max_resident_bytes: Optional[int] = None
    mask_cache_size: Optional[int] = None
    array_cutoff: Optional[int] = None
    run_cutoff: Optional[int] = None
    kernel_tier: Optional[str] = None
    worker_endpoints: Optional[Tuple[str, ...]] = None
    delta_spill: Optional[bool] = None

    def __post_init__(self) -> None:
        # Normalize numerics up front so equality / round-trips are exact.
        for name in (
            "shards",
            "workers",
            "max_resident_bytes",
            "mask_cache_size",
            "array_cutoff",
            "run_cutoff",
        ):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        if self.spill_dir is not None:
            object.__setattr__(self, "spill_dir", os.fspath(self.spill_dir))
        if self.worker_endpoints is not None:
            object.__setattr__(
                self,
                "worker_endpoints",
                tuple(str(endpoint) for endpoint in self.worker_endpoints),
            )
        if self.delta_spill is not None:
            object.__setattr__(self, "delta_spill", bool(self.delta_spill))
        self.validate()

    # ------------------------------------------------------------------
    # validation (the single source of the cross-field rules)
    # ------------------------------------------------------------------
    @property
    def is_auto(self) -> bool:
        """True when the planner, not the caller, picks the backend."""
        return self.backend == AUTO

    def validate(self) -> None:
        """Check the configuration's cross-field validity.

        Raises :class:`EngineError` with the same messages for every
        caller — CLI flags, programmatic configs, deserialized dicts.
        """
        known = sorted(set(ENGINES) | {AUTO})
        if not isinstance(self.backend, str) or self.backend not in known:
            raise EngineError(
                f"unknown coverage engine {self.backend!r}; available: {known}"
            )
        if self.backend not in (AUTO, "sharded"):
            offending = [
                name for name in _SHARDED_ONLY if getattr(self, name) is not None
            ]
            if offending:
                raise EngineError(
                    f"{'/'.join(offending)} only apply to the sharded backend "
                    f"(--engine sharded) or the auto planner (--engine auto), "
                    f"not {self.backend!r}"
                )
        if self.backend not in (AUTO, "compressed"):
            offending = [
                name
                for name in _COMPRESSED_ONLY
                if getattr(self, name) is not None
            ]
            if offending:
                raise EngineError(
                    f"{'/'.join(offending)} only apply to the compressed "
                    f"backend (--engine compressed) or the auto planner "
                    f"(--engine auto), not {self.backend!r}"
                )
        if self.is_auto:
            # max_resident_bytes is excluded: under auto it is the
            # planner's memory budget, which constrains any backend.
            sharded_set = [
                name
                for name in _SHARDED_ONLY
                if name != "max_resident_bytes"
                and getattr(self, name) is not None
            ]
            compressed_set = [
                name
                for name in _COMPRESSED_ONLY
                if getattr(self, name) is not None
            ]
            if sharded_set and compressed_set:
                raise EngineError(
                    f"{'/'.join(sharded_set)} force the sharded backend but "
                    f"{'/'.join(compressed_set)} force the compressed one; "
                    f"an auto plan cannot honour both"
                )
        if self.array_cutoff is not None and not (
            1 <= self.array_cutoff <= CHUNK_BITS
        ):
            raise EngineError(
                f"array_cutoff must be in [1, {CHUNK_BITS}], "
                f"got {self.array_cutoff}"
            )
        if self.run_cutoff is not None and self.run_cutoff < 1:
            raise EngineError(
                f"run_cutoff must be >= 1, got {self.run_cutoff}"
            )
        if self.shards is not None and self.shards < 1:
            raise EngineError(f"shard count must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise EngineError(f"worker count must be >= 1, got {self.workers}")
        if self.mask_cache_size is not None and self.mask_cache_size < 0:
            raise EngineError(
                f"mask_cache_size must be >= 0, got {self.mask_cache_size}"
            )
        if self.max_resident_bytes is not None and self.max_resident_bytes < 1:
            raise EngineError(
                f"max_resident_bytes must be >= 1, got {self.max_resident_bytes}"
            )
        if self.kernel_tier is not None and self.kernel_tier not in KERNEL_TIERS:
            raise EngineError(
                f"kernel_tier must be one of {KERNEL_TIERS}, "
                f"got {self.kernel_tier!r}"
            )
        if self.workers_mode is not None and self.workers_mode not in WORKERS_MODES:
            raise EngineError(
                f"workers_mode must be one of {WORKERS_MODES}, "
                f"got {self.workers_mode!r}"
            )
        if self.workers_mode == "process":
            if self.workers is None or self.workers < 2:
                raise EngineError(
                    "workers_mode='process' requires workers >= 2 (the pool "
                    "size); anything less would silently run serially"
                )
            if self.backend == "sharded" and self.spill_dir is None:
                raise EngineError(
                    "workers_mode='process' requires the out-of-core mode "
                    "(pass spill_dir= / --spill-dir): children attach to the "
                    "shard files by path"
                )
        if self.worker_endpoints is not None:
            if not self.worker_endpoints:
                raise EngineError(
                    "worker_endpoints must list at least one host:port "
                    "address (or be unset for spawn-local workers)"
                )
            malformed = [
                endpoint
                for endpoint in self.worker_endpoints
                if ":" not in endpoint.strip() or not endpoint.strip()
            ]
            if malformed:
                raise EngineError(
                    f"worker_endpoints entries must be host:port, "
                    f"got {malformed}"
                )
            if self.workers_mode != "socket":
                raise EngineError(
                    "worker_endpoints requires workers_mode='socket' "
                    "(--workers-mode socket): only the socket pool talks "
                    "to remote workers"
                )
        if self.workers_mode == "socket":
            if self.worker_endpoints is None and (
                self.workers is None or self.workers < 2
            ):
                raise EngineError(
                    "workers_mode='socket' without worker_endpoints spawns "
                    "local workers and requires workers >= 2 (the pool "
                    "size); pass --worker-endpoints for standing workers"
                )
            if self.backend == "sharded" and self.spill_dir is None:
                raise EngineError(
                    "workers_mode='socket' requires the out-of-core mode "
                    "(pass spill_dir= / --spill-dir): workers attach to the "
                    "shard files by path"
                )
        if (
            self.delta_spill
            and self.backend == "sharded"
            and self.spill_dir is None
        ):
            raise EngineError(
                "delta_spill requires the out-of-core mode (pass "
                "spill_dir= / --spill-dir): delta writes reuse spilled "
                "shard files"
            )
        if (
            self.backend == "sharded"
            and self.max_resident_bytes is not None
            and self.spill_dir is None
        ):
            raise EngineError(
                "max_resident_bytes requires the out-of-core mode "
                "(pass spill_dir= / --spill-dir) — or --engine auto, where it "
                "is the planner's memory budget"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_options(cls, backend: str, **options: Any) -> "EngineConfig":
        """Build a config from a backend name plus constructor-style kwargs.

        The compatibility shim behind the legacy ``resolve_engine(name,
        **kwargs)`` calling convention; unknown option names raise a clear
        :class:`EngineError` instead of a constructor ``TypeError`` (or
        worse, being silently ignored by a permissive factory).
        """
        field_names = {f.name for f in dataclasses.fields(cls)} - {"backend"}
        unknown = sorted(set(options) - field_names)
        if unknown:
            raise EngineError(
                f"unknown engine option(s) {unknown} for backend {backend!r}; "
                f"known options: {sorted(field_names)}"
            )
        return cls(backend=backend, **options)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "EngineConfig":
        """Deserialize a :meth:`to_dict` payload (strict: unknown keys fail)."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - field_names)
        if unknown:
            raise EngineError(
                f"unknown EngineConfig field(s) {unknown}; "
                f"known fields: {sorted(field_names)}"
            )
        return cls(**dict(mapping))

    @classmethod
    def from_cli_args(cls, args: Any) -> "EngineConfig":
        """Lift an ``argparse`` namespace into a validated config.

        Reads the CLI's engine flags (``--engine --shards --workers
        --workers-mode --spill-dir --max-resident-bytes``); absent
        attributes count as unset, so partial namespaces (tests, embedders)
        work too.
        """
        return cls(
            backend=getattr(args, "engine", None) or AUTO,
            shards=getattr(args, "shards", None),
            workers=getattr(args, "workers", None),
            workers_mode=getattr(args, "workers_mode", None),
            spill_dir=getattr(args, "spill_dir", None),
            max_resident_bytes=getattr(args, "max_resident_bytes", None),
            mask_cache_size=getattr(args, "mask_cache_size", None),
            array_cutoff=getattr(args, "array_cutoff", None),
            run_cutoff=getattr(args, "run_cutoff", None),
            kernel_tier=getattr(args, "kernel_tier", None),
            worker_endpoints=getattr(args, "worker_endpoints", None),
            delta_spill=getattr(args, "delta_spill", None),
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The config as a JSON-serializable dict (full field set)."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Compact one-line rendering (set fields only)."""
        parts = [f"backend={self.backend}"]
        for field in dataclasses.fields(self):
            if field.name == "backend":
                continue
            value = getattr(self, field.name)
            if value is not None:
                parts.append(f"{field.name}={value}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # engine construction
    # ------------------------------------------------------------------
    def engine_options(self) -> Dict[str, Any]:
        """Constructor kwargs for the configured backend (set fields only).

        ``None`` fields are omitted so the backend's own defaults apply;
        non-sharded backends only ever receive ``mask_cache_size`` and
        ``kernel_tier`` (the validator already rejected anything else).
        """
        options: Dict[str, Any] = {}
        if self.mask_cache_size is not None:
            options["mask_cache_size"] = self.mask_cache_size
        if self.kernel_tier is not None:
            options["kernel_tier"] = self.kernel_tier
        if self.backend == "sharded":
            for name in _SHARDED_ONLY:
                value = getattr(self, name)
                if value is not None:
                    options[name] = value
        if self.backend == "compressed":
            for name in _COMPRESSED_ONLY:
                value = getattr(self, name)
                if value is not None:
                    options[name] = value
        return options

    def __call__(self, dataset: Any, **overrides: Any) -> "CoverageEngine":
        """Build the configured engine for ``dataset``.

        This makes a config a drop-in dataset-free factory — the contract
        of :meth:`~repro.core.engine.base.CoverageEngine.template` —
        so ``engine.template()(new_dataset)`` keeps working now that
        templates are configs.  ``overrides`` replace fields by name.
        """
        from repro.core.engine.base import resolve_engine

        config = dataclasses.replace(self, **overrides) if overrides else self
        return resolve_engine(config, dataset)
