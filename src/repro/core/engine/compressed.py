"""Compressed sparse-domain coverage engine (roaring-style containers).

High-cardinality value domains make the packed index overwhelmingly zero:
each membership vector for ``attribute == value`` has ``~unique/c_i`` set
bits out of ``unique``, so at a mean cardinality of 64 under 2% of the
packed words' bits are ones — exactly the regime compressed bitmaps
(Chambi et al., *Better bitmap performance with Roaring bitmaps*) were
built for.  This backend stores every membership vector, and every mask,
as a :class:`CompressedBitmap`: the unique-combination space is cut into
chunks of 64Ki combinations, and each non-empty chunk holds one of three
containers, chosen per chunk by density:

* **sorted-array** — the set bit positions as a sorted ``uint16`` array
  (2 bytes per present combination; the sparse workhorse);
* **bitmap** — packed ``uint64`` words (the dense fallback, identical to
  one chunk of the packed engine's layout);
* **run** — ``[start, stop)`` interval pairs (all-ones chunks — e.g. the
  root mask, or a cardinality-1 attribute — are a single run).

The intersect and count kernels are **fused per container pair**: two
sorted arrays intersect by ``intersect1d``, an array tests its members
against a bitmap's words or a run's intervals, runs intersect by interval
arithmetic — dense words are never materialized for sparse chunks.
Weighted counts use a precomputed multiplicity prefix sum, so a run
container's coverage costs O(runs) regardless of its cardinality.

Container thresholds are configurable (``array_cutoff`` — the largest
cardinality kept as a sorted array; ``run_cutoff`` — the largest interval
count kept as runs) and validated through
:class:`~repro.core.engine.config.EngineConfig`; the workload-aware
planner selects this backend automatically when the projected index
density falls under its sparsity cutoff and the cost model favours the
compressed representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine.base import (
    DEFAULT_MASK_CACHE,
    CoverageEngine,
    register_engine,
)
from repro.data.bitset import popcount_words
from repro.data.dataset import Dataset

#: Combinations per chunk (the container addressing unit; 64Ki bits).
CHUNK_BITS = 1 << 16

#: ``position >> CHUNK_SHIFT`` is the chunk id (derived, never hard-coded).
CHUNK_SHIFT = CHUNK_BITS.bit_length() - 1

#: Largest container cardinality stored as a sorted ``uint16`` array.
DEFAULT_ARRAY_CUTOFF = 4096

#: Largest interval count stored as a run container.
DEFAULT_RUN_CUTOFF = 1024

_WORD_BITS = 64

#: Container kind tags (a container is a ``(kind, data)`` pair).
ARRAY = "array"
BITMAP = "bitmap"
RUN = "run"

#: One chunk's payload: the kind tag plus its ndarray representation.
Container = Tuple[str, np.ndarray]


def _chunk_words(chunk_len: int) -> int:
    return (chunk_len + _WORD_BITS - 1) // _WORD_BITS


def _runs_from_sorted(indices: np.ndarray) -> np.ndarray:
    """Maximal ``[start, stop)`` intervals of a sorted index array."""
    breaks = np.flatnonzero(np.diff(indices) != 1)
    starts = indices[np.concatenate(([0], breaks + 1))]
    stops = indices[np.concatenate((breaks, [len(indices) - 1]))] + 1
    return np.stack([starts, stops], axis=1).astype(np.int32)

def _words_from_sorted(indices: np.ndarray, chunk_len: int) -> np.ndarray:
    flags = np.zeros(_chunk_words(chunk_len) * _WORD_BITS, dtype=bool)
    flags[indices] = True
    return np.packbits(flags, bitorder="little").view(np.uint64)


def _words_from_runs(runs: np.ndarray, chunk_len: int) -> np.ndarray:
    flags = np.zeros(_chunk_words(chunk_len) * _WORD_BITS, dtype=bool)
    for start, stop in runs:
        flags[start:stop] = True
    return np.packbits(flags, bitorder="little").view(np.uint64)


def _sorted_from_words(words: np.ndarray, chunk_len: int) -> np.ndarray:
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")[:chunk_len]
    return np.flatnonzero(bits).astype(np.uint16)


def _sorted_from_runs(runs: np.ndarray) -> np.ndarray:
    return np.concatenate(
        [np.arange(start, stop, dtype=np.uint16) for start, stop in runs]
    )


def _is_full_run(runs: np.ndarray, chunk_len: int) -> bool:
    """True for the single-run container covering the whole chunk."""
    return len(runs) == 1 and runs[0, 0] == 0 and runs[0, 1] == chunk_len


class CompressedBitmap:
    """A chunked container bitmap over the unique-combination space.

    The engine's opaque mask handle: a mapping from chunk index to
    container, absent chunks being all-zero.  Containers are immutable —
    every kernel allocates fresh ones — so copies are shallow and
    containers may be shared between masks and the index.

    Because the bit content never changes after construction, counts are
    memoized on the handle (``cached_cardinality`` / ``cached_weight``)
    and survive :meth:`copy` — the index rows compute their coverage once
    and every mask copied off them answers point queries in O(1).
    """

    __slots__ = ("length", "chunks", "cached_cardinality", "cached_weight")

    def __init__(
        self,
        length: int,
        chunks: Optional[Dict[int, Container]] = None,
        cached_cardinality: Optional[int] = None,
        cached_weight: Optional[int] = None,
    ) -> None:
        self.length = length
        self.chunks = {} if chunks is None else chunks
        self.cached_cardinality = cached_cardinality
        self.cached_weight = cached_weight

    @property
    def nbytes(self) -> int:
        """Container payload bytes (the hot-mask cache's accounting unit)."""
        return sum(data.nbytes for _, data in self.chunks.values())

    def copy(self) -> "CompressedBitmap":
        return CompressedBitmap(
            self.length,
            dict(self.chunks),
            self.cached_cardinality,
            self.cached_weight,
        )

    def cardinality(self) -> int:
        """Number of set bits across every container (memoized)."""
        if self.cached_cardinality is None:
            total = 0
            for kind, data in self.chunks.values():
                if kind == ARRAY:
                    total += len(data)
                elif kind == RUN:
                    total += int((data[:, 1] - data[:, 0]).sum())
                else:
                    total += int(popcount_words(data).sum())
            self.cached_cardinality = total
        return self.cached_cardinality

    def container_kinds(self) -> Dict[int, str]:
        """``{chunk: kind}`` map (test/introspection helper)."""
        return {chunk: kind for chunk, (kind, _) in self.chunks.items()}

    def __repr__(self) -> str:
        kinds = sorted(self.container_kinds().items())
        return f"CompressedBitmap(length={self.length}, chunks={kinds})"


@register_engine
class CompressedEngine(CoverageEngine):
    """Coverage queries over chunked compressed membership vectors.

    Args:
        dataset: the dataset to index.
        mask_cache_size: hot-mask LRU capacity (see :class:`CoverageEngine`).
        array_cutoff: largest container cardinality kept as a sorted
            ``uint16`` array (1..65536; default 4096).  Smaller values
            promote mid-density chunks to bitmap containers sooner.
        run_cutoff: largest interval count kept as a run container
            (default 1024).  Chunks whose runs exceed it fall back to the
            array or bitmap representation, whichever is smaller.
    """

    name = "compressed"

    def __init__(
        self,
        dataset: Dataset,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        array_cutoff: Optional[int] = None,
        run_cutoff: Optional[int] = None,
        kernel_tier: str = None,
    ) -> None:
        super().__init__(
            dataset, mask_cache_size=mask_cache_size, kernel_tier=kernel_tier
        )
        # One validator for constructor and config callers (lazy import:
        # the config module imports this one for its constants).
        from repro.core.engine.config import EngineConfig

        EngineConfig.from_options(
            "compressed",
            array_cutoff=array_cutoff,
            run_cutoff=run_cutoff,
            kernel_tier=kernel_tier,
        )
        self._array_cutoff = (
            DEFAULT_ARRAY_CUTOFF if array_cutoff is None else int(array_cutoff)
        )
        self._run_cutoff = (
            DEFAULT_RUN_CUTOFF if run_cutoff is None else int(run_cutoff)
        )
        unique = self._unique
        u = len(unique)
        self._chunk_count = (u + CHUNK_BITS - 1) // CHUNK_BITS
        self._uniform = bool(u == 0 or self._counts.max(initial=1) == 1)
        # Prefix sums make a run's weighted count O(1) per interval.
        self._cum_counts = (
            None
            if self._uniform
            else np.concatenate(
                ([0], np.cumsum(self._counts, dtype=np.int64))
            )
        )
        # The root mask's chunk map, shared by every full_mask() call
        # (containers are immutable; only the dict is copied per handout).
        self._full_chunks: Dict[int, Container] = {
            chunk: (
                RUN,
                np.array([[0, self._chunk_len(chunk)]], dtype=np.int32),
            )
            for chunk in range(self._chunk_count)
        }
        # _rows[i][v] is the compressed membership vector for attribute i
        # taking value v (the inverted index of Appendix A).  One stable
        # argsort groups the column's positions by value — O(u log u) per
        # attribute instead of one O(u) scan per value, which matters
        # exactly in the high-cardinality regime this backend targets.
        self._rows: List[List[CompressedBitmap]] = []
        for i, cardinality in enumerate(dataset.cardinalities):
            column = unique[:, i] if u else np.zeros(0, dtype=np.int32)
            order = np.argsort(column, kind="stable")
            bounds = np.searchsorted(
                column[order], np.arange(cardinality + 1)
            )
            # Stability keeps each value group's positions ascending, the
            # precondition of the sorted-container builder.
            self._rows.append(
                [
                    self._from_sorted_global(
                        order[bounds[value] : bounds[value + 1]]
                    )
                    for value in range(cardinality)
                ]
            )

    # ------------------------------------------------------------------
    # container construction
    # ------------------------------------------------------------------
    def _chunk_len(self, chunk: int) -> int:
        return min(CHUNK_BITS, self.unique_count - chunk * CHUNK_BITS)

    def _best_container(
        self, local: np.ndarray, chunk_len: int
    ) -> Container:
        """The smallest representation of one chunk's sorted set bits.

        Ties prefer runs (O(1)-per-interval kernels), then arrays.
        """
        cardinality = len(local)
        runs = _runs_from_sorted(local)
        candidates = []
        if len(runs) <= self._run_cutoff:
            candidates.append((runs.nbytes, 0, RUN, runs))
        if cardinality <= self._array_cutoff:
            candidates.append(
                (2 * cardinality, 1, ARRAY, local.astype(np.uint16))
            )
        candidates.append(
            (
                _chunk_words(chunk_len) * 8,
                2,
                BITMAP,
                _words_from_sorted(local, chunk_len),
            )
        )
        _, _, kind, data = min(candidates, key=lambda entry: entry[:2])
        return (kind, data)

    def _from_sorted_global(self, indices: np.ndarray) -> CompressedBitmap:
        """Build a compressed bitmap from sorted global bit positions."""
        u = self.unique_count
        chunks: Dict[int, Container] = {}
        if len(indices):
            chunk_ids = indices >> CHUNK_SHIFT
            splits = np.flatnonzero(np.diff(chunk_ids)) + 1
            for group in np.split(indices, splits):
                chunk = int(group[0]) >> CHUNK_SHIFT
                local = group - chunk * CHUNK_BITS
                chunks[chunk] = self._best_container(
                    local, self._chunk_len(chunk)
                )
        return CompressedBitmap(u, chunks)

    # ------------------------------------------------------------------
    # fused intersect kernels (per container pair)
    # ------------------------------------------------------------------
    def _demote_bitmap(
        self, words: np.ndarray, chunk_len: int
    ) -> Optional[Container]:
        """A bitmap AND result, demoted to a sorted array when it shrank."""
        cardinality = int(popcount_words(words).sum())
        if cardinality == 0:
            return None
        if cardinality <= self._array_cutoff and 2 * cardinality < words.nbytes:
            return (ARRAY, _sorted_from_words(words, chunk_len))
        return (BITMAP, words)

    def _normalize_runs(
        self, runs, chunk_len: int
    ) -> Optional[Container]:
        """An interval-intersection result as its best representation.

        ``runs`` is a ``(k, 2)`` array (or list of pairs) of intervals.
        """
        if len(runs) == 0:
            return None
        data = np.asarray(runs, dtype=np.int32)
        if len(data) <= self._run_cutoff:
            return (RUN, data)
        cardinality = int((data[:, 1] - data[:, 0]).sum())
        if cardinality <= self._array_cutoff:
            return (ARRAY, _sorted_from_runs(data))
        return (BITMAP, _words_from_runs(data, chunk_len))

    def _filter_array(
        self, array: np.ndarray, other: Container, chunk_len: int
    ) -> Optional[Container]:
        """``array AND other`` without leaving the sorted-array domain."""
        kind, data = other
        if kind == ARRAY:
            kept = self._kernels.intersect_sorted(array, data)
        elif kind == BITMAP:
            kept = self._kernels.array_select_bitmap(array, data)
        else:  # RUN
            kept = self._kernels.array_select_runs(array, data)
        if not len(kept):
            return None
        return (ARRAY, kept)

    def _intersect(
        self, a: Container, b: Container, chunk_len: int
    ) -> Optional[Container]:
        """``a AND b`` for one chunk; ``None`` when the result is empty."""
        kind_a, data_a = a
        kind_b, data_b = b
        # Full-run fast path: the root mask (and cardinality-1 attributes)
        # intersect by sharing the other container unchanged.
        if kind_a == RUN and _is_full_run(data_a, chunk_len):
            return b
        if kind_b == RUN and _is_full_run(data_b, chunk_len):
            return a
        if kind_a == ARRAY:
            return self._filter_array(data_a, b, chunk_len)
        if kind_b == ARRAY:
            return self._filter_array(data_b, a, chunk_len)
        if kind_a == BITMAP and kind_b == BITMAP:
            return self._demote_bitmap(
                np.bitwise_and(data_a, data_b), chunk_len
            )
        if kind_a == RUN and kind_b == RUN:
            return self._normalize_runs(
                self._kernels.intersect_runs(data_a, data_b), chunk_len
            )
        # BITMAP x RUN (either order): clip the bitmap by the intervals.
        words = data_a if kind_a == BITMAP else data_b
        runs = data_b if kind_a == BITMAP else data_a
        return self._demote_bitmap(
            np.bitwise_and(words, _words_from_runs(runs, chunk_len)),
            chunk_len,
        )

    def _and(
        self, a: CompressedBitmap, b: CompressedBitmap
    ) -> CompressedBitmap:
        chunks: Dict[int, Container] = {}
        if len(a.chunks) > len(b.chunks):
            a, b = b, a
        for chunk, container in a.chunks.items():
            other = b.chunks.get(chunk)
            if other is None:
                continue
            result = self._intersect(container, other, self._chunk_len(chunk))
            if result is not None:
                chunks[chunk] = result
        return CompressedBitmap(a.length, chunks)

    # ------------------------------------------------------------------
    # counting kernels
    # ------------------------------------------------------------------
    def _weighted_container(
        self, chunk: int, kind: str, data: np.ndarray
    ) -> int:
        """Multiplicity-weighted count of one container."""
        base = chunk * CHUNK_BITS
        if kind == ARRAY:
            return int(self._counts[base + data.astype(np.int64)].sum())
        if kind == RUN:
            cum = self._cum_counts
            if len(data) == 1:
                # Single interval (the overwhelmingly common run shape):
                # two scalar prefix-sum reads, no array arithmetic.
                return int(cum[base + data[0, 1]]) - int(cum[base + data[0, 0]])
            spans = data.astype(np.int64) + base
            return int((cum[spans[:, 1]] - cum[spans[:, 0]]).sum())
        bits = np.unpackbits(data.view(np.uint8), bitorder="little")
        chunk_len = self._chunk_len(chunk)
        return int(bits[:chunk_len] @ self._counts[base : base + chunk_len])

    # ------------------------------------------------------------------
    # mask kernel
    # ------------------------------------------------------------------
    @property
    def index_nbytes(self) -> int:
        return sum(
            row.nbytes for per_value in self._rows for row in per_value
        )

    @property
    def array_cutoff(self) -> int:
        """Largest cardinality stored as a sorted-array container."""
        return self._array_cutoff

    @property
    def run_cutoff(self) -> int:
        """Largest interval count stored as a run container."""
        return self._run_cutoff

    def full_mask(self) -> CompressedBitmap:
        u = self.unique_count
        return CompressedBitmap(
            u, dict(self._full_chunks), u, self._dataset.n
        )

    def value_mask(self, attribute: int, value: int) -> CompressedBitmap:
        return self._rows[attribute][value]

    def restrict(
        self, mask: CompressedBitmap, attribute: int, value: int
    ) -> CompressedBitmap:
        return self._and(mask, self._rows[attribute][value])

    def restrict_children(
        self, mask: CompressedBitmap, attribute: int
    ) -> List[CompressedBitmap]:
        return [self._and(mask, row) for row in self._rows[attribute]]

    def count(self, mask: CompressedBitmap) -> int:
        if self._uniform:
            return mask.cardinality()
        if mask.cached_weight is None:
            total = 0
            for chunk, (kind, data) in mask.chunks.items():
                total += self._weighted_container(chunk, kind, data)
            mask.cached_weight = total
        return mask.cached_weight

    def count_many(self, masks: Sequence[CompressedBitmap]) -> np.ndarray:
        if not len(masks):
            return np.zeros(0, dtype=np.int64)
        return np.fromiter(
            (self.count(mask) for mask in masks),
            dtype=np.int64,
            count=len(masks),
        )

    def mask_to_bool(self, mask: CompressedBitmap) -> np.ndarray:
        selected = np.zeros(self.unique_count, dtype=bool)
        for chunk, (kind, data) in mask.chunks.items():
            base = chunk * CHUNK_BITS
            if kind == ARRAY:
                selected[base + data.astype(np.int64)] = True
            elif kind == RUN:
                for start, stop in data:
                    selected[base + start : base + stop] = True
            else:
                chunk_len = self._chunk_len(chunk)
                bits = np.unpackbits(data.view(np.uint8), bitorder="little")
                selected[base : base + chunk_len] = bits[:chunk_len].astype(
                    bool
                )
        return selected

    def _compute_match_mask(self, pattern) -> CompressedBitmap:
        # Seed the chain with the first index row (full AND row == row)
        # and bail out as soon as the mask empties — sparse domains hit
        # empty intersections constantly.
        indices = pattern.deterministic_indices()
        if not indices:
            return self.full_mask()
        mask = self._rows[indices[0]][pattern[indices[0]]]
        if len(indices) == 1:
            # Containers are immutable, but the chunk map must not alias
            # the index row's — hand out a private (shallow) copy.
            return mask.copy()
        for index in indices[1:]:
            mask = self._and(mask, self._rows[index][pattern[index]])
            if not mask.chunks:
                break
        return mask

    # ------------------------------------------------------------------
    # rebuild support
    # ------------------------------------------------------------------
    def _template_options(self) -> Dict[str, object]:
        options = super()._template_options()
        options.update(
            array_cutoff=self._array_cutoff, run_cutoff=self._run_cutoff
        )
        return options
