"""Compiled kernel tier: one dispatch point for the engines' inner loops.

The MUP walk spends essentially all of its time in three tiny loops —
word-level AND + popcount, sorted-set intersection, and the per-attribute
children probe.  This module registers, per operation, two bit-identical
implementations:

* **python** — the pure numpy code the engines always shipped
  (:func:`~repro.data.bitset.weighted_count` and friends, plus the
  container kernels of the compressed backend).  Always available.
* **jit** — ``numba`` ``@njit(cache=True, nogil=True)`` translations of
  the same loops: a fused AND+popcount scan over stacked word matrices, a
  galloping intersection for long sorted-array containers, run-vs-array
  interval probes, and the vectorized multi-mask children probe.  Only
  available when ``numba`` is importable (``pip install .[jit]``).

Selection is a **feature flag**, resolved by :func:`resolve_kernel_tier`:

==============  ========================================================
tier            meaning
==============  ========================================================
``"auto"``      jit when numba imports, python otherwise (the default)
``"jit"``       force the compiled tier; :class:`EngineError` without numba
``"python"``    force the numpy fallback (ablation / debugging)
==============  ========================================================

The flag travels two ways: the ``REPRO_KERNELS`` environment variable
(process-wide default) and the ``kernel_tier`` field of
:class:`~repro.core.engine.config.EngineConfig` / the ``--kernel-tier``
CLI flag (per engine; an explicit non-auto value beats the environment).
Both tiers are pinned bit-identical by the differential fuzz harness
(``tests/property/test_engine_fuzz.py`` runs a ``packed-jit`` leg in
lockstep with the dense reference).

Nothing in this module imports the engine backends or the config — the
backends import *it* — so the dependency graph stays acyclic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.bitset import weighted_count, weighted_count_rows
from repro.exceptions import EngineError

#: The recognised values of the feature flag (config field / env var).
KERNEL_TIERS = ("auto", "jit", "python")

#: Environment variable carrying the process-wide default tier.
REPRO_KERNELS_ENV = "REPRO_KERNELS"

try:  # pragma: no cover - exercised only with numba installed
    import numba  # noqa: F401
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # the container ships without numba; jit is gated
    numba = None
    njit = None
    NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """Whether the jit tier can be selected in this process."""
    return NUMBA_AVAILABLE


def resolve_kernel_tier(tier: Optional[str] = None) -> str:
    """Resolve a requested tier to a concrete one (``"jit"``/``"python"``).

    ``None`` and ``"auto"`` defer to the ``REPRO_KERNELS`` environment
    variable, then to availability (jit when numba imports, python
    otherwise).  An explicit non-auto argument beats the environment.

    Raises:
        EngineError: on an unknown tier name (argument or environment),
            or when ``"jit"`` is forced and numba is not installed.
    """
    if tier is not None and tier not in KERNEL_TIERS:
        raise EngineError(
            f"kernel_tier must be one of {KERNEL_TIERS}, got {tier!r}"
        )
    if tier is None or tier == "auto":
        env = os.environ.get(REPRO_KERNELS_ENV, "").strip()
        if env:
            if env not in KERNEL_TIERS:
                raise EngineError(
                    f"{REPRO_KERNELS_ENV} must be one of {KERNEL_TIERS}, "
                    f"got {env!r}"
                )
            tier = env
        else:
            tier = "auto"
    if tier == "auto":
        return "jit" if NUMBA_AVAILABLE else "python"
    if tier == "jit" and not NUMBA_AVAILABLE:
        raise EngineError(
            "kernel_tier='jit' requested but numba is not installed; "
            "install the optional extra (pip install '.[jit]') or select "
            "kernel_tier='python' / REPRO_KERNELS=python"
        )
    return tier


# ----------------------------------------------------------------------
# python tier (the reference: the numpy code the engines always ran)
# ----------------------------------------------------------------------
def _py_count(words: np.ndarray, counts: Optional[np.ndarray]) -> int:
    """Weighted popcount of one flat ``uint64`` word array."""
    return weighted_count(words, counts)


def _py_count_rows(
    matrix: np.ndarray, counts: Optional[np.ndarray]
) -> np.ndarray:
    """Weighted count of each row of a ``(k, W)`` word matrix."""
    return weighted_count_rows(matrix, counts)


def _py_and_rows(
    window: np.ndarray, words: np.ndarray, rows: Sequence[int]
) -> np.ndarray:
    """``window AND words[r0] AND words[r1] …`` — a chained restriction."""
    if not len(rows) or words.shape[1] == 0:
        return np.array(window, dtype=np.uint64, copy=True)
    # Fancy indexing copies the selected rows out of the (possibly mmapped)
    # block, so the reduction runs over plain memory.
    acc = np.bitwise_and.reduce(words[list(rows)], axis=0)
    return np.bitwise_and(window, acc)


def _py_and_family(window: np.ndarray, block: np.ndarray) -> np.ndarray:
    """``window AND`` every row of ``block`` — one sibling family."""
    return np.bitwise_and(window[np.newaxis, :], block)


def _py_intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays (sorted, same dtype)."""
    return np.intersect1d(a, b, assume_unique=True)


def _py_array_select_bitmap(
    array: np.ndarray, words: np.ndarray
) -> np.ndarray:
    """The members of sorted ``array`` whose bit is set in ``words``."""
    idx = array.astype(np.int64)
    bits = (words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
    return array[bits.astype(bool)]


def _py_array_select_runs(array: np.ndarray, runs: np.ndarray) -> np.ndarray:
    """The members of sorted ``array`` inside the ``[start, stop)`` runs."""
    idx = array.astype(np.int64)
    position = np.searchsorted(runs[:, 0], idx, side="right") - 1
    inside = (position >= 0) & (idx < runs[np.maximum(position, 0), 1])
    return array[inside]


def _py_intersect_runs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interval intersection of two sorted run lists → ``(k, 2)`` int32."""
    out: List[tuple] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i, 0], b[j, 0])
        stop = min(a[i, 1], b[j, 1])
        if start < stop:
            out.append((int(start), int(stop)))
        if a[i, 1] <= b[j, 1]:
            i += 1
        else:
            j += 1
    return np.array(out, dtype=np.int32).reshape(-1, 2)


# ----------------------------------------------------------------------
# jit tier (numba translations of the same loops; only defined when
# numba imports — the module stays importable without it)
# ----------------------------------------------------------------------
if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
    # SWAR popcount constants as uint64 globals: numba promotes mixed
    # uint64/int literal arithmetic to float64, so every mask and shift
    # must already be a uint64.
    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)
    _U0 = np.uint64(0)
    _U1 = np.uint64(1)
    _U2 = np.uint64(2)
    _U4 = np.uint64(4)
    _U56 = np.uint64(56)

    @njit(cache=True, nogil=True, inline="always")
    def _nb_popcount64(x):
        x = x - ((x >> _U1) & _M1)
        x = (x & _M2) + ((x >> _U2) & _M2)
        x = (x + (x >> _U4)) & _M4
        return (x * _H01) >> _U56

    @njit(cache=True, nogil=True)
    def _nb_popcount_sum(words):
        total = np.int64(0)
        for i in range(words.size):
            total += np.int64(_nb_popcount64(words[i]))
        return total

    @njit(cache=True, nogil=True)
    def _nb_weighted_sum(words, counts):
        total = np.int64(0)
        for i in range(words.size):
            w = words[i]
            base = i * 64
            while w != _U0:
                low = w & (_U0 - w)  # lowest set bit
                bit = np.int64(_nb_popcount64(low - _U1))
                total += counts[base + bit]
                w ^= low
        return total

    @njit(cache=True, nogil=True)
    def _nb_count_rows(matrix):
        out = np.empty(matrix.shape[0], dtype=np.int64)
        for r in range(matrix.shape[0]):
            total = np.int64(0)
            for i in range(matrix.shape[1]):
                total += np.int64(_nb_popcount64(matrix[r, i]))
            out[r] = total
        return out

    @njit(cache=True, nogil=True)
    def _nb_weighted_count_rows(matrix, counts):
        out = np.empty(matrix.shape[0], dtype=np.int64)
        for r in range(matrix.shape[0]):
            out[r] = _nb_weighted_sum(matrix[r], counts)
        return out

    @njit(cache=True, nogil=True)
    def _nb_and_rows(window, words, rows):
        out = np.empty(window.size, dtype=np.uint64)
        for i in range(window.size):
            acc = window[i]
            for r in rows:
                acc &= words[r, i]
            out[i] = acc
        return out

    @njit(cache=True, nogil=True)
    def _nb_and_family(window, block):
        out = np.empty_like(block)
        for r in range(block.shape[0]):
            for i in range(block.shape[1]):
                out[r, i] = window[i] & block[r, i]
        return out

    @njit(cache=True, nogil=True)
    def _nb_gallop_intersect(a, b):
        out = np.empty(min(a.size, b.size), dtype=a.dtype)
        i = j = k = 0
        while i < a.size and j < b.size:
            va = a[i]
            vb = b[j]
            if va == vb:
                out[k] = va
                k += 1
                i += 1
                j += 1
            elif va < vb:
                # Gallop: double the step until overshooting vb, then
                # binary-search the bracketed range — O(log gap) per skip,
                # the win on length-imbalanced containers.
                step = 1
                while i + step < a.size and a[i + step] < vb:
                    step <<= 1
                lo = i + (step >> 1)
                hi = min(i + step, a.size)
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if a[mid] < vb:
                        lo = mid + 1
                    else:
                        hi = mid
                i = lo
            else:
                step = 1
                while j + step < b.size and b[j + step] < va:
                    step <<= 1
                lo = j + (step >> 1)
                hi = min(j + step, b.size)
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if b[mid] < va:
                        lo = mid + 1
                    else:
                        hi = mid
                j = lo
        return out[:k]

    @njit(cache=True, nogil=True)
    def _nb_array_select_bitmap(array, words):
        out = np.empty(array.size, dtype=array.dtype)
        k = 0
        for i in range(array.size):
            idx = np.int64(array[i])
            if (words[idx >> 6] >> np.uint64(idx & 63)) & _U1:
                out[k] = array[i]
                k += 1
        return out[:k]

    @njit(cache=True, nogil=True)
    def _nb_array_select_runs(array, runs):
        out = np.empty(array.size, dtype=array.dtype)
        k = 0
        j = 0
        for i in range(array.size):
            idx = np.int64(array[i])
            while j < runs.shape[0] and runs[j, 1] <= idx:
                j += 1
            if j < runs.shape[0] and runs[j, 0] <= idx:
                out[k] = array[i]
                k += 1
        return out[:k]

    @njit(cache=True, nogil=True)
    def _nb_intersect_runs(a, b):
        out = np.empty((a.shape[0] + b.shape[0], 2), dtype=np.int32)
        i = j = k = 0
        while i < a.shape[0] and j < b.shape[0]:
            start = max(a[i, 0], b[j, 0])
            stop = min(a[i, 1], b[j, 1])
            if start < stop:
                out[k, 0] = start
                out[k, 1] = stop
                k += 1
            if a[i, 1] <= b[j, 1]:
                i += 1
            else:
                j += 1
        return out[:k]

    # Thin wrappers: empty/degenerate inputs short-circuit in python (numba
    # typing needs non-trivial arrays) and layouts are made contiguous,
    # then the compiled loop runs.  Results are bit-identical to the
    # python tier — the fuzz harness pins it.
    def _jit_count(words: np.ndarray, counts: Optional[np.ndarray]) -> int:
        words = np.ascontiguousarray(words)
        if words.size == 0:
            return 0
        if counts is None:
            return int(_nb_popcount_sum(words.reshape(-1)))
        return int(
            _nb_weighted_sum(words.reshape(-1), np.ascontiguousarray(counts))
        )

    def _jit_count_rows(
        matrix: np.ndarray, counts: Optional[np.ndarray]
    ) -> np.ndarray:
        matrix = np.ascontiguousarray(matrix)
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            return np.zeros(matrix.shape[0], dtype=np.int64)
        if counts is None:
            return _nb_count_rows(matrix)
        return _nb_weighted_count_rows(matrix, np.ascontiguousarray(counts))

    def _jit_and_rows(
        window: np.ndarray, words: np.ndarray, rows: Sequence[int]
    ) -> np.ndarray:
        if not len(rows) or words.shape[1] == 0:
            return np.array(window, dtype=np.uint64, copy=True)
        return _nb_and_rows(
            np.ascontiguousarray(window),
            np.ascontiguousarray(words),
            np.asarray(list(rows), dtype=np.int64),
        )

    def _jit_and_family(window: np.ndarray, block: np.ndarray) -> np.ndarray:
        if block.size == 0:
            return _py_and_family(window, block)
        return _nb_and_family(
            np.ascontiguousarray(window), np.ascontiguousarray(block)
        )

    def _jit_intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.size == 0 or b.size == 0:
            return _py_intersect_sorted(a, b)
        return _nb_gallop_intersect(
            np.ascontiguousarray(a), np.ascontiguousarray(b)
        )

    def _jit_array_select_bitmap(
        array: np.ndarray, words: np.ndarray
    ) -> np.ndarray:
        if array.size == 0:
            return array
        return _nb_array_select_bitmap(
            np.ascontiguousarray(array), np.ascontiguousarray(words)
        )

    def _jit_array_select_runs(
        array: np.ndarray, runs: np.ndarray
    ) -> np.ndarray:
        if array.size == 0 or runs.shape[0] == 0:
            return _py_array_select_runs(array, runs)
        return _nb_array_select_runs(
            np.ascontiguousarray(array), np.ascontiguousarray(runs)
        )

    def _jit_intersect_runs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.shape[0] == 0 or b.shape[0] == 0:
            return np.zeros((0, 2), dtype=np.int32)
        return _nb_intersect_runs(
            np.ascontiguousarray(a), np.ascontiguousarray(b)
        )


# ----------------------------------------------------------------------
# the dispatch namespace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Kernels:
    """One tier's implementations of every registered hot-path operation.

    Engines hold one of these (``engine.kernels``) and call through it, so
    the tier decision is made once per engine, not per query.

    Attributes:
        tier: the resolved tier (``"jit"`` or ``"python"``).
        count: ``(words, counts|None) -> int`` — weighted popcount of a
            flat word array.
        count_rows: ``((k, W) matrix, counts|None) -> (k,) int64`` — the
            fused AND+popcount scan's counting half, one count per mask.
        and_rows: ``(window, (R, W) words, row ids) -> window'`` — chained
            AND of index rows into a mask window.
        and_family: ``(window, (c, W) block) -> (c, W)`` — the vectorized
            multi-mask children probe behind ``restrict_children``.
        intersect_sorted: ``(sorted a, sorted b) -> sorted`` — set
            intersection of sorted-array containers (galloping under jit).
        array_select_bitmap: ``(sorted array, words) -> sorted`` — members
            of an array container present in a bitmap container.
        array_select_runs: ``(sorted array, (r, 2) runs) -> sorted`` —
            members of an array container inside run intervals.
        intersect_runs: ``((r, 2) a, (s, 2) b) -> (k, 2) int32`` — interval
            intersection of two run containers.
    """

    tier: str
    count: Callable[..., int]
    count_rows: Callable[..., np.ndarray]
    and_rows: Callable[..., np.ndarray]
    and_family: Callable[..., np.ndarray]
    intersect_sorted: Callable[..., np.ndarray]
    array_select_bitmap: Callable[..., np.ndarray]
    array_select_runs: Callable[..., np.ndarray]
    intersect_runs: Callable[..., np.ndarray]


PYTHON_KERNELS = Kernels(
    tier="python",
    count=_py_count,
    count_rows=_py_count_rows,
    and_rows=_py_and_rows,
    and_family=_py_and_family,
    intersect_sorted=_py_intersect_sorted,
    array_select_bitmap=_py_array_select_bitmap,
    array_select_runs=_py_array_select_runs,
    intersect_runs=_py_intersect_runs,
)

JIT_KERNELS: Optional[Kernels] = (
    Kernels(
        tier="jit",
        count=_jit_count,
        count_rows=_jit_count_rows,
        and_rows=_jit_and_rows,
        and_family=_jit_and_family,
        intersect_sorted=_jit_intersect_sorted,
        array_select_bitmap=_jit_array_select_bitmap,
        array_select_runs=_jit_array_select_runs,
        intersect_runs=_jit_intersect_runs,
    )
    if NUMBA_AVAILABLE
    else None
)


def get_kernels(tier: Optional[str] = None) -> Kernels:
    """The :class:`Kernels` namespace for a (possibly unresolved) tier."""
    resolved = resolve_kernel_tier(tier)
    if resolved == "jit":
        return JIT_KERNELS
    return PYTHON_KERNELS
