"""Workload-aware engine planning: the ``"auto"`` backend.

After three PRs of backend growth (dense → packed → sharded → out-of-core)
the right execution strategy depends on the dataset: a 60-row categorical
table wants the zero-overhead dense vectors, a million-row index wants
packed words, and an index bigger than RAM has to stream through the mmap
shard store.  Hand-picking that per call does not scale to "as many
scenarios as you can imagine"; this module makes the system pick for
itself.

:func:`plan_engine` inspects **cheap, index-free statistics** of the
workload (:class:`WorkloadStats`: row count, attribute cardinalities, the
projected distinct-combination count and packed-index bytes derived from
them, available memory and cores — all O(d) arithmetic, no ``np.unique``
pass) and emits an :class:`EnginePlan`: a concrete, validated
:class:`~repro.core.engine.config.EngineConfig` plus a human-readable
rationale (the CLI prints it under ``--explain-plan``).  The escalation
ladder:

========================  =====================================================
projected packed index    chosen backend
========================  =====================================================
dense index ≤ 256 KiB     ``dense`` — unpacked bools beat packing overhead
sparse value domain       ``compressed`` — chunked containers, when the
                          index density sits under the sparsity cutoff and
                          the calibrated cost model favours them
≤ single-index ceiling    ``packed`` — 8× smaller index, word-level popcount
≤ memory budget           ``sharded`` — bounded per-kernel working sets,
                          thread fan-out once the index is worth splitting
> memory budget           ``sharded`` out-of-core — spill + mmap streaming
                          under ``max_resident_bytes`` = the budget
========================  =====================================================

The packed → sharded boundary is no longer a bare byte constant: it is
derived from a calibrated cost model (measured fused-kernel scan
throughput × a per-query latency target), and the packed → compressed
decision compares the two representations' projected scan work — bytes ×
relative per-byte cost — instead of adding another hard ceiling.

Explicitly requested knobs are **constraints, not suggestions**: ``shards``
/ ``workers`` / ``workers_mode`` force at least the sharded backend,
``spill_dir`` forces the out-of-core mode, ``array_cutoff`` /
``run_cutoff`` force the compressed backend, and ``max_resident_bytes``
(on ``backend="auto"``) sets the memory budget the escalation compares
against.  Plans are deterministic functions of ``(stats, requested
config)``, which the property suite pins.

Every future backend (network shard placement, incremental spill reuse)
slots in behind this single decision point.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from repro.core.engine.compressed import CHUNK_BITS, DEFAULT_ARRAY_CUTOFF
from repro.core.engine.config import AUTO, EngineConfig
from repro.core.engine.kernels import resolve_kernel_tier
from repro.core.engine.sharded import DEFAULT_SHARDS
from repro.data.dataset import Dataset
from repro.exceptions import EngineError

_WORD_BITS = 64

#: Keep the dense reference representation while its bool index fits here.
DENSE_MAX_INDEX_BYTES = 256 << 10

#: Hierarchy query shape: dense indices up to this multiple of the normal
#: ceiling still plan dense.  The hierarchical search builds one
#: short-lived engine per stack level over a pre-aggregated roll-up, so
#: dense's near-zero build cost and branch-free bool masks beat the
#: packed/compressed per-query constants that dominate the few hundred
#: batched counts each level actually issues.
HIERARCHY_DENSE_MULTIPLE = 16

#: Calibrated effective scan throughput of the fused packed kernels
#: (bytes/second), measured by benchmarks/bench_planner.py smoke runs and
#: set conservatively so slower machines still escalate in time.
PACKED_SCAN_BYTES_PER_SECOND = 4 << 30

#: Per-query latency target one flat index scan should stay under before
#: sharding pays for its bounded per-kernel working sets.
SINGLE_INDEX_TARGET_SECONDS = 0.008

#: Keep a single packed index while one scan of it meets the latency
#: target.  (Previously a hard-coded 32 MiB byte ceiling; now derived
#: from the calibrated cost model above — same operating point, but the
#: knobs are measurable quantities.)  This is the point-shape / python-tier
#: operating point; :func:`_single_index_ceiling` scales it by the query
#: shape and the active kernel tier.
PACKED_MAX_INDEX_BYTES = int(
    PACKED_SCAN_BYTES_PER_SECOND * SINGLE_INDEX_TARGET_SECONDS
)

#: Query shapes the cost model distinguishes.  ``"point"`` — latency-bound
#: streams of single-pattern probes (DeepDiver's DFS: one mask op per
#: node); ``"batch"`` — throughput-bound level sweeps (apriori / naive /
#: pattern-breaker: whole frontiers per call), where a longer single scan
#: amortizes over the batch and sharding's dispatch overhead hurts more;
#: ``"sweep"`` — the amortized multi-threshold mode
#: (:mod:`repro.analysis.sweep`), batch-heavy *and* further amortized
#: because one counting pass classifies a pattern for every τ at once;
#: ``"hierarchy"`` — the coarse-to-fine generalization-lattice mode
#: (:mod:`repro.analysis.hierarchy`), batch-heavy level sweeps whose finer
#: levels skip counting inside regions a coarser rollup already proved
#: uncovered, so each remaining scan serves extra classification work.
QUERY_SHAPES = ("point", "batch", "sweep", "hierarchy")

#: Effective scan-throughput multiplier of the jit kernel tier over the
#: numpy tier (conservative; bench_kernels.py measures >= 5x on the fused
#: AND+popcount scan).  A jit-backed index can be this much larger and
#: still meet the same latency target.
JIT_SCAN_SPEEDUP = 4.0

#: Latency target for one scan serving a *batch* of queries: a level
#: sweep answers a whole frontier per scan, so per-scan latency may relax
#: by the typical frontier amortization before sharding pays off.
BATCH_LATENCY_TARGET_SECONDS = SINGLE_INDEX_TARGET_SECONDS * 4

#: Latency target for one scan in the amortized threshold-sweep mode: on
#: top of the batch amortization, each counted pattern is classified for
#: the *entire* τ range, so a scan may take this much longer before the
#: per-(pattern, τ) cost exceeds the point-shape budget.
SWEEP_LATENCY_TARGET_SECONDS = BATCH_LATENCY_TARGET_SECONDS * 2

#: Latency target for one scan in the hierarchical drill-down mode: level
#: sweeps over a stack of rollups where coarse tables pre-classify part of
#: every finer frontier — less amortization than a full τ sweep (each
#: level still answers a single τ), more than a flat batch.
HIERARCHY_LATENCY_TARGET_SECONDS = BATCH_LATENCY_TARGET_SECONDS * 1.5

_SHAPE_LATENCY_TARGETS = {
    "point": SINGLE_INDEX_TARGET_SECONDS,
    "batch": BATCH_LATENCY_TARGET_SECONDS,
    "sweep": SWEEP_LATENCY_TARGET_SECONDS,
    "hierarchy": HIERARCHY_LATENCY_TARGET_SECONDS,
}


def _single_index_ceiling(query_shape: str, kernel_tier: str) -> int:
    """Largest packed index one flat scan may cover, per shape x tier.

    The point-shape / python-tier corner equals
    :data:`PACKED_MAX_INDEX_BYTES`, so the pre-shape escalation boundaries
    are unchanged there; jit kernels, batch amortization, and sweep
    cross-threshold amortization each raise the ceiling multiplicatively.
    """
    target = _SHAPE_LATENCY_TARGETS[query_shape]
    throughput = PACKED_SCAN_BYTES_PER_SECOND * (
        JIT_SCAN_SPEEDUP if kernel_tier == "jit" else 1.0
    )
    return int(throughput * target)

#: Per-byte scan cost of the chunked compressed kernels relative to the
#: fused packed kernels.  benchmarks/bench_compressed.py measures the
#: sparse-end per-byte factor *below* parity (the array kernels touch
#: only set positions), so this is a safety margin for weighted-count-
#: heavy shapes near the sparsity cutoff, not a python-dispatch penalty.
COMPRESSED_SCAN_COST_RATIO = 1.25

#: Index density (``d / Σ c_i`` — the fraction of index bits set) at or
#: below which a value domain counts as sparse; the measured cutoff the
#: compressed-vs-packed decision starts from.
SPARSE_INDEX_DENSITY = 1 / 32

#: Target bytes per shard when the planner sizes a sharded index.
SHARD_TARGET_BYTES = 8 << 20

#: Fan kernels out over workers only once the index amortizes the pool.
WORKER_MIN_INDEX_BYTES = 64 << 20

#: Planner shard/worker ceilings (requested values are never clamped).
MAX_PLANNED_SHARDS = 1024
MAX_PLANNED_WORKERS = 8

#: Socket fan-out rung: once the projected shard bytes exceed this many
#: times the single-host memory budget, one host's process pool is
#: assumed saturated and the plan escalates to distributed socket workers.
SOCKET_BUDGET_MULTIPLE = 4

#: Fraction of available memory the planner budgets for one index.
MEMORY_BUDGET_FRACTION = 0.5

#: Memory assumed when the platform exposes no measurement at all.
FALLBACK_MEMORY_BYTES = 4 << 30


def _default_spill_root() -> str:
    """Disk-backed default spill root for planner-chosen out-of-core runs.

    ``tempfile.gettempdir()`` honors ``$TMPDIR`` (explicit user intent),
    but its ``/tmp`` fallback is a RAM-backed tmpfs on many Linux systems
    — the worst place to spill an index that, by definition, exceeds the
    memory budget — so ``/var/tmp`` (persistent and disk-backed per the
    FHS) is preferred when writable.
    """
    if os.environ.get("TMPDIR"):
        return tempfile.gettempdir()
    var_tmp = "/var/tmp"
    if os.path.isdir(var_tmp) and os.access(var_tmp, os.W_OK):
        return var_tmp
    return tempfile.gettempdir()


def _probe_available_memory() -> int:
    """Best-effort available physical memory (never raises).

    Prefers ``MemAvailable`` from ``/proc/meminfo`` (Linux), falls back to
    total physical memory via ``sysconf``, then to a conservative 4 GiB
    constant on platforms exposing neither.
    """
    try:
        with open("/proc/meminfo") as handle:
            match = re.search(r"MemAvailable:\s+(\d+) kB", handle.read())
        if match:
            return int(match.group(1)) * 1024
    except OSError:
        pass
    try:
        return os.sysconf("SC_PHYS_PAGES") * os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        return FALLBACK_MEMORY_BYTES


#: Process-level cache of the memory probe (``None`` = not probed yet) and
#: the explicit test/embedder override layered above it.
_MEMORY_BYTES_CACHE: Optional[int] = None
_MEMORY_BYTES_OVERRIDE: Optional[int] = None


def available_memory_bytes() -> int:
    """Available physical memory, probed once per process.

    Repeated ``plan_engine`` calls (sweep loops, incremental rebuilds) used
    to re-read ``/proc/meminfo`` every time; the probe result now caches
    for the process lifetime.  :func:`set_available_memory_bytes` overrides
    it explicitly (tests, embedders with their own budget policy).
    """
    global _MEMORY_BYTES_CACHE
    if _MEMORY_BYTES_OVERRIDE is not None:
        return _MEMORY_BYTES_OVERRIDE
    if _MEMORY_BYTES_CACHE is None:
        _MEMORY_BYTES_CACHE = _probe_available_memory()
    return _MEMORY_BYTES_CACHE


def set_available_memory_bytes(value: Optional[int]) -> None:
    """Override (or, with ``None``, re-arm) the cached memory probe.

    Also invalidates the memoized :meth:`WorkloadStats.of` snapshots —
    they embed the budget derived from the probed value.
    """
    global _MEMORY_BYTES_CACHE, _MEMORY_BYTES_OVERRIDE
    if value is not None:
        value = int(value)
        if value < 1:
            raise EngineError(
                f"available memory override must be >= 1 byte, got {value}"
            )
    _MEMORY_BYTES_OVERRIDE = value
    _MEMORY_BYTES_CACHE = None
    invalidate_stats_cache()


def _project_compressed_bytes(
    cardinalities: Tuple[int, ...], unique: int
) -> int:
    """Projected compressed-index bytes from the schema alone.

    Each attribute value's membership vector carries ``~unique/c_i`` set
    bits; chunks whose expected population fits a sorted array cost two
    bytes per set bit, denser chunks fall back to bitmap words.  An upper
    bound like the other projections — run containers only shrink it.
    """
    if unique <= 0:
        return 0
    chunks = (unique + CHUNK_BITS - 1) // CHUNK_BITS
    total = 0.0
    for cardinality in cardinalities:
        expected_per_chunk = CHUNK_BITS / max(cardinality, 1)
        if expected_per_chunk <= DEFAULT_ARRAY_CUTOFF:
            per_row = 2.0 * unique / max(cardinality, 1)
        else:
            per_row = chunks * (CHUNK_BITS // 8)
        total += cardinality * per_row
    return int(total)


def _fmt_bytes(nbytes: int) -> str:
    """Human-readable byte count for rationale lines."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.0f} {unit}" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    return f"{nbytes} B"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class WorkloadStats:
    """Cheap, index-free statistics the planner decides on.

    All projections are upper bounds derived from the schema and row
    count alone (no aggregation pass): the distinct-combination count is
    capped by both ``rows`` and ``Π c_i``, and the index byte projections
    follow from it and ``Σ c_i``.

    Attributes:
        rows: number of tuples ``n``.
        d: number of attributes of interest.
        cardinalities: attribute cardinalities ``c_1..c_d``.
        projected_unique: projected distinct value combinations
            (``min(n, Π c_i)``).
        projected_packed_bytes: projected packed-index word bytes
            (``Σ c_i × ⌈unique/64⌉ × 8``).
        projected_dense_bytes: projected dense bool-index bytes
            (``Σ c_i × unique``).
        memory_budget_bytes: bytes the plan may keep resident.
        cpu_count: cores available for worker fan-out.
        index_density: fraction of index bits set, ``d / Σ c_i`` (each
            unique combination sets exactly one bit per attribute) — the
            measured sparsity the compressed-vs-packed decision reads.
            Derived when not supplied.
        projected_compressed_bytes: projected compressed-index bytes
            (container arithmetic over the schema).  Derived when not
            supplied.
        query_shape: the workload's query shape — ``"point"`` for
            latency-bound single-pattern streams (DFS traversals),
            ``"batch"`` for throughput-bound level sweeps.  Defaults to
            the conservative ``"point"``.
        kernel_tier: the resolved kernel tier the cost model assumes
            (``"jit"``/``"python"``); ``None`` resolves through
            :func:`~repro.core.engine.kernels.resolve_kernel_tier` (env,
            then availability) at construction.
    """

    rows: int
    d: int
    cardinalities: Tuple[int, ...]
    projected_unique: int
    projected_packed_bytes: int
    projected_dense_bytes: int
    memory_budget_bytes: int
    cpu_count: int
    index_density: Optional[float] = None
    projected_compressed_bytes: Optional[int] = None
    query_shape: str = "point"
    kernel_tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise EngineError(f"rows must be >= 0, got {self.rows}")
        if self.memory_budget_bytes < 1:
            raise EngineError(
                f"memory budget must be >= 1 byte, got {self.memory_budget_bytes}"
            )
        if self.query_shape not in QUERY_SHAPES:
            raise EngineError(
                f"query_shape must be one of {QUERY_SHAPES}, "
                f"got {self.query_shape!r}"
            )
        # Resolve the tier to a concrete one ("jit"/"python") so the cost
        # model never reasons about an unavailable tier: a forced-jit
        # request without numba raises here, which is also the guarantee
        # that no plan ever *returns* assuming a tier this process lacks.
        object.__setattr__(
            self, "kernel_tier", resolve_kernel_tier(self.kernel_tier)
        )
        # Derive the sparsity measures when a hand-rolled snapshot (tests,
        # benchmarks) leaves them out, so every snapshot is complete.
        if self.index_density is None:
            total = sum(self.cardinalities)
            object.__setattr__(
                self, "index_density", (self.d / total) if total else 1.0
            )
        if self.projected_compressed_bytes is None:
            object.__setattr__(
                self,
                "projected_compressed_bytes",
                _project_compressed_bytes(
                    self.cardinalities, self.projected_unique
                ),
            )

    @classmethod
    def of(
        cls, dataset: Dataset, memory_budget: Optional[int] = None
    ) -> "WorkloadStats":
        """Collect the statistics for ``dataset`` (memoized).

        ``memory_budget`` overrides the probed default (half the available
        physical memory); it is how an ``EngineConfig(backend="auto",
        max_resident_bytes=...)`` budget reaches the planner.

        Snapshots are memoized per ``dataset.content_fingerprint()`` (plus
        the requested budget and the process-default kernel tier), so
        repeated ``--engine auto`` resolutions — incremental index
        rebuilds, sweep loops — don't redo the arithmetic or the memory
        probe.  :func:`stats_cache_info` exposes the hit/miss counters;
        :func:`invalidate_stats_cache` drops entries when a dataset's
        content changes (the incremental index calls it on delivery).
        """
        key = (
            dataset.content_fingerprint(),
            memory_budget,
            resolve_kernel_tier(None),
        )
        with _STATS_LOCK:
            cached = _STATS_CACHE.get(key)
            if cached is not None:
                _STATS_COUNTERS["hits"] += 1
                _STATS_CACHE.move_to_end(key)
                return cached
            _STATS_COUNTERS["misses"] += 1
        cardinalities = tuple(int(c) for c in dataset.cardinalities)
        combinations = 1
        for cardinality in cardinalities:
            combinations *= cardinality
            if combinations >= dataset.n:
                combinations = dataset.n
                break
        unique = min(dataset.n, combinations)
        words = (unique + _WORD_BITS - 1) // _WORD_BITS
        row_total = sum(cardinalities)
        if memory_budget is None:
            memory_budget = max(
                1, int(available_memory_bytes() * MEMORY_BUDGET_FRACTION)
            )
        stats = cls(
            rows=dataset.n,
            d=dataset.d,
            cardinalities=cardinalities,
            projected_unique=unique,
            projected_packed_bytes=row_total * words * 8,
            projected_dense_bytes=row_total * unique,
            memory_budget_bytes=int(memory_budget),
            cpu_count=os.cpu_count() or 1,
        )
        with _STATS_LOCK:
            # A concurrent WorkloadStats.of may have won the race while the
            # snapshot was being derived; keep the first-inserted instance
            # so every caller shares one object, as memoization promises.
            winner = _STATS_CACHE.get(key)
            if winner is not None:
                _STATS_CACHE.move_to_end(key)
                return winner
            _STATS_CACHE[key] = stats
            while len(_STATS_CACHE) > STATS_CACHE_MAX_ENTRIES:
                _STATS_CACHE.popitem(last=False)
                _STATS_COUNTERS["evictions"] += 1
        return stats


#: The stats memo is process-global and the serving layer plans from many
#: threads at once, so every access goes through this lock; the LRU bound
#: keeps a long-lived server that touches many datasets from growing the
#: memo forever.
STATS_CACHE_MAX_ENTRIES = 256

#: Memoized WorkloadStats snapshots, keyed by (content fingerprint,
#: requested budget, process-default kernel tier); the stats are frozen,
#: so sharing one instance across planner calls is safe.  Insertion order
#: doubles as recency (hits move_to_end) for the LRU bound above.
_STATS_CACHE: "OrderedDict[Tuple, WorkloadStats]" = OrderedDict()
_STATS_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}
_STATS_LOCK = threading.Lock()


def stats_cache_info() -> Dict[str, int]:
    """Hit/miss/eviction counters and occupancy of the stats memo."""
    with _STATS_LOCK:
        return {
            "hits": _STATS_COUNTERS["hits"],
            "misses": _STATS_COUNTERS["misses"],
            "evictions": _STATS_COUNTERS["evictions"],
            "entries": len(_STATS_CACHE),
            "max_entries": STATS_CACHE_MAX_ENTRIES,
        }


def invalidate_stats_cache(fingerprint: Optional[str] = None) -> None:
    """Drop memoized stats — all of them, or one dataset fingerprint's.

    Call with the old content fingerprint when a dataset's rows change
    (the incremental index does this on every delivery) so the next auto
    plan re-derives its projections instead of reusing stale ones.
    """
    with _STATS_LOCK:
        if fingerprint is None:
            _STATS_CACHE.clear()
            return
        for key in [k for k in _STATS_CACHE if k[0] == fingerprint]:
            del _STATS_CACHE[key]


@dataclass(frozen=True)
class EnginePlan:
    """The planner's decision: a concrete config plus its justification.

    Attributes:
        config: a validated, non-auto :class:`EngineConfig` ready to build.
        stats: the workload statistics the decision was made on.
        rationale: human-readable decision trail, one step per line.
    """

    config: EngineConfig
    stats: WorkloadStats
    rationale: Tuple[str, ...]

    def describe(self) -> str:
        """Multi-line rendering for ``--explain-plan`` and logs."""
        stats = self.stats
        lines = [
            f"engine plan: {self.config.describe()}",
            f"  workload: rows={stats.rows} d={stats.d} "
            f"cardinalities={list(stats.cardinalities)} "
            f"projected_unique={stats.projected_unique}",
            f"  projections: packed index ~{_fmt_bytes(stats.projected_packed_bytes)}, "
            f"dense index ~{_fmt_bytes(stats.projected_dense_bytes)}, "
            f"compressed index ~{_fmt_bytes(stats.projected_compressed_bytes)} "
            f"(density {stats.index_density:.4f}), "
            f"memory budget {_fmt_bytes(stats.memory_budget_bytes)}, "
            f"cores={stats.cpu_count}",
            f"  cost model: query shape '{stats.query_shape}' on "
            f"{stats.kernel_tier} kernels -> single-index ceiling "
            f"{_fmt_bytes(_single_index_ceiling(stats.query_shape, stats.kernel_tier))}",
        ]
        lines.extend(f"  - {line}" for line in self.rationale)
        return "\n".join(lines)

    def build(self, dataset: Dataset):
        """Build the planned engine for ``dataset``."""
        return self.config(dataset)


def plan_engine(
    source: Union[Dataset, WorkloadStats],
    requested: Union[EngineConfig, str, None] = None,
    query_shape: Optional[str] = None,
) -> EnginePlan:
    """Choose an execution strategy for a workload.

    Args:
        source: the dataset to plan for, or a precomputed
            :class:`WorkloadStats` snapshot (plans are deterministic
            functions of the snapshot — the property tests rely on it).
        requested: the caller's :class:`EngineConfig` (or backend name).
            A non-``auto`` backend short-circuits to a "hand-picked" plan;
            under ``auto``, set fields constrain the decision as described
            in the module docstring.
        query_shape: the workload's query shape (``"point"`` /
            ``"batch"``), usually inferred from the calling algorithm
            (:func:`repro.core.mups.base.algorithm_query_shape`).  Batch
            shapes relax the single-index latency ceiling, so the same
            dataset may plan packed for an apriori level sweep where a
            DeepDiver point stream plans sharded.  ``None`` keeps the
            snapshot's shape (``"point"`` by default).

    Returns:
        An :class:`EnginePlan` whose ``config`` is concrete and valid.

    Raises:
        EngineError: invalid request — including ``kernel_tier="jit"``
            when numba is unavailable: the planner refuses to emit a plan
            whose cost model assumed a tier the process cannot run.
    """
    if requested is None:
        requested = EngineConfig(backend=AUTO)
    elif isinstance(requested, str):
        requested = EngineConfig(backend=requested)
    # Resolve the tier once, up front: an explicit config tier beats the
    # environment, and forcing jit without numba fails here — before any
    # decision could be made on a throughput the process cannot deliver.
    tier = resolve_kernel_tier(requested.kernel_tier)
    if isinstance(source, WorkloadStats):
        stats = source
        if requested.is_auto and requested.max_resident_bytes is not None:
            stats = replace(
                stats, memory_budget_bytes=requested.max_resident_bytes
            )
    else:
        stats = WorkloadStats.of(
            source,
            memory_budget=(
                requested.max_resident_bytes if requested.is_auto else None
            ),
        )
    if stats.query_shape != (query_shape or stats.query_shape) or (
        stats.kernel_tier != tier
    ):
        stats = replace(
            stats,
            query_shape=query_shape or stats.query_shape,
            kernel_tier=tier,
        )

    if not requested.is_auto:
        return EnginePlan(
            config=requested,
            stats=stats,
            rationale=(
                f"backend {requested.backend!r} was hand-picked; "
                f"planner not consulted",
            ),
        )

    rationale = []
    budget = stats.memory_budget_bytes
    packed_bytes = stats.projected_packed_bytes
    compressed_bytes = stats.projected_compressed_bytes
    ceiling = _single_index_ceiling(stats.query_shape, stats.kernel_tier)
    shape_reasons = {
        "point": "point-heavy query shape (latency-bound probes)",
        "batch": "batch-heavy query shape (level sweeps amortize scans)",
        "sweep": "sweep query shape (one counting pass classifies every τ)",
        "hierarchy": (
            "hierarchy query shape (coarse rollups pre-classify finer "
            "frontiers)"
        ),
    }
    rationale.append(
        f"{shape_reasons[stats.query_shape]} on "
        f"{stats.kernel_tier} kernels -> single-index ceiling "
        f"{_fmt_bytes(ceiling)}"
    )
    forced_out_of_core = (
        requested.spill_dir is not None
        or requested.workers_mode in ("process", "socket")
        or requested.worker_endpoints is not None
        or bool(requested.delta_spill)
    )
    forced_sharded = forced_out_of_core or any(
        value is not None
        for value in (requested.shards, requested.workers, requested.workers_mode)
    )
    forced_compressed = any(
        value is not None
        for value in (requested.array_cutoff, requested.run_cutoff)
    )
    # The compressed-vs-packed cost model: the domain must measure sparse,
    # and the compressed index's projected scan work (bytes x relative
    # per-byte cost) must undercut the packed scan.
    sparse_domain = stats.index_density <= SPARSE_INDEX_DENSITY
    compressed_wins = (
        compressed_bytes * COMPRESSED_SCAN_COST_RATIO < packed_bytes
    )
    # Compressed can also stand in for a *single* flat index where packed
    # would have to shard: its cost-scaled scan must meet the same
    # latency-target ceiling the packed index is held to.
    compressed_single_index = (
        sparse_domain
        and compressed_wins
        and compressed_bytes * COMPRESSED_SCAN_COST_RATIO <= ceiling
    )

    if forced_compressed:
        rationale.append(
            "compressed backend forced by explicit container-threshold "
            "request (array_cutoff / run_cutoff)"
        )
        if compressed_bytes > budget:
            # Constraints are honoured even when they hurt, but never
            # silently: the over-budget projection is visible in the plan.
            rationale.append(
                f"warning: projected compressed index "
                f"{_fmt_bytes(compressed_bytes)} exceeds the memory budget "
                f"{_fmt_bytes(budget)}; the explicit container thresholds "
                f"keep the plan in-RAM compressed anyway"
            )
        config = EngineConfig(
            backend="compressed",
            array_cutoff=requested.array_cutoff,
            run_cutoff=requested.run_cutoff,
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
        )
        return EnginePlan(config=config, stats=stats, rationale=tuple(rationale))

    if packed_bytes > budget or forced_out_of_core:
        if (
            not forced_out_of_core
            and not forced_sharded
            and sparse_domain
            and compressed_wins
            and compressed_bytes <= budget
        ):
            # Sparse escape hatch: spilling to disk is pointless when the
            # compressed representation of the same index fits the memory
            # budget entirely in RAM.  Deliberately *not* gated on the
            # single-index latency ceiling — a long in-RAM scan still
            # beats mmap streaming from disk.
            rationale.append(
                f"projected packed index {_fmt_bytes(packed_bytes)} exceeds "
                f"the memory budget {_fmt_bytes(budget)}, but the sparse "
                f"domain's compressed index {_fmt_bytes(compressed_bytes)} "
                f"fits it in RAM -> compressed instead of out-of-core spill"
            )
            config = EngineConfig(
                backend="compressed",
                mask_cache_size=requested.mask_cache_size,
                kernel_tier=requested.kernel_tier,
            )
            return EnginePlan(
                config=config, stats=stats, rationale=tuple(rationale)
            )
        if packed_bytes > budget:
            rationale.append(
                f"projected packed index {_fmt_bytes(packed_bytes)} exceeds "
                f"the memory budget {_fmt_bytes(budget)} -> out-of-core "
                f"sharded (spill + mmap streaming)"
            )
            max_resident: Optional[int] = budget
        else:
            rationale.append(
                "out-of-core mode requested explicitly (spill_dir / "
                "workers_mode='process'/'socket' / worker_endpoints / "
                "delta_spill) -> sharded with spill"
            )
            max_resident = requested.max_resident_bytes
        spill_dir = requested.spill_dir
        if spill_dir is None:
            spill_dir = _default_spill_root()
            rationale.append(
                f"no spill_dir given; spilling under {spill_dir!r} "
                f"(unique subdirectory, removed on close)"
            )
        # Shards are sized by the streaming target, not the budget: the
        # loader degrades to one over-budget resident entry gracefully,
        # while tiny shards multiply per-shard dispatch and mmap churn.
        shards = _plan_shards(
            requested, stats, packed_bytes, SHARD_TARGET_BYTES, rationale
        )
        workers = _plan_workers(requested, stats, packed_bytes, shards, rationale)
        workers_mode = requested.workers_mode
        if (
            workers_mode is None
            and workers is not None
            and workers >= 2
            and packed_bytes > budget * SOCKET_BUDGET_MULTIPLE
        ):
            # The rung above the process pool: when the shard bytes dwarf
            # what one host's budget can stream, place shards on dedicated
            # socket workers (spawn-local here; point worker_endpoints at
            # other hosts to actually leave the box).
            workers_mode = "socket"
            rationale.append(
                f"projected shard bytes {_fmt_bytes(packed_bytes)} exceed "
                f"{SOCKET_BUDGET_MULTIPLE}x the single-host budget "
                f"{_fmt_bytes(budget)} -> socket fan-out (distributed "
                f"workers; spawn-local without worker_endpoints)"
            )
        config = EngineConfig(
            backend="sharded",
            shards=shards,
            workers=workers,
            workers_mode=workers_mode,
            spill_dir=spill_dir,
            max_resident_bytes=max_resident,
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
            worker_endpoints=requested.worker_endpoints,
            delta_spill=requested.delta_spill,
        )
    elif forced_sharded or (
        packed_bytes > ceiling and not compressed_single_index
    ):
        if forced_sharded:
            rationale.append(
                "sharded backend forced by explicit shards/workers request"
            )
        else:
            rationale.append(
                f"projected packed index {_fmt_bytes(packed_bytes)} exceeds "
                f"the single-index ceiling {_fmt_bytes(ceiling)} "
                f"-> sharded (bounded per-kernel working sets)"
            )
        shards = _plan_shards(
            requested, stats, packed_bytes, SHARD_TARGET_BYTES, rationale
        )
        workers = _plan_workers(requested, stats, packed_bytes, shards, rationale)
        config = EngineConfig(
            backend="sharded",
            shards=shards,
            workers=workers,
            workers_mode=requested.workers_mode,
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
        )
    elif stats.projected_dense_bytes <= DENSE_MAX_INDEX_BYTES * (
        HIERARCHY_DENSE_MULTIPLE if stats.query_shape == "hierarchy" else 1
    ):
        dense_ceiling = DENSE_MAX_INDEX_BYTES * (
            HIERARCHY_DENSE_MULTIPLE
            if stats.query_shape == "hierarchy"
            else 1
        )
        rationale.append(
            f"projected dense index {_fmt_bytes(stats.projected_dense_bytes)} "
            f"fits the dense ceiling {_fmt_bytes(dense_ceiling)} -> "
            f"dense (no packing overhead on tiny indices"
            + (
                "; hierarchy shape favors per-level build cost over "
                "index size)"
                if stats.query_shape == "hierarchy"
                else ")"
            )
        )
        config = EngineConfig(
            backend="dense",
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
        )
    elif compressed_single_index:
        rationale.append(
            f"index density {stats.index_density:.4f} <= sparsity cutoff "
            f"{SPARSE_INDEX_DENSITY:.4f} and projected compressed index "
            f"{_fmt_bytes(compressed_bytes)} x {COMPRESSED_SCAN_COST_RATIO:g} "
            f"scan-cost beats packed {_fmt_bytes(packed_bytes)} -> compressed "
            f"(chunked containers, no dense words for sparse chunks)"
        )
        config = EngineConfig(
            backend="compressed",
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
        )
    else:
        rationale.append(
            f"projected packed index {_fmt_bytes(packed_bytes)} fits one "
            f"index (ceiling {_fmt_bytes(ceiling)}) -> packed "
            f"(8x smaller than dense, word-level popcount)"
        )
        config = EngineConfig(
            backend="packed",
            mask_cache_size=requested.mask_cache_size,
            kernel_tier=requested.kernel_tier,
        )
    return EnginePlan(config=config, stats=stats, rationale=tuple(rationale))


def _plan_shards(
    requested: EngineConfig,
    stats: WorkloadStats,
    packed_bytes: int,
    per_shard_target: int,
    rationale: list,
) -> int:
    """Shard count: the caller's, or sized to ``per_shard_target`` bytes."""
    if requested.shards is not None:
        rationale.append(f"shard count {requested.shards} requested explicitly")
        return requested.shards
    shards = -(-packed_bytes // max(per_shard_target, 1))  # ceil division
    shards = max(DEFAULT_SHARDS, min(shards, MAX_PLANNED_SHARDS))
    shards = min(shards, max(stats.projected_unique, 1))
    rationale.append(
        f"{shards} shard(s) keep each slice near "
        f"{_fmt_bytes(per_shard_target)} (engine clamps to distinct "
        f"combinations)"
    )
    return shards


def _plan_workers(
    requested: EngineConfig,
    stats: WorkloadStats,
    packed_bytes: int,
    shards: int,
    rationale: list,
) -> Optional[int]:
    """Worker-pool size: the caller's, or cores-based once the index pays."""
    if requested.workers is not None:
        rationale.append(f"worker pool {requested.workers} requested explicitly")
        return requested.workers
    if stats.cpu_count >= 2 and packed_bytes >= WORKER_MIN_INDEX_BYTES:
        workers = min(stats.cpu_count, shards, MAX_PLANNED_WORKERS)
        if workers >= 2:
            rationale.append(
                f"{workers} worker(s): {stats.cpu_count} cores and a "
                f"{_fmt_bytes(packed_bytes)} index amortize the pool"
            )
            return workers
    rationale.append(
        "serial shard evaluation (single core or index too small to "
        "amortize a pool)"
    )
    return None
