"""Socket-based shard workers for distributed coverage fan-out.

The out-of-core :class:`~repro.core.engine.sharded.ShardedEngine` already
addresses its index by path: shard files are immutable, manifest-described,
and attachable from any process.  This module stretches that property over
a socket so per-shard kernels can run on long-lived worker processes —
spawned locally for single-host fan-out, or standing ``repro worker``
servers on other hosts — while the coordinator keeps the deterministic
shard-order reduction that makes every execution mode bit-identical.

Protocol
--------
One coordinator connection per worker, carrying length-prefixed frames::

    [uint32 json_len][uint32 tail_len][json header][binary tail]

(big-endian lengths).  The JSON header is the message; numpy arrays inside
it are replaced by ``{"__nd__": [dtype, shape, offset, nbytes]}`` markers
pointing into the raw binary tail, so mask windows cross the wire at
byte cost, not base64 cost.  Only query *payloads* (mask windows, row
ids) and per-shard partial results ever travel — the index words stay on
the worker, mmap-warm, exactly like the process-pool path.

Worker commands: ``attach`` (open a spill dir by path), ``run_batch``
(execute every shard op the coordinator placed on this worker, in order),
``invalidate`` (drop a retired spill path after a delta rewrite),
``stats``, ``ping``, and ``shutdown``.  Application errors travel back as
``{"ok": false, ...}`` and re-raise coordinator-side; only *transport*
death (worker killed, connection reset) triggers the retry-with-reattach
path in :class:`DistributedPool`.

Placement is sticky: shard ``k`` of a ``K``-shard store always lands on
worker slot ``k % workers``, so repeated queries hit the worker whose
page cache already holds shard ``k``'s bytes.  A respawned or reconnected
worker takes over its predecessor's slot (and re-attaches the same spill
paths) before the failed batch is retried once.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import struct
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine.mmapped import (
    run_shard_op,
    worker_attach,
    worker_detach,
)
from repro.exceptions import EngineError

#: Wire format version; a worker rejects frames from a different major.
PROTOCOL_VERSION = 1

_LEN_STRUCT = struct.Struct(">II")

#: Refuse absurd frames instead of allocating for them (1 GiB).
_MAX_FRAME_BYTES = 1 << 30

#: Reconnect schedule (seconds) for remote endpoints whose worker is
#: restarting; spawn-local workers are respawned instead.
_RECONNECT_DELAYS = (0.05, 0.2, 0.5)


class WorkerDied(ConnectionError):
    """Transport-level failure talking to a shard worker.

    Distinct from :class:`EngineError` on purpose: a dead connection is
    retryable (respawn/reconnect + reattach), a worker-side application
    error is not.
    """


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def _encode_value(value: Any, tail: List[bytes], offset: List[int]) -> Any:
    """JSON-safe mirror of ``value``; ndarrays become tail references."""
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        marker = {
            "__nd__": [data.dtype.str, list(data.shape), offset[0], data.nbytes]
        }
        tail.append(data.tobytes())
        offset[0] += data.nbytes
        return marker
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_encode_value(item, tail, offset) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _encode_value(item, tail, offset)
            for key, item in value.items()
        }
    return value


def _decode_value(value: Any, tail: memoryview) -> Any:
    """Inverse of :func:`_encode_value` over a received frame's tail."""
    if isinstance(value, dict):
        if set(value) == {"__nd__"}:
            dtype, shape, start, nbytes = value["__nd__"]
            flat = np.frombuffer(
                tail[int(start) : int(start) + int(nbytes)],
                dtype=np.dtype(str(dtype)),
            )
            # Copy: frombuffer views are read-only and pinned to the recv
            # buffer; kernels (and callers) expect ordinary arrays.
            return flat.reshape([int(n) for n in shape]).copy()
        return {key: _decode_value(item, tail) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item, tail) for item in value]
    return value


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize one message as a length-prefixed frame and send it."""
    tail: List[bytes] = []
    offset = [0]
    header = json.dumps(_encode_value(message, tail, offset)).encode("utf-8")
    try:
        sock.sendall(
            _LEN_STRUCT.pack(len(header), offset[0]) + header + b"".join(tail)
        )
    except OSError as exc:
        raise WorkerDied(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise WorkerDied(f"recv failed: {exc}") from exc
        if not chunk:
            raise WorkerDied("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one length-prefixed frame and decode it."""
    header_len, tail_len = _LEN_STRUCT.unpack(_recv_exact(sock, _LEN_STRUCT.size))
    if header_len + tail_len > _MAX_FRAME_BYTES:
        raise WorkerDied(
            f"oversized frame ({header_len + tail_len} bytes) — corrupt stream?"
        )
    header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    tail = memoryview(_recv_exact(sock, tail_len)) if tail_len else memoryview(b"")
    return _decode_value(header, tail)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """Per-process bookkeeping behind one worker's command handlers."""

    def __init__(self) -> None:
        self.attached: Dict[str, Optional[int]] = {}  # path -> budget
        self.ops_served = 0
        self.batches_served = 0
        self.invalidations = 0

    def handle(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """``(response, keep_running)`` for one request frame."""
        cmd = message.get("cmd")
        if message.get("v", PROTOCOL_VERSION) != PROTOCOL_VERSION:
            return (
                {
                    "ok": False,
                    "error": f"protocol version {message.get('v')} unsupported",
                },
                True,
            )
        if cmd == "ping":
            return {"ok": True, "pid": os.getpid()}, True
        if cmd == "attach":
            path = str(message["path"])
            budget = message.get("max_resident_bytes")
            worker_attach(path, budget)
            self.attached[path] = budget
            return {"ok": True}, True
        if cmd == "run_batch":
            path = str(message["path"])
            results = []
            for op_spec in message["ops"]:
                results.append(
                    run_shard_op(
                        (path, int(op_spec["shard"]), str(op_spec["op"]),
                         op_spec["payload"])
                    )
                )
                self.ops_served += 1
            self.batches_served += 1
            return {"ok": True, "results": results}, True
        if cmd == "invalidate":
            path = str(message["path"])
            dropped = worker_detach(path)
            self.attached.pop(path, None)
            self.invalidations += 1
            return {"ok": True, "dropped": dropped}, True
        if cmd == "stats":
            return (
                {
                    "ok": True,
                    "pid": os.getpid(),
                    "attached": sorted(self.attached),
                    "ops_served": self.ops_served,
                    "batches_served": self.batches_served,
                    "invalidations": self.invalidations,
                },
                True,
            )
        if cmd == "shutdown":
            return {"ok": True}, False
        return {"ok": False, "error": f"unknown command {cmd!r}"}, True


def _serve_connection(conn: socket.socket, state: _WorkerState) -> bool:
    """Answer frames on one coordinator connection until EOF/shutdown.

    Returns False when a shutdown command ended the worker.
    """
    with conn:
        while True:
            try:
                message = recv_message(conn)
            except WorkerDied:
                return True  # coordinator went away; await the next one
            try:
                response, keep_running = state.handle(message)
            except Exception as exc:  # noqa: BLE001 — shipped to coordinator
                response, keep_running = (
                    {
                        "ok": False,
                        "error": str(exc),
                        "kind": type(exc).__name__,
                    },
                    True,
                )
            try:
                send_message(conn, response)
            except WorkerDied:
                return True
            if not keep_running:
                return False


def serve_on_socket(listener: socket.socket) -> None:
    """Run a shard worker on an already-bound listening socket.

    One coordinator at a time: serve a connection to completion, then
    accept the next (a restarted coordinator reconnects to the same
    worker).  Returns when a coordinator sends ``shutdown``.
    """
    state = _WorkerState()
    with listener:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if not _serve_connection(conn, state):
                return


def serve_worker(host: str = "127.0.0.1", port: int = 0) -> None:
    """Entry point for a standalone shard worker (``repro worker``).

    Binds, announces ``listening on host:port`` on stdout (port 0 resolves
    to the kernel-assigned one — scripts wait for this line), then serves
    until a coordinator sends ``shutdown`` or the process is killed.
    """
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    serve_on_socket(listener)


def _spawned_worker_main(listener: socket.socket) -> None:
    """Target of spawn-local worker processes (inherits the bound socket)."""
    serve_on_socket(listener)


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
def _parse_endpoint(endpoint: str) -> Tuple[str, int]:
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise EngineError(
            f"worker endpoint {endpoint!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise EngineError(
            f"worker endpoint {endpoint!r} has a non-numeric port"
        ) from None


def _connect(address: Tuple[str, int]) -> socket.socket:
    sock = socket.create_connection(address, timeout=30.0)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class _Worker:
    """One slot of the pool: a connection plus how to resurrect it."""

    def __init__(
        self,
        address: Tuple[str, int],
        sock: socket.socket,
        process: Optional[multiprocessing.process.BaseProcess] = None,
    ) -> None:
        self.address = address
        self.sock: Optional[socket.socket] = sock
        self.process = process
        #: Spill paths this worker must re-attach after resurrection.
        self.attached: Dict[str, Optional[int]] = {}

    @property
    def local(self) -> bool:
        return self.process is not None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One round-trip; transport death raises :class:`WorkerDied`,
        worker-side application errors raise :class:`EngineError`."""
        if self.sock is None:
            raise WorkerDied("worker connection is closed")
        message.setdefault("v", PROTOCOL_VERSION)
        send_message(self.sock, message)
        response = recv_message(self.sock)
        if not response.get("ok"):
            raise EngineError(
                f"shard worker at {self.address[0]}:{self.address[1]} "
                f"failed: {response.get('error')}"
            )
        return response

    def drop_connection(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def close(self, *, shutdown_remote: bool) -> None:
        """Tear the slot down (best-effort: never raises)."""
        if self.sock is not None and (self.local or shutdown_remote):
            try:
                send_message(self.sock, {"cmd": "shutdown", "v": PROTOCOL_VERSION})
                recv_message(self.sock)
            except (WorkerDied, OSError):
                pass
        self.drop_connection()
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
            self.process = None


class DistributedPool:
    """A fixed roster of shard workers with sticky shard placement.

    Build one with :meth:`spawn_local` (single host: fork one worker
    process per slot) or :meth:`connect` (many hosts: standing ``repro
    worker`` servers).  :meth:`attach` points every worker at a spill
    directory; :meth:`run_shard_ops` then fans a query family's per-shard
    ops out — one ``run_batch`` frame per owning worker, issued
    concurrently — and returns the partial results in shard order.

    A worker that dies mid-batch is resurrected once (respawned if local,
    reconnected if remote), re-attached to every registered spill path,
    and the failed batch is retried; a second failure raises
    :class:`EngineError`.
    """

    def __init__(self, workers: List[_Worker], *, owns_remote: bool = False) -> None:
        if not workers:
            raise EngineError("a DistributedPool needs at least one worker")
        self._workers = workers
        self._owns_remote = owns_remote
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._retries = 0

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def spawn_local(cls, workers: int) -> "DistributedPool":
        """Fork ``workers`` local worker processes on loopback sockets.

        The parent binds each listening socket first (so the port is known
        without a handshake) and the forked child inherits it; requires a
        ``fork`` platform, like the process-pool path.
        """
        workers = max(1, int(workers))
        context = multiprocessing.get_context("fork")
        slots: List[_Worker] = []
        try:
            for _ in range(workers):
                listener = socket.create_server(("127.0.0.1", 0))
                address = listener.getsockname()[:2]
                process = context.Process(
                    target=_spawned_worker_main,
                    args=(listener,),
                    daemon=True,
                )
                process.start()
                listener.close()  # the child keeps its inherited copy
                slots.append(_Worker(address, _connect(address), process))
        except BaseException:
            for slot in slots:
                slot.close(shutdown_remote=False)
            raise
        return cls(slots)

    @classmethod
    def connect(cls, endpoints: Sequence[str]) -> "DistributedPool":
        """Connect to standing workers at ``host:port`` addresses."""
        addresses = [_parse_endpoint(endpoint) for endpoint in endpoints]
        slots: List[_Worker] = []
        try:
            for address in addresses:
                try:
                    slots.append(_Worker(address, _connect(address)))
                except OSError as exc:
                    raise EngineError(
                        f"cannot reach shard worker at "
                        f"{address[0]}:{address[1]}: {exc}"
                    ) from exc
        except BaseException:
            for slot in slots:
                slot.close(shutdown_remote=False)
            raise
        return cls(slots, owns_remote=False)

    def close(self) -> None:
        """Shut down every slot (and spawned process); idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for worker in self._workers:
            worker.close(shutdown_remote=self._owns_remote)

    # -- placement ------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return len(self._workers)

    @property
    def retry_count(self) -> int:
        """How many worker resurrections this pool has performed."""
        return self._retries

    def worker_pids(self) -> List[Optional[int]]:
        """Spawn-local worker pids (``None`` for remote slots)."""
        return [worker.pid for worker in self._workers]

    def slot_for(self, shard_id: int) -> int:
        """The worker slot owning ``shard_id`` — stable across queries."""
        return int(shard_id) % len(self._workers)

    def placement(self, shard_count: int) -> List[int]:
        """``shard id -> worker slot`` for a ``shard_count``-shard store."""
        return [self.slot_for(shard) for shard in range(shard_count)]

    # -- commands -------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("DistributedPool is closed")

    def _resurrect(self, slot: int) -> None:
        """Replace a dead worker in place and re-attach its spill paths."""
        worker = self._workers[slot]
        worker.drop_connection()
        if worker.local:
            if worker.process is not None:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            context = multiprocessing.get_context("fork")
            listener = socket.create_server(("127.0.0.1", 0))
            worker.address = listener.getsockname()[:2]
            worker.process = context.Process(
                target=_spawned_worker_main, args=(listener,), daemon=True
            )
            worker.process.start()
            listener.close()
            worker.sock = _connect(worker.address)
        else:
            last_error: Optional[BaseException] = None
            for delay in _RECONNECT_DELAYS:
                try:
                    worker.sock = _connect(worker.address)
                    break
                except OSError as exc:
                    last_error = exc
                    time.sleep(delay)
            if worker.sock is None:
                raise EngineError(
                    f"shard worker at {worker.address[0]}:"
                    f"{worker.address[1]} is unreachable: {last_error}"
                )
        self._retries += 1
        for path, budget in worker.attached.items():
            worker.request(
                {"cmd": "attach", "path": path, "max_resident_bytes": budget}
            )

    def _request_with_retry(
        self, slot: int, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        worker = self._workers[slot]
        try:
            return worker.request(dict(message))
        except WorkerDied:
            self._resurrect(slot)
            return self._workers[slot].request(dict(message))

    def attach(
        self,
        path: str,
        shard_count: int,
        *,
        max_resident_bytes: Optional[int] = None,
    ) -> None:
        """Attach every worker to a spill directory (idempotent)."""
        self._check_open()
        path = str(path)
        for slot, worker in enumerate(self._workers):
            self._request_with_retry(
                slot,
                {
                    "cmd": "attach",
                    "path": path,
                    "max_resident_bytes": max_resident_bytes,
                },
            )
            worker.attached[path] = max_resident_bytes

    def invalidate(self, path: str, dirty_shards: Sequence[int]) -> int:
        """Drop a retired spill path from the workers owning dirty shards.

        Clean shards were hard-linked into the successor directory, so the
        other workers keep serving their (identical-inode) bytes without a
        page-cache flush.  Every slot forgets the path for reattach
        purposes; only dirty owners get an ``invalidate`` frame.  Returns
        how many workers were messaged.
        """
        self._check_open()
        path = str(path)
        dirty_slots = {self.slot_for(shard) for shard in dirty_shards}
        messaged = 0
        for slot, worker in enumerate(self._workers):
            if slot in dirty_slots and path in worker.attached:
                try:
                    self._request_with_retry(
                        slot, {"cmd": "invalidate", "path": path}
                    )
                    messaged += 1
                except EngineError:
                    pass  # a worker that lost the path anyway is fine
            worker.attached.pop(path, None)
        return messaged

    def worker_stats(self) -> List[Dict[str, Any]]:
        """One ``stats`` snapshot per worker slot, in slot order."""
        self._check_open()
        return [
            self._request_with_retry(slot, {"cmd": "stats"})
            for slot in range(len(self._workers))
        ]

    def run_shard_ops(
        self, path: str, op: str, payloads: Sequence[Any]
    ) -> List[Any]:
        """Execute ``(op, payloads[k])`` for every shard ``k``; results in
        shard order.

        Ops are grouped by owning slot and shipped as one ``run_batch``
        frame per worker, issued concurrently, so a query family costs one
        round-trip regardless of shard count.
        """
        self._check_open()
        path = str(path)
        batches: Dict[int, List[int]] = {}
        for shard_id in range(len(payloads)):
            batches.setdefault(self.slot_for(shard_id), []).append(shard_id)

        def _run(slot_and_shards: Tuple[int, List[int]]) -> List[Any]:
            slot, shard_ids = slot_and_shards
            response = self._request_with_retry(
                slot,
                {
                    "cmd": "run_batch",
                    "path": path,
                    "ops": [
                        {
                            "shard": shard_id,
                            "op": op,
                            "payload": payloads[shard_id],
                        }
                        for shard_id in shard_ids
                    ],
                },
            )
            return response["results"]

        items = sorted(batches.items())
        if len(items) == 1:
            outputs = [_run(items[0])]
        else:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self._workers),
                    thread_name_prefix="repro-dist",
                )
            outputs = list(self._executor.map(_run, items))

        results: List[Any] = [None] * len(payloads)
        for (slot, shard_ids), batch_results in zip(items, outputs):
            if len(batch_results) != len(shard_ids):
                raise EngineError(
                    f"worker slot {slot} returned {len(batch_results)} "
                    f"results for {len(shard_ids)} ops"
                )
            for shard_id, result in zip(shard_ids, batch_results):
                results[shard_id] = result
        return results

    def __enter__(self) -> "DistributedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
