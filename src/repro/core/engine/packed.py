"""Packed-bitset coverage engine (Appendix A on ``uint64`` words).

One :class:`~repro.data.bitset.BitVector` per attribute value over the
unique value combinations; masks are ``BitVector`` handles.  An AND moves
one word per 64 combinations (8× less traffic than the dense baseline) and
coverage is a word-level popcount — weighted by the multiplicity vector
when the dataset has duplicate rows, a pure ``popcount`` when it does not.

Batched queries operate on the stacked ``(cardinality, words)`` matrices
directly, so a whole sibling family or frontier level is answered by one
``bitwise_and`` broadcast plus one counting pass.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.engine.base import (
    DEFAULT_MASK_CACHE,
    CoverageEngine,
    register_engine,
)
from repro.data.bitset import BitVector
from repro.data.dataset import Dataset

_WORD_BITS = 64


@register_engine
class PackedBitsetEngine(CoverageEngine):
    """Coverage queries over packed ``uint64`` membership vectors."""

    name = "packed"

    def __init__(
        self,
        dataset: Dataset,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        kernel_tier: str = None,
    ) -> None:
        super().__init__(
            dataset, mask_cache_size=mask_cache_size, kernel_tier=kernel_tier
        )
        unique = self._unique
        u = len(unique)
        # _vectors[i][v] is the BitVector over unique rows with value v on
        # attribute i; _words[i] stacks the same bits as a (c_i, W) matrix
        # for the batched kernels.
        self._vectors: List[List[BitVector]] = []
        self._words: List[np.ndarray] = []
        for i, cardinality in enumerate(dataset.cardinalities):
            column = unique[:, i] if u else np.zeros(0, dtype=np.int32)
            words = np.stack(
                [
                    BitVector.from_bool_array(column == value).words
                    for value in range(cardinality)
                ]
            )
            # The stacked matrix is the only copy of the index; the
            # BitVector handles wrap its rows without copying.
            self._words.append(words)
            self._vectors.append(
                [BitVector.from_words(u, words[value]) for value in range(cardinality)]
            )
        word_count = self._words[0].shape[1] if self._words else 0
        # Multiplicities padded to the word boundary; padding bits of any
        # mask are zero, so a plain dot gives the weighted count.
        self._counts_padded = np.zeros(word_count * _WORD_BITS, dtype=np.int64)
        self._counts_padded[:u] = self._counts
        # With no duplicate rows every weight is 1 and coverage is a pure
        # popcount — the fast path production data with unique keys hits.
        self._uniform = bool(u == 0 or self._counts.max(initial=1) == 1)

    # ------------------------------------------------------------------
    # counting kernels
    # ------------------------------------------------------------------
    def _count_word_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Weighted count of each row of a ``(k, W)`` word matrix."""
        return self._kernels.count_rows(
            matrix, None if self._uniform else self._counts_padded
        )

    # ------------------------------------------------------------------
    # packed-representation accessors (the sharded engine builds on these)
    # ------------------------------------------------------------------
    @property
    def is_uniform(self) -> bool:
        """True when every multiplicity is 1 (coverage = pure popcount)."""
        return self._uniform

    @property
    def counts_padded(self) -> np.ndarray:
        """Multiplicities padded to the word boundary (do not mutate)."""
        return self._counts_padded

    def word_matrix(self, attribute: int) -> np.ndarray:
        """The stacked ``(cardinality, words)`` index of one attribute
        (do not mutate)."""
        return self._words[attribute]

    # ------------------------------------------------------------------
    # mask kernel
    # ------------------------------------------------------------------
    @property
    def index_nbytes(self) -> int:
        return sum(words.nbytes for words in self._words)

    def full_mask(self) -> BitVector:
        return BitVector(self.unique_count, fill=True)

    def value_mask(self, attribute: int, value: int) -> BitVector:
        return self._vectors[attribute][value]

    def restrict(self, mask: BitVector, attribute: int, value: int) -> BitVector:
        return mask & self._vectors[attribute][value]

    def restrict_children(self, mask: BitVector, attribute: int) -> List[BitVector]:
        family = self._kernels.and_family(mask.words, self._words[attribute])
        u = self.unique_count
        return [BitVector.from_words(u, row) for row in family]

    def count(self, mask: BitVector) -> int:
        return self._kernels.count(
            mask.words, None if self._uniform else self._counts_padded
        )

    def count_many(self, masks: Sequence[BitVector]) -> np.ndarray:
        if not len(masks):
            return np.zeros(0, dtype=np.int64)
        matrix = np.stack([mask.words for mask in masks])
        return self._count_word_matrix(matrix)

    def mask_to_bool(self, mask: BitVector) -> np.ndarray:
        return mask.to_bool_array()

    def _compute_match_mask(self, pattern) -> BitVector:
        # Override the generic chain to AND in place over one buffer.
        mask = self.full_mask()
        for index in pattern.deterministic_indices():
            mask.iand(self._vectors[index][pattern[index]])
        return mask
