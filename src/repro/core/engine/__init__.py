"""Pluggable coverage engines (Appendix A behind one interface).

Importing this package registers every backend; select one by name
(``"dense"`` / ``"packed"`` / ``"sharded"``) anywhere an ``engine=``
argument or the CLI ``--engine`` flag is accepted.
"""

from repro.core.engine.base import (
    DEFAULT_ENGINE,
    DEFAULT_MASK_CACHE,
    ENGINES,
    CoverageEngine,
    EngineSpec,
    engine_name,
    register_engine,
    resolve_engine,
)
from repro.core.engine.dense import DenseBoolEngine
from repro.core.engine.packed import PackedBitsetEngine
from repro.core.engine.sharded import DEFAULT_SHARDS, ShardedEngine

__all__ = [
    "CoverageEngine",
    "DenseBoolEngine",
    "PackedBitsetEngine",
    "ShardedEngine",
    "ENGINES",
    "DEFAULT_ENGINE",
    "DEFAULT_MASK_CACHE",
    "DEFAULT_SHARDS",
    "EngineSpec",
    "engine_name",
    "register_engine",
    "resolve_engine",
]
