"""Pluggable coverage engines (Appendix A behind one interface).

Importing this package registers every backend; select one by name
(``"dense"`` / ``"packed"`` / ``"sharded"`` / ``"compressed"``) — or pass
a declarative
:class:`~repro.core.engine.config.EngineConfig`, or the name ``"auto"``
to let the workload-aware planner (:mod:`repro.core.engine.planner`)
choose — anywhere an ``engine=`` argument or the CLI ``--engine`` flag is
accepted.  The sharded backend additionally runs out-of-core
(``spill_dir=`` / ``max_resident_bytes=``) over an mmap-backed
:class:`~repro.core.engine.mmapped.MmapShardStore`, with thread- or
process-pool shard fan-out (``workers=`` / ``workers_mode=``).
"""

from repro.core.engine.base import (
    DEFAULT_ENGINE,
    DEFAULT_MASK_CACHE,
    ENGINES,
    CoverageEngine,
    EngineSpec,
    engine_name,
    register_engine,
    resolve_engine,
)
from repro.core.engine.compressed import (
    CHUNK_BITS,
    DEFAULT_ARRAY_CUTOFF,
    DEFAULT_RUN_CUTOFF,
    CompressedBitmap,
    CompressedEngine,
)
from repro.core.engine.dense import DenseBoolEngine
from repro.core.engine.distributed import (
    PROTOCOL_VERSION,
    DistributedPool,
    WorkerDied,
    serve_worker,
)
from repro.core.engine.mmapped import (
    MANIFEST_FORMAT,
    MANIFEST_FORMAT_V1,
    DeltaWriteResult,
    MmapShardStore,
    ShardStoreWriter,
    load_spill_dataset,
    shard_slice_fingerprint,
)
from repro.core.engine.packed import PackedBitsetEngine
from repro.core.engine.sharded import (
    DEFAULT_SHARDS,
    DEFAULT_WORKERS_MODE,
    WORKERS_MODES,
    ShardedEngine,
)
from repro.core.engine.config import AUTO, BUILTIN_BACKENDS, EngineConfig
from repro.core.engine.kernels import (
    KERNEL_TIERS,
    REPRO_KERNELS_ENV,
    Kernels,
    get_kernels,
    numba_available,
    resolve_kernel_tier,
)
from repro.core.engine.planner import (
    QUERY_SHAPES,
    EnginePlan,
    WorkloadStats,
    available_memory_bytes,
    invalidate_stats_cache,
    plan_engine,
    set_available_memory_bytes,
    stats_cache_info,
)

__all__ = [
    "CoverageEngine",
    "DenseBoolEngine",
    "PackedBitsetEngine",
    "ShardedEngine",
    "CompressedEngine",
    "CompressedBitmap",
    "CHUNK_BITS",
    "DEFAULT_ARRAY_CUTOFF",
    "DEFAULT_RUN_CUTOFF",
    "MmapShardStore",
    "ShardStoreWriter",
    "DeltaWriteResult",
    "load_spill_dataset",
    "shard_slice_fingerprint",
    "MANIFEST_FORMAT",
    "MANIFEST_FORMAT_V1",
    "DistributedPool",
    "WorkerDied",
    "serve_worker",
    "PROTOCOL_VERSION",
    "EngineConfig",
    "EnginePlan",
    "WorkloadStats",
    "plan_engine",
    "available_memory_bytes",
    "set_available_memory_bytes",
    "stats_cache_info",
    "invalidate_stats_cache",
    "QUERY_SHAPES",
    "Kernels",
    "KERNEL_TIERS",
    "REPRO_KERNELS_ENV",
    "get_kernels",
    "numba_available",
    "resolve_kernel_tier",
    "AUTO",
    "BUILTIN_BACKENDS",
    "ENGINES",
    "DEFAULT_ENGINE",
    "DEFAULT_MASK_CACHE",
    "DEFAULT_SHARDS",
    "DEFAULT_WORKERS_MODE",
    "WORKERS_MODES",
    "EngineSpec",
    "engine_name",
    "register_engine",
    "resolve_engine",
]
