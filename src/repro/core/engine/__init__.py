"""Pluggable coverage engines (Appendix A behind one interface).

Importing this package registers both backends; select one by name
(``"dense"`` / ``"packed"``) anywhere an ``engine=`` argument or the CLI
``--engine`` flag is accepted.
"""

from repro.core.engine.base import (
    DEFAULT_ENGINE,
    ENGINES,
    CoverageEngine,
    EngineSpec,
    engine_name,
    register_engine,
    resolve_engine,
)
from repro.core.engine.dense import DenseBoolEngine
from repro.core.engine.packed import PackedBitsetEngine

__all__ = [
    "CoverageEngine",
    "DenseBoolEngine",
    "PackedBitsetEngine",
    "ENGINES",
    "DEFAULT_ENGINE",
    "EngineSpec",
    "engine_name",
    "register_engine",
    "resolve_engine",
]
