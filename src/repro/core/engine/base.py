"""The pluggable coverage-engine abstraction.

Appendix A reduces every coverage query to bitwise AND / population count
over per-attribute-value membership vectors.  A :class:`CoverageEngine`
owns those vectors for one dataset and answers three families of queries:

* **point** — ``match_mask`` / ``coverage`` for a single pattern;
* **incremental** — ``restrict`` one step down the pattern graph, reusing
  a parent's match mask;
* **batched** — ``count_many`` / ``coverage_many`` / ``restrict_children``
  answer a whole pattern-graph frontier in one vectorized pass.

Masks are engine-specific opaque handles: callers obtain them from the
engine (``full_mask``, ``match_mask``, ``restrict``…), hand them back to
the engine, and never inspect them directly (``mask_to_bool`` converts
when row identities are needed).  Four backends are registered:

* ``dense`` — :class:`~repro.core.engine.dense.DenseBoolEngine`, unpacked
  boolean ndarrays (the reference/ablation baseline);
* ``packed`` — :class:`~repro.core.engine.packed.PackedBitsetEngine`,
  ``uint64``-packed :class:`~repro.data.bitset.BitVector` words with
  word-level popcount (8× smaller index, word-at-a-time ANDs);
* ``sharded`` — :class:`~repro.core.engine.sharded.ShardedEngine`, the
  packed index partitioned row-wise into K shards whose per-shard kernels
  are reduced (optionally on a worker pool) into global answers; with
  ``spill_dir=`` the shard blocks live in an mmap-backed spill directory
  (:class:`~repro.core.engine.mmapped.MmapShardStore`) behind a
  byte-budgeted LRU loader, and ``workers_mode="process"`` fans the
  kernels out over a process pool attached to those files by path;
* ``compressed`` — :class:`~repro.core.engine.compressed.CompressedEngine`,
  roaring-style chunked containers (sorted-array / bitmap / run per 64Ki
  combinations) whose footprint tracks the data's density — the sparse
  value-domain backend the planner picks on high-cardinality schemas.

The base class also layers a **hot-mask LRU cache** over ``match_mask``:
repeated frontier evaluations (PATTERN-BREAKER re-visits, enhancement
greedy's repeated target queries, incremental re-runs) hit the cache
instead of re-ANDing the index.  Masks handed out are private copies, so
callers may mutate them freely; ``cache_info`` exposes hit/miss counters
for the benchmarks.
"""

from __future__ import annotations

import threading
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.core.engine.kernels import Kernels, get_kernels
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.exceptions import PatternError, ReproError

#: A mask is whatever the engine hands out; callers treat it as opaque.
Mask = Any

#: Registry of engine backends, keyed by their ``name``.
ENGINES: Dict[str, Type["CoverageEngine"]] = {}

#: Registry key used when no engine is specified.
DEFAULT_ENGINE = "dense"

#: Default capacity of the per-engine hot-mask LRU cache (0 disables it).
DEFAULT_MASK_CACHE = 1024

#: Byte budget for cached masks: the entry cap alone would let a dense
#: cache dwarf the index it fronts on wide datasets, so eviction also
#: keeps total cached mask bytes under this ceiling.
DEFAULT_MASK_CACHE_BYTES = 32 << 20


def register_engine(cls: Type["CoverageEngine"]) -> Type["CoverageEngine"]:
    """Class decorator registering an engine backend under ``cls.name``."""
    ENGINES[cls.name] = cls
    return cls


class CoverageEngine(ABC):
    """Answers coverage queries over one dataset's membership vectors.

    Subclasses build their inverted index over the dataset's *unique* value
    combinations (Appendix A aggregates duplicate tuples away) and choose
    the mask representation; the shared logic here handles pattern
    validation and the generic batched-coverage composition.
    """

    #: Registry key of the backend (set by subclasses).
    name: str = ""

    def __init__(
        self,
        dataset: Dataset,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        kernel_tier: str = None,
    ) -> None:
        self._dataset = dataset
        unique, counts = dataset.unique_rows()
        self._unique = unique
        self._counts = counts
        # Tier resolution happens once per engine: the requested value is
        # kept for template() round-trips, the resolved Kernels namespace
        # is what the backends call through.
        self._requested_kernel_tier = kernel_tier
        self._kernels = get_kernels(kernel_tier)
        self._mask_cache: "OrderedDict[Tuple[int, ...], Mask]" = OrderedDict()
        self._mask_cache_size = max(0, int(mask_cache_size))
        self._mask_cache_nbytes = 0
        # Serializes every cache mutation: the serving layer answers
        # concurrent requests on one warm engine, and unsynchronized
        # insert/evict corrupts the byte accounting (and can evict the
        # entry just handed out mid-copy).  match_mask keeps a lock-free
        # fast path when caching is disabled.
        self._mask_cache_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # shared accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def total(self) -> int:
        """Coverage of the root pattern = number of tuples ``n``."""
        return self._dataset.n

    @property
    def unique_count(self) -> int:
        """Number of distinct value combinations present in the data."""
        return len(self._unique)

    @property
    def unique_rows(self) -> np.ndarray:
        """The distinct value combinations the masks range over."""
        return self._unique

    @property
    def kernel_tier(self) -> str:
        """The resolved kernel tier this engine runs (``"jit"``/``"python"``)."""
        return self._kernels.tier

    @property
    def kernels(self) -> Kernels:
        """The kernel namespace the inner loops dispatch through."""
        return self._kernels

    def _check_pattern(self, pattern: Pattern) -> None:
        if len(pattern) != self._dataset.d:
            raise PatternError(
                f"pattern of length {len(pattern)} against d={self._dataset.d}"
            )
        for index in pattern.deterministic_indices():
            value = pattern[index]
            if not 0 <= value < self._dataset.cardinalities[index]:
                raise PatternError(
                    f"pattern {pattern} has out-of-range value {value} "
                    f"at attribute {index}"
                )

    # ------------------------------------------------------------------
    # abstract mask kernel
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def index_nbytes(self) -> int:
        """Bytes held by the inverted index (for memory accounting)."""

    @abstractmethod
    def full_mask(self) -> Mask:
        """Mask matching every unique combination (the root pattern)."""

    @abstractmethod
    def value_mask(self, attribute: int, value: int) -> Mask:
        """Inverted-index vector for ``attribute == value`` (do not mutate)."""

    @abstractmethod
    def restrict(self, mask: Mask, attribute: int, value: int) -> Mask:
        """``mask AND (attribute == value)`` — one child step down the graph."""

    @abstractmethod
    def restrict_children(self, mask: Mask, attribute: int) -> List[Mask]:
        """All of ``mask AND (attribute == v)`` in one vectorized pass.

        Returns one child mask per value of ``attribute``, in value order —
        the sibling family a traversal expands when it specializes one
        ``X`` element.
        """

    @abstractmethod
    def count(self, mask: Mask) -> int:
        """Total multiplicity of the combinations selected by ``mask``."""

    @abstractmethod
    def count_many(self, masks: Sequence[Mask]) -> np.ndarray:
        """Coverage of a whole frontier of masks in one vectorized pass."""

    @abstractmethod
    def mask_to_bool(self, mask: Mask) -> np.ndarray:
        """The mask as a boolean array over the unique combinations."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-held resources (worker pools, spill files…).

        A no-op for in-memory backends; the sharded engine overrides it.
        Consumers that rebuild engines (e.g. the incremental index) close
        the old one so spill directories and pools are reclaimed promptly
        instead of waiting for garbage collection.
        """

    def __enter__(self) -> "CoverageEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # mask copying (cache safety)
    # ------------------------------------------------------------------
    def copy_mask(self, mask: Mask) -> Mask:
        """A private copy of ``mask`` the caller may mutate.

        Both built-in mask handles (``ndarray``, ``BitVector``) expose
        ``copy``; backends with composite handles override this.
        """
        return mask.copy()

    # ------------------------------------------------------------------
    # hot-mask LRU cache
    # ------------------------------------------------------------------
    @property
    def mask_cache_size(self) -> int:
        """Capacity of the hot-mask cache (0 = caching disabled)."""
        return self._mask_cache_size

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters and occupancy of the hot-mask cache.

        Counter values are ints; ``hit_rate`` is a float in ``[0, 1]``.
        """
        with self._mask_cache_lock:
            total = self.cache_hits + self.cache_misses
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "entries": len(self._mask_cache),
                "nbytes": self._mask_cache_nbytes,
                "max_size": self._mask_cache_size,
                "hit_rate": (self.cache_hits / total) if total else 0.0,
            }

    def clear_mask_cache(self) -> None:
        """Drop every cached mask and reset the hit/miss counters."""
        with self._mask_cache_lock:
            self._mask_cache.clear()
            self._mask_cache_nbytes = 0
            self.cache_hits = 0
            self.cache_misses = 0

    @staticmethod
    def _mask_nbytes(mask: Mask) -> int:
        """Approximate heap size of one cached mask."""
        nbytes = getattr(mask, "nbytes", None)
        if nbytes is None:
            # BitVector handles expose their packed words.
            words = getattr(mask, "words", None)
            nbytes = words.nbytes if words is not None else 0
        return int(nbytes)

    # ------------------------------------------------------------------
    # pattern-level queries (shared composition)
    # ------------------------------------------------------------------
    def _compute_match_mask(self, pattern: Pattern) -> Mask:
        """Build the match mask by chained restriction (backends override)."""
        mask = self.full_mask()
        for index in pattern.deterministic_indices():
            mask = self.restrict(mask, index, pattern[index])
        return mask

    def match_mask(self, pattern: Pattern) -> Mask:
        """Mask over unique combinations matching ``pattern`` (cached).

        The cache is keyed by the canonical pattern values; the engine keeps
        its own copy of every cached mask and hands out fresh copies, so
        callers may mutate the returned handle.
        """
        self._check_pattern(pattern)
        if not self._mask_cache_size:
            # Lock-free fast path: with caching disabled there is no shared
            # mutable state to guard.
            return self._compute_match_mask(pattern)
        key = pattern.values
        with self._mask_cache_lock:
            cached = self._mask_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._mask_cache.move_to_end(key)
                # Copy while holding the lock: a concurrent miss could
                # otherwise evict (and a backend with views into shared
                # storage invalidate) the entry just handed out.
                return self.copy_mask(cached)
            self.cache_misses += 1
        # The index scan runs outside the lock so concurrent misses compute
        # in parallel; losing that race just means inserting a value the
        # winner already cached.
        mask = self._compute_match_mask(pattern)
        with self._mask_cache_lock:
            if key not in self._mask_cache:
                self._mask_cache[key] = self.copy_mask(mask)
                self._mask_cache_nbytes += self._mask_nbytes(mask)
            # Evict by entry count and by byte budget (always keeping the
            # newest entry, so one huge mask degrades to a 1-entry cache
            # instead of thrashing).
            while len(self._mask_cache) > 1 and (
                len(self._mask_cache) > self._mask_cache_size
                or self._mask_cache_nbytes > DEFAULT_MASK_CACHE_BYTES
            ):
                _, evicted = self._mask_cache.popitem(last=False)
                self._mask_cache_nbytes -= self._mask_nbytes(evicted)
        return mask

    def coverage(self, pattern: Pattern) -> int:
        """Definition 2: number of tuples matching ``pattern``."""
        return self.count(self.match_mask(pattern))

    def coverage_many(
        self,
        patterns: Sequence[Pattern],
        memo: Optional[Dict[Tuple[int, ...], int]] = None,
    ) -> np.ndarray:
        """Coverage of many patterns, counted in one batched pass.

        Args:
            patterns: the frontier to count.
            memo: optional count-reuse table mapping ``pattern.values`` to
                a previously computed coverage count.  Patterns present in
                it skip the index scan entirely and fresh counts are added
                back, so callers that evaluate overlapping frontiers — the
                amortized threshold sweep counts each pattern once for an
                entire τ range, and attribute-subset projections share
                their wildcarded patterns — pay for each distinct pattern
                once per engine.  Coverage counts are a pure function of
                the dataset, never of τ or the backend, which is what
                makes the table safe to share across sweeps and (for one
                dataset) across engines.
        """
        if not patterns:
            return np.zeros(0, dtype=np.int64)
        if memo is None:
            return self.count_many([self.match_mask(p) for p in patterns])
        out = np.empty(len(patterns), dtype=np.int64)
        missing: List[Pattern] = []
        positions: List[int] = []
        for index, pattern in enumerate(patterns):
            cached = memo.get(pattern.values)
            if cached is None:
                missing.append(pattern)
                positions.append(index)
            else:
                out[index] = cached
        if missing:
            counts = self.count_many(
                [self.match_mask(p) for p in missing]
            )
            for position, pattern, count in zip(positions, missing, counts):
                out[position] = count
                memo[pattern.values] = int(count)
        return out

    # ------------------------------------------------------------------
    # rebuild support
    # ------------------------------------------------------------------
    def _template_options(self) -> Dict[str, Any]:
        """Constructor options :meth:`template` must carry onto a rebuild.

        Backends with extra constructor parameters (shard count, worker
        pool) extend this dict.
        """
        options: Dict[str, Any] = {"mask_cache_size": self._mask_cache_size}
        if self._requested_kernel_tier is not None:
            # Carry the *requested* tier, not the resolved one, so a
            # template built under auto stays auto on the next machine.
            options["kernel_tier"] = self._requested_kernel_tier
        return options

    def template(self) -> "EngineSpec":
        """A dataset-free factory that rebuilds an equivalently configured engine.

        Consumers that re-index after the dataset changes (e.g. the
        incremental MUP index) use this to carry an engine's configuration
        — cache capacity, shard count, worker pool — onto the new dataset,
        with none of the old dataset's masks or cached state.

        For the registered backends the template *is* a declarative
        :class:`~repro.core.engine.config.EngineConfig` (serializable, and
        still callable with a dataset); unregistered subclasses fall back
        to an opaque factory closure.
        """
        cls = type(self)
        options = self._template_options()
        if ENGINES.get(cls.name) is cls:
            from repro.core.engine.config import EngineConfig

            try:
                return EngineConfig.from_options(cls.name, **options)
            except ReproError:
                # Subclass-specific options the config doesn't know; keep
                # the closure fallback below.
                pass

        def build(dataset: Dataset, **overrides: Any) -> "CoverageEngine":
            return cls(dataset, **{**options, **overrides})

        build.engine_name = cls.name
        return build


#: Anything that names an engine: a registry key (or ``"auto"``), an
#: :class:`~repro.core.engine.config.EngineConfig`, a class, an instance, a
#: dataset-free factory (e.g. an engine ``template()``), or ``None`` for the
#: default.  Defined after the class so the alias holds the real type
#: (annotations referencing it resolve in any importing module).
EngineSpec = Union[
    None, str, Type[CoverageEngine], CoverageEngine, Callable[..., CoverageEngine]
]


def _build_from_config(config: Any, dataset: Dataset) -> CoverageEngine:
    """Build the engine an :class:`EngineConfig` describes.

    ``"auto"`` configs are resolved through the workload-aware planner
    first; everything else instantiates the named backend with the
    config's set options.
    """
    if config.is_auto:
        from repro.core.engine.planner import plan_engine

        config = plan_engine(dataset, config).config
    return ENGINES[config.backend](dataset, **config.engine_options())


def resolve_engine(
    spec: EngineSpec, dataset: Dataset, **options: Any
) -> CoverageEngine:
    """Build (or pass through) the engine selected by ``spec``.

    Accepts an :class:`~repro.core.engine.config.EngineConfig` (the
    preferred declarative form), a registry name (``"dense"`` /
    ``"packed"`` / ``"sharded"``, or ``"auto"`` to let the planner choose),
    an engine class, a dataset-free factory callable (such as an engine's
    :meth:`~CoverageEngine.template`), an already-built instance (returned
    as-is), or ``None`` for the default.

    Keyword ``options`` are the legacy configuration style; for the
    built-in backend names they are validated through ``EngineConfig``
    (inapplicable combinations raise a clear
    :class:`~repro.exceptions.EngineError` instead of being silently
    ignored or crashing in a constructor) and emit a
    ``DeprecationWarning``.  They cannot be combined with a prebuilt
    instance or a config, which are already complete.
    """
    if spec is None:
        spec = DEFAULT_ENGINE
    if isinstance(spec, CoverageEngine):
        if options:
            raise ReproError(
                f"engine options {sorted(options)} cannot be applied to the "
                f"prebuilt instance {spec!r}; pass the engine name or class"
            )
        if spec.dataset is not dataset:
            raise ReproError(
                f"engine was built for a different dataset "
                f"({spec.dataset!r} vs {dataset!r}); pass the engine class "
                f"or name to rebuild it"
            )
        return spec
    from repro.core.engine.config import BUILTIN_BACKENDS, EngineConfig

    if isinstance(spec, EngineConfig):
        if options:
            raise ReproError(
                f"engine options {sorted(options)} cannot be combined with an "
                f"EngineConfig; use dataclasses.replace on the config instead"
            )
        return _build_from_config(spec, dataset)
    if isinstance(spec, str):
        if spec in BUILTIN_BACKENDS:
            config = EngineConfig.from_options(spec, **options)
            if options:
                # Warn only once the options validated — a rejected call
                # should not be told to migrate options no config accepts —
                # and spell out the exact equivalent config call.
                migration = ", ".join(
                    [f"backend={spec!r}"]
                    + [
                        f"{name}={value!r}"
                        for name, value in sorted(options.items())
                    ]
                )
                warnings.warn(
                    f"passing engine options as loose keyword arguments is "
                    f"deprecated; build the equivalent "
                    f"repro.core.engine.EngineConfig({migration}) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return _build_from_config(config, dataset)
        if spec not in ENGINES:
            raise ReproError(
                f"unknown coverage engine {spec!r}; "
                f"available: {sorted(ENGINES) + ['auto']}"
            )
        # Custom registered backends define their own constructor options;
        # forward the kwargs untouched.
        spec = ENGINES[spec]
    if (isinstance(spec, type) and issubclass(spec, CoverageEngine)) or (
        not isinstance(spec, type) and callable(spec)
    ):
        built = spec(dataset, **options)
        if not isinstance(built, CoverageEngine):
            raise ReproError(
                f"engine factory {spec!r} returned {built!r}, "
                f"not a CoverageEngine"
            )
        return built
    raise ReproError(f"cannot interpret {spec!r} as a coverage engine")


def engine_name(spec: EngineSpec) -> str:
    """Canonical registry name of an engine spec (for non-dataset reuse).

    ``"auto"`` (as a name or an auto ``EngineConfig``) is returned verbatim
    — the concrete backend is only known once a dataset is planned.
    """
    if spec is None:
        return DEFAULT_ENGINE
    from repro.core.engine.config import AUTO, EngineConfig

    if isinstance(spec, EngineConfig):
        return spec.backend
    if isinstance(spec, str):
        if spec == AUTO:
            return AUTO
        if spec not in ENGINES:
            raise ReproError(
                f"unknown coverage engine {spec!r}; "
                f"available: {sorted(ENGINES) + ['auto']}"
            )
        return spec
    if isinstance(spec, CoverageEngine):
        return type(spec).name
    if isinstance(spec, type) and issubclass(spec, CoverageEngine):
        return spec.name
    name = getattr(spec, "engine_name", None)
    if isinstance(name, str) and name in ENGINES:
        # Dataset-free factories (engine templates) carry their backend name.
        return name
    raise ReproError(f"cannot interpret {spec!r} as a coverage engine")
