"""The pluggable coverage-engine abstraction.

Appendix A reduces every coverage query to bitwise AND / population count
over per-attribute-value membership vectors.  A :class:`CoverageEngine`
owns those vectors for one dataset and answers three families of queries:

* **point** — ``match_mask`` / ``coverage`` for a single pattern;
* **incremental** — ``restrict`` one step down the pattern graph, reusing
  a parent's match mask;
* **batched** — ``count_many`` / ``coverage_many`` / ``restrict_children``
  answer a whole pattern-graph frontier in one vectorized pass.

Masks are engine-specific opaque handles: callers obtain them from the
engine (``full_mask``, ``match_mask``, ``restrict``…), hand them back to
the engine, and never inspect them directly (``mask_to_bool`` converts
when row identities are needed).  Two backends are registered:

* ``dense`` — :class:`~repro.core.engine.dense.DenseBoolEngine`, unpacked
  boolean ndarrays (the reference/ablation baseline);
* ``packed`` — :class:`~repro.core.engine.packed.PackedBitsetEngine`,
  ``uint64``-packed :class:`~repro.data.bitset.BitVector` words with
  word-level popcount (8× smaller index, word-at-a-time ANDs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Sequence, Type, Union

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.exceptions import PatternError, ReproError

#: A mask is whatever the engine hands out; callers treat it as opaque.
Mask = Any

#: Registry of engine backends, keyed by their ``name``.
ENGINES: Dict[str, Type["CoverageEngine"]] = {}

#: Registry key used when no engine is specified.
DEFAULT_ENGINE = "dense"


def register_engine(cls: Type["CoverageEngine"]) -> Type["CoverageEngine"]:
    """Class decorator registering an engine backend under ``cls.name``."""
    ENGINES[cls.name] = cls
    return cls


class CoverageEngine(ABC):
    """Answers coverage queries over one dataset's membership vectors.

    Subclasses build their inverted index over the dataset's *unique* value
    combinations (Appendix A aggregates duplicate tuples away) and choose
    the mask representation; the shared logic here handles pattern
    validation and the generic batched-coverage composition.
    """

    #: Registry key of the backend (set by subclasses).
    name: str = ""

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        unique, counts = dataset.unique_rows()
        self._unique = unique
        self._counts = counts

    # ------------------------------------------------------------------
    # shared accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def total(self) -> int:
        """Coverage of the root pattern = number of tuples ``n``."""
        return self._dataset.n

    @property
    def unique_count(self) -> int:
        """Number of distinct value combinations present in the data."""
        return len(self._unique)

    @property
    def unique_rows(self) -> np.ndarray:
        """The distinct value combinations the masks range over."""
        return self._unique

    def _check_pattern(self, pattern: Pattern) -> None:
        if len(pattern) != self._dataset.d:
            raise PatternError(
                f"pattern of length {len(pattern)} against d={self._dataset.d}"
            )
        for index in pattern.deterministic_indices():
            value = pattern[index]
            if not 0 <= value < self._dataset.cardinalities[index]:
                raise PatternError(
                    f"pattern {pattern} has out-of-range value {value} "
                    f"at attribute {index}"
                )

    # ------------------------------------------------------------------
    # abstract mask kernel
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def index_nbytes(self) -> int:
        """Bytes held by the inverted index (for memory accounting)."""

    @abstractmethod
    def full_mask(self) -> Mask:
        """Mask matching every unique combination (the root pattern)."""

    @abstractmethod
    def value_mask(self, attribute: int, value: int) -> Mask:
        """Inverted-index vector for ``attribute == value`` (do not mutate)."""

    @abstractmethod
    def restrict(self, mask: Mask, attribute: int, value: int) -> Mask:
        """``mask AND (attribute == value)`` — one child step down the graph."""

    @abstractmethod
    def restrict_children(self, mask: Mask, attribute: int) -> List[Mask]:
        """All of ``mask AND (attribute == v)`` in one vectorized pass.

        Returns one child mask per value of ``attribute``, in value order —
        the sibling family a traversal expands when it specializes one
        ``X`` element.
        """

    @abstractmethod
    def count(self, mask: Mask) -> int:
        """Total multiplicity of the combinations selected by ``mask``."""

    @abstractmethod
    def count_many(self, masks: Sequence[Mask]) -> np.ndarray:
        """Coverage of a whole frontier of masks in one vectorized pass."""

    @abstractmethod
    def mask_to_bool(self, mask: Mask) -> np.ndarray:
        """The mask as a boolean array over the unique combinations."""

    # ------------------------------------------------------------------
    # pattern-level queries (shared composition)
    # ------------------------------------------------------------------
    def match_mask(self, pattern: Pattern) -> Mask:
        """Mask over unique combinations matching ``pattern``."""
        self._check_pattern(pattern)
        mask = self.full_mask()
        for index in pattern.deterministic_indices():
            mask = self.restrict(mask, index, pattern[index])
        return mask

    def coverage(self, pattern: Pattern) -> int:
        """Definition 2: number of tuples matching ``pattern``."""
        return self.count(self.match_mask(pattern))

    def coverage_many(self, patterns: Sequence[Pattern]) -> np.ndarray:
        """Coverage of many patterns, counted in one batched pass."""
        if not patterns:
            return np.zeros(0, dtype=np.int64)
        return self.count_many([self.match_mask(p) for p in patterns])


#: Anything that names an engine: a registry key, a class, an instance, or
#: ``None`` for the default.  Defined after the class so the alias holds the
#: real type (annotations referencing it resolve in any importing module).
EngineSpec = Union[None, str, Type[CoverageEngine], CoverageEngine]


def resolve_engine(spec: EngineSpec, dataset: Dataset) -> CoverageEngine:
    """Build (or pass through) the engine selected by ``spec``.

    Accepts a registry name (``"dense"``/``"packed"``), an engine class, an
    already-built instance (returned as-is), or ``None`` for the default.
    """
    if spec is None:
        spec = DEFAULT_ENGINE
    if isinstance(spec, CoverageEngine):
        if spec.dataset is not dataset:
            raise ReproError(
                f"engine was built for a different dataset "
                f"({spec.dataset!r} vs {dataset!r}); pass the engine class "
                f"or name to rebuild it"
            )
        return spec
    if isinstance(spec, str):
        if spec not in ENGINES:
            raise ReproError(
                f"unknown coverage engine {spec!r}; available: {sorted(ENGINES)}"
            )
        return ENGINES[spec](dataset)
    if isinstance(spec, type) and issubclass(spec, CoverageEngine):
        return spec(dataset)
    raise ReproError(f"cannot interpret {spec!r} as a coverage engine")


def engine_name(spec: EngineSpec) -> str:
    """Canonical registry name of an engine spec (for non-dataset reuse)."""
    if spec is None:
        return DEFAULT_ENGINE
    if isinstance(spec, str):
        if spec not in ENGINES:
            raise ReproError(
                f"unknown coverage engine {spec!r}; available: {sorted(ENGINES)}"
            )
        return spec
    if isinstance(spec, CoverageEngine):
        return type(spec).name
    if isinstance(spec, type) and issubclass(spec, CoverageEngine):
        return spec.name
    raise ReproError(f"cannot interpret {spec!r} as a coverage engine")
