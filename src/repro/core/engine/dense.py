"""Dense boolean-ndarray coverage engine (the seed design, kept as baseline).

One unpacked ``bool`` vector per attribute value over the unique value
combinations; masks are ``bool`` ndarrays.  Simple, branch-free, and the
reference the packed backend is property-tested against — but it moves 8×
the memory of :class:`~repro.core.engine.packed.PackedBitsetEngine` per AND.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.engine.base import (
    DEFAULT_MASK_CACHE,
    CoverageEngine,
    register_engine,
)
from repro.data.dataset import Dataset


@register_engine
class DenseBoolEngine(CoverageEngine):
    """Coverage queries over unpacked boolean membership vectors."""

    name = "dense"

    def __init__(
        self,
        dataset: Dataset,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        kernel_tier: str = None,
    ) -> None:
        super().__init__(
            dataset, mask_cache_size=mask_cache_size, kernel_tier=kernel_tier
        )
        # _index[i][v] is the boolean vector over unique rows with value v
        # on attribute i (the inverted index of Appendix A).
        self._index: List[np.ndarray] = []
        unique = self._unique
        for i, cardinality in enumerate(dataset.cardinalities):
            if len(unique):
                column = unique[:, i]
                per_value = np.zeros((cardinality, len(unique)), dtype=bool)
                per_value[column, np.arange(len(unique))] = True
            else:
                per_value = np.zeros((cardinality, 0), dtype=bool)
            self._index.append(per_value)

    # ------------------------------------------------------------------
    # mask kernel
    # ------------------------------------------------------------------
    @property
    def index_nbytes(self) -> int:
        return sum(per_value.nbytes for per_value in self._index)

    def full_mask(self) -> np.ndarray:
        return np.ones(len(self._unique), dtype=bool)

    def value_mask(self, attribute: int, value: int) -> np.ndarray:
        return self._index[attribute][value]

    def restrict(self, mask: np.ndarray, attribute: int, value: int) -> np.ndarray:
        return np.logical_and(mask, self._index[attribute][value])

    def restrict_children(self, mask: np.ndarray, attribute: int) -> List[np.ndarray]:
        family = np.logical_and(mask[np.newaxis, :], self._index[attribute])
        return list(family)

    def count(self, mask: np.ndarray) -> int:
        return int(self._counts[mask].sum())

    def count_many(self, masks: Sequence[np.ndarray]) -> np.ndarray:
        if not len(masks):
            return np.zeros(0, dtype=np.int64)
        return np.stack(masks) @ self._counts

    def mask_to_bool(self, mask: np.ndarray) -> np.ndarray:
        return np.asarray(mask, dtype=bool)

    def _compute_match_mask(self, pattern) -> np.ndarray:
        # Override the generic chain to AND in place over one buffer.
        mask = self.full_mask()
        for index in pattern.deterministic_indices():
            np.logical_and(mask, self._index[index][pattern[index]], out=mask)
        return mask
