"""Out-of-core shard storage for the sharded coverage engine.

The sharded engine's unit of work is a shard: a contiguous, word-aligned
window of one flat packed word space.  This module makes that unit the
load/evict unit of an out-of-core index:

* :class:`ShardStoreWriter` serializes each shard as it is built — one
  ``.npy`` file holding the shard's stacked ``(sum(c_i), W_j)`` membership
  words (every attribute-value row side by side) plus, for datasets with
  duplicate rows, one ``.npy`` file with the shard's padded multiplicity
  vector — and finishes with a small ``manifest.json`` describing the
  layout, so the full index never has to exist in memory.
* :class:`MmapShardStore` opens those files read-only via ``np.memmap``
  and hands shards out through a byte-budgeted LRU loader
  (``max_resident_bytes=``): coverage queries stream over shards the
  hardware cannot hold at once, and the loader's instrumentation
  (:meth:`MmapShardStore.stats`) proves it.  Residency is tracked **per
  component**: a shard's word block and its multiplicity vector load and
  evict independently (``shard_words`` / ``shard_counts``), so the
  counting kernels — which never read a membership word — charge only the
  small count vectors against the budget instead of the whole shard.

Because the shard files are immutable and addressed by path, they are also
the substrate for **process-pool fan-out**: a child process attaches to the
spill directory by path (no pickling of word arrays) and runs the same
per-shard kernels; :func:`run_shard_op` is the module-level entry point the
pool executes.  Results reduce in deterministic shard order, so answers are
bit-for-bit identical to the serial path.

Spill directory layout::

    <spill_dir>/<unique subdir>/
        manifest.json           # format, layout, dataset fingerprint
        shard_0000.words.npy    # (sum(c_i), W_0) uint64
        shard_0000.counts.npy   # (W_0 * 64,) int64 — absent when uniform
        shard_0001.words.npy
        ...

The manifest is written last (atomically), so a directory without one is an
incomplete spill and is rejected with a clear :class:`EngineError` — as is
any missing, truncated, or corrupted shard file.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine.kernels import (
    Kernels,
    _py_and_family,
    _py_and_rows,
    _py_count,
    _py_count_rows,
    get_kernels,
)
from repro.exceptions import EngineError

_WORD_BITS = 64

#: Original manifest format (no per-shard fingerprints or split keys).
MANIFEST_FORMAT_V1 = "repro-shard-store/v1"

#: Current manifest format: per-shard slice fingerprints + start keys
#: (the substrate of :meth:`ShardStoreWriter.delta_write`) and an optional
#: ``dataset.npz`` payload for warm-start attaches.
MANIFEST_FORMAT = "repro-shard-store/v2"

#: Formats :meth:`MmapShardStore.open` accepts (v1 dirs stay readable;
#: they simply carry no fingerprints, so delta writes treat every shard
#: as dirty).
SUPPORTED_MANIFEST_FORMATS = (MANIFEST_FORMAT_V1, MANIFEST_FORMAT)

MANIFEST_NAME = "manifest.json"

#: Optional sidecar with the dataset's unique rows + multiplicities, so a
#: spill directory alone can warm-start a serving process
#: (:func:`load_spill_dataset`).
DATASET_PAYLOAD_NAME = "dataset.npz"

#: Top-level fields every manifest must carry.
_MANIFEST_KEYS = (
    "uniform",
    "total_words",
    "cardinalities",
    "row_offsets",
    "dataset",
    "shards",
)

#: Fields every per-shard manifest entry must carry.
_SHARD_ENTRY_KEYS = (
    "id",
    "words_file",
    "words_shape",
    "words_size",
    "counts_file",
    "counts_shape",
    "counts_size",
    "word_start",
    "word_stop",
    "unique_start",
    "unique_stop",
    "row_count",
)

#: Per-shard fields v2 manifests additionally carry: the content
#: fingerprint of the shard's unique-combination slice and the slice's
#: first combination (the partition key delta writes re-split by).
_SHARD_ENTRY_KEYS_V2 = ("fingerprint", "start_key")


def shard_slice_fingerprint(
    unique_rows: np.ndarray, counts: Optional[np.ndarray]
) -> str:
    """Content hash of one shard's unique-combination slice.

    The packed word block and padded multiplicity vector of a shard are
    pure functions of ``(unique slice, counts slice, cardinalities)``, so
    two shards with equal fingerprints (under the same schema) have
    bit-identical files — the invariant :meth:`ShardStoreWriter.delta_write`
    relies on to reuse clean shards.  ``counts`` is the slice's exact
    multiplicity vector, or ``None`` for uniform data.
    """
    digest = hashlib.sha256()
    rows = np.ascontiguousarray(unique_rows, dtype=np.int32)
    digest.update(repr(rows.shape).encode())
    digest.update(rows.tobytes())
    if counts is not None:
        digest.update(
            np.ascontiguousarray(counts, dtype=np.int64).tobytes()
        )
    return digest.hexdigest()


def _lex_searchsorted(unique: np.ndarray, key: Sequence[int]) -> int:
    """Leftmost insertion index of ``key`` in lexicographically sorted rows.

    ``unique`` is the (U, d) sorted unique-combination array
    (``np.unique(axis=0)`` order); a structured view makes ``searchsorted``
    compare whole rows lexicographically.
    """
    rows = np.ascontiguousarray(unique, dtype=np.int32)
    if rows.shape[0] == 0:
        return 0
    view = rows.view([("", rows.dtype)] * rows.shape[1]).ravel()
    needle = np.array(tuple(int(v) for v in key), dtype=view.dtype)
    return int(np.searchsorted(view, needle, side="left"))


# ----------------------------------------------------------------------
# pure per-shard kernels (shared by serial, thread, and process paths);
# the implementations now live in repro.core.engine.kernels — the python
# tier keeps its old module-level names here, and apply_shard_op
# dispatches through whichever Kernels tier the caller holds (defaulting
# to the env-resolved tier in pool children).
# ----------------------------------------------------------------------
and_rows = _py_and_rows
and_family = _py_and_family
weighted_count = _py_count
weighted_count_rows = _py_count_rows


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class ShardStoreWriter:
    """Streams shard blocks to a spill directory, one shard at a time.

    Args:
        directory: the spill directory to populate.  Created if missing;
            refuses a directory that already holds a manifest.
        cardinalities: the dataset's attribute cardinalities (fixes the
            stacked row layout: attribute ``i``'s value rows occupy
            ``offsets[i]:offsets[i+1]`` of every shard block).
        uniform: True when every multiplicity is 1; no counts files are
            written and counting is pure popcount.
        dataset_meta: identification record stored in the manifest
            (``n`` / ``d`` / ``unique`` / ``fingerprint``) and validated on
            attach.
    """

    def __init__(
        self,
        directory,
        *,
        cardinalities: Sequence[int],
        uniform: bool,
        dataset_meta: Dict[str, Any],
    ) -> None:
        self._path = Path(directory)
        self._path.mkdir(parents=True, exist_ok=True)
        if (self._path / MANIFEST_NAME).exists():
            raise EngineError(
                f"spill directory {self._path} already holds a shard store"
            )
        self._cardinalities = [int(c) for c in cardinalities]
        self._uniform = bool(uniform)
        self._dataset_meta = dict(dataset_meta)
        self._entries: List[Dict[str, Any]] = []
        self._word_offset = 0
        self._finished = False

    @property
    def path(self) -> Path:
        return self._path

    def add_shard(
        self,
        words: np.ndarray,
        counts: Optional[np.ndarray],
        *,
        unique_start: int,
        unique_stop: int,
        row_count: int,
        fingerprint: Optional[str] = None,
        start_key: Optional[Sequence[int]] = None,
    ) -> None:
        """Serialize one shard block (``(sum(c_i), W_j)`` words + counts).

        ``fingerprint`` is the slice's :func:`shard_slice_fingerprint` and
        ``start_key`` the slice's first unique combination (``None`` for an
        empty slice) — the v2 manifest fields delta writes diff by.
        """
        if self._finished:
            raise EngineError("shard store writer already finished")
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[0] != sum(self._cardinalities):
            raise EngineError(
                f"shard block must be (sum(c_i), W); got shape {words.shape}"
            )
        shard_id = len(self._entries)
        words_file = f"shard_{shard_id:04d}.words.npy"
        np.save(self._path / words_file, words)
        entry: Dict[str, Any] = {
            "id": shard_id,
            "words_file": words_file,
            "words_shape": [int(s) for s in words.shape],
            "words_size": int((self._path / words_file).stat().st_size),
            "counts_file": None,
            "counts_shape": None,
            "counts_size": 0,
            "word_start": self._word_offset,
            "word_stop": self._word_offset + int(words.shape[1]),
            "unique_start": int(unique_start),
            "unique_stop": int(unique_stop),
            "row_count": int(row_count),
            "fingerprint": fingerprint,
            "start_key": (
                None if start_key is None else [int(v) for v in start_key]
            ),
        }
        if not self._uniform:
            if counts is None:
                raise EngineError("non-uniform store requires shard counts")
            counts = np.ascontiguousarray(counts, dtype=np.int64)
            counts_file = f"shard_{shard_id:04d}.counts.npy"
            np.save(self._path / counts_file, counts)
            entry["counts_file"] = counts_file
            entry["counts_shape"] = [int(counts.shape[0])]
            entry["counts_size"] = int((self._path / counts_file).stat().st_size)
        self._entries.append(entry)
        self._word_offset = entry["word_stop"]

    def link_shard(
        self,
        prev_path,
        prev_entry: Dict[str, Any],
        *,
        unique_start: int,
        unique_stop: int,
        fingerprint: Optional[str],
        start_key: Optional[Sequence[int]],
    ) -> None:
        """Adopt an unchanged shard from a previous store without rewriting.

        The previous shard's files are hard-linked into this directory
        (falling back to a copy across filesystems), so a clean shard costs
        directory entries, not bytes.  The caller guarantees the slice
        content is identical (fingerprint equality); layout offsets are
        recomputed for this store's shard order.
        """
        if self._finished:
            raise EngineError("shard store writer already finished")
        prev_path = Path(prev_path)
        shard_id = len(self._entries)
        width = int(prev_entry["word_stop"]) - int(prev_entry["word_start"])
        entry: Dict[str, Any] = {
            "id": shard_id,
            "words_file": f"shard_{shard_id:04d}.words.npy",
            "words_shape": [int(s) for s in prev_entry["words_shape"]],
            "words_size": int(prev_entry["words_size"]),
            "counts_file": None,
            "counts_shape": None,
            "counts_size": 0,
            "word_start": self._word_offset,
            "word_stop": self._word_offset + width,
            "unique_start": int(unique_start),
            "unique_stop": int(unique_stop),
            "row_count": int(prev_entry["row_count"]),
            "fingerprint": fingerprint,
            "start_key": (
                None if start_key is None else [int(v) for v in start_key]
            ),
        }
        self._link_file(
            prev_path / prev_entry["words_file"],
            self._path / entry["words_file"],
        )
        if prev_entry["counts_file"] is not None:
            if self._uniform:
                raise EngineError(
                    "cannot reuse a multiplicity shard in a uniform store"
                )
            entry["counts_file"] = f"shard_{shard_id:04d}.counts.npy"
            entry["counts_shape"] = [int(prev_entry["counts_shape"][0])]
            entry["counts_size"] = int(prev_entry["counts_size"])
            self._link_file(
                prev_path / prev_entry["counts_file"],
                self._path / entry["counts_file"],
            )
        elif not self._uniform:
            raise EngineError(
                "cannot reuse a uniform shard in a multiplicity store"
            )
        self._entries.append(entry)
        self._word_offset = entry["word_stop"]

    @staticmethod
    def _link_file(source: Path, target: Path) -> None:
        try:
            os.link(source, target)
        except OSError:
            # Cross-device spill roots (or filesystems without hard links)
            # degrade to a copy; correctness is unaffected.
            shutil.copy2(source, target)

    def finish(
        self,
        max_resident_bytes: Optional[int] = None,
        owns_files: bool = True,
        dataset_payload: Optional[
            Tuple[np.ndarray, np.ndarray, Sequence[str]]
        ] = None,
    ) -> "MmapShardStore":
        """Write the manifest (atomically, last) and open the store.

        ``dataset_payload`` — ``(unique rows, multiplicities, attribute
        names)`` — additionally serializes the dataset's logical content
        next to the shards, so :func:`load_spill_dataset` can warm-start a
        fresh process from the spill directory alone.
        """
        if self._finished:
            raise EngineError("shard store writer already finished")
        self._finished = True
        if dataset_payload is not None:
            unique, counts, names = dataset_payload
            np.savez(
                self._path / DATASET_PAYLOAD_NAME,
                unique=np.ascontiguousarray(unique, dtype=np.int32),
                counts=np.ascontiguousarray(counts, dtype=np.int64),
                names=np.asarray([str(name) for name in names]),
            )
        offsets = np.concatenate(
            [[0], np.cumsum(self._cardinalities, dtype=np.int64)]
        )
        manifest = {
            "format": MANIFEST_FORMAT,
            "uniform": self._uniform,
            "word_bits": _WORD_BITS,
            "total_words": self._word_offset,
            "cardinalities": self._cardinalities,
            "row_offsets": [int(o) for o in offsets],
            "dataset": self._dataset_meta,
            "shards": self._entries,
        }
        tmp = self._path / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(tmp, self._path / MANIFEST_NAME)
        return MmapShardStore(
            self._path,
            manifest,
            max_resident_bytes=max_resident_bytes,
            owns_files=owns_files,
        )

    # ------------------------------------------------------------------
    # incremental spill reuse
    # ------------------------------------------------------------------
    @classmethod
    def delta_write(
        cls,
        prev_store: "MmapShardStore",
        dataset,
        directory,
        *,
        max_resident_bytes: Optional[int] = None,
        owns_files: bool = True,
        kernel_tier: Optional[str] = None,
    ) -> "DeltaWriteResult":
        """Re-spill ``dataset`` into ``directory``, reusing clean shards.

        The previous store's shard partition is re-applied to the new
        dataset's (sorted) unique-combination space via the manifest's
        per-shard ``start_key`` split points; each re-split slice whose
        :func:`shard_slice_fingerprint` matches the previous shard's is
        hard-linked instead of rebuilt, so an append that touches a handful
        of combinations re-serializes O(changed shards) — not the index.
        A v1 manifest (no fingerprints), a changed schema, or a flipped
        uniformity bit degrade gracefully to a full rewrite under the
        previous partition arity.  The new manifest commits atomically
        (written last), exactly like a fresh spill.
        """
        from repro.core.engine.sharded import (  # circular-safe: lazy
            _build_shard_block,
            _dataset_meta,
        )

        unique, counts = dataset.unique_rows()
        unique_total = len(unique)
        uniform = bool(unique_total == 0 or counts.max(initial=1) == 1)
        manifest = prev_store.manifest
        prev_entries = manifest["shards"]
        cardinalities = [int(c) for c in dataset.cardinalities]
        # Conditions under which per-shard reuse is sound at all; when any
        # fails, every slice is treated as dirty (a full rewrite that still
        # produces a valid v2 store).
        reusable = (
            cardinalities == [int(c) for c in manifest["cardinalities"]]
            and bool(manifest["uniform"]) == uniform
            and dataset.d > 0
            and all(
                entry.get("fingerprint") is not None
                and entry.get("start_key") is not None
                for entry in prev_entries
            )
        )
        if reusable:
            # Re-split the new unique space at the previous shards' start
            # keys; clean shards land on identical slices, insertions dirty
            # only the slices they fall into.
            bounds = [0]
            for entry in prev_entries[1:]:
                position = _lex_searchsorted(unique, entry["start_key"])
                bounds.append(max(position, bounds[-1]))
            bounds.append(unique_total)
        else:
            # Full rewrite: an even partition at the previous arity
            # (clamped like a fresh build), since nothing can be reused.
            arity = max(1, min(len(prev_entries), max(unique_total, 1)))
            bounds = list(
                np.linspace(0, unique_total, arity + 1).astype(np.int64)
            )

        inverse = None
        writer = cls(
            directory,
            cardinalities=cardinalities,
            uniform=uniform,
            dataset_meta=_dataset_meta(dataset, unique_total),
        )
        reused = 0
        reused_bytes = 0
        written_bytes = 0
        dirty: List[int] = []
        for shard_id, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
            slice_counts = None if uniform else counts[start:stop]
            fingerprint = shard_slice_fingerprint(
                unique[start:stop], slice_counts
            )
            start_key = unique[start].tolist() if stop > start else None
            prev_entry = prev_entries[shard_id]
            if reusable and prev_entry["fingerprint"] == fingerprint:
                writer.link_shard(
                    prev_store.path,
                    prev_entry,
                    unique_start=start,
                    unique_stop=stop,
                    fingerprint=fingerprint,
                    start_key=start_key,
                )
                reused += 1
                reused_bytes += int(prev_entry["words_size"]) + int(
                    prev_entry["counts_size"]
                )
                continue
            if inverse is None:
                inverse = dataset.unique_inverse()
            block, counts_padded, row_count = _build_shard_block(
                dataset,
                unique,
                counts,
                start,
                stop,
                inverse=inverse,
                kernel_tier=kernel_tier,
            )
            writer.add_shard(
                block,
                None if uniform else counts_padded,
                unique_start=start,
                unique_stop=stop,
                row_count=row_count,
                fingerprint=fingerprint,
                start_key=start_key,
            )
            entry = writer._entries[-1]
            written_bytes += int(entry["words_size"]) + int(entry["counts_size"])
            dirty.append(shard_id)
        store = writer.finish(
            max_resident_bytes=max_resident_bytes,
            owns_files=owns_files,
            dataset_payload=(unique, counts, dataset.schema.names),
        )
        return DeltaWriteResult(
            store=store,
            reused_shards=reused,
            rewritten_shards=len(dirty),
            reused_bytes=reused_bytes,
            written_bytes=written_bytes,
            dirty_shards=tuple(dirty),
        )


class DeltaWriteResult(NamedTuple):
    """What a :meth:`ShardStoreWriter.delta_write` run reused vs rewrote."""

    store: "MmapShardStore"
    reused_shards: int
    rewritten_shards: int
    reused_bytes: int
    written_bytes: int
    dirty_shards: Tuple[int, ...]


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
class _Resident(NamedTuple):
    array: np.ndarray
    nbytes: int


#: Residency components a shard splits into (the LRU's load/evict units).
_COMPONENTS = ("words", "counts")


def _remove_tree(path: str) -> None:
    shutil.rmtree(path, ignore_errors=True)


class MmapShardStore:
    """Read-only mmap access to a spill directory, behind an LRU loader.

    Shard components are loaded on demand with ``np.memmap`` and kept
    resident until the byte budget (``max_resident_bytes``; ``None`` =
    unlimited) forces LRU eviction.  The unit of residency is a shard
    **component** — the word block (:meth:`shard_words`) or the
    multiplicity vector (:meth:`shard_counts`) — so count-only query
    streams never load or budget-charge the much larger word blocks.  A
    component larger than the whole budget still loads (the store degrades
    to one resident entry instead of failing) and is counted in
    ``over_budget_loads``.

    Thread-safe: the thread-pool fan-out path loads shards concurrently.
    Use :meth:`MmapShardStore.open` to attach to an existing directory;
    :class:`ShardStoreWriter` builds new ones.
    """

    def __init__(
        self,
        path,
        manifest: Dict[str, Any],
        max_resident_bytes: Optional[int] = None,
        owns_files: bool = False,
    ) -> None:
        if max_resident_bytes is not None:
            max_resident_bytes = int(max_resident_bytes)
            if max_resident_bytes < 1:
                raise EngineError(
                    f"max_resident_bytes must be >= 1, got {max_resident_bytes}"
                )
        self._path = Path(path)
        self._manifest = manifest
        self._max_resident = max_resident_bytes
        self._owns = bool(owns_files)
        self._lock = threading.Lock()
        # Keyed by (shard_id, component): words and counts are independent
        # load/evict units so count-only streams stay cheap.
        self._resident: "OrderedDict[Tuple[int, str], _Resident]" = OrderedDict()
        self._resident_bytes = 0
        self._component_bytes = {component: 0 for component in _COMPONENTS}
        self._component_loads = {component: 0 for component in _COMPONENTS}
        self._closed = False
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.over_budget_loads = 0
        self.peak_resident_bytes = 0
        # GC safety net: an abandoned owned store still removes its spill
        # files at collection / interpreter exit.
        self._finalizer = (
            weakref.finalize(self, _remove_tree, str(self._path))
            if self._owns
            else None
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory,
        max_resident_bytes: Optional[int] = None,
        owns_files: bool = False,
    ) -> "MmapShardStore":
        """Attach to an existing spill directory via its manifest.

        Validates the manifest format and every shard file's size up front,
        so truncation is reported as a clear :class:`EngineError` instead of
        garbage coverage results.
        """
        path = Path(directory)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise EngineError(
                f"{path} is not a shard store (no {MANIFEST_NAME}; "
                f"incomplete spill directories are rejected)"
            )
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise EngineError(
                f"unreadable shard-store manifest {manifest_path}: {error}"
            ) from error
        if manifest.get("format") not in SUPPORTED_MANIFEST_FORMATS:
            raise EngineError(
                f"unsupported shard-store format {manifest.get('format')!r} "
                f"in {manifest_path}; expected one of "
                f"{list(SUPPORTED_MANIFEST_FORMATS)}"
            )
        # Hand-edited or differently-versioned manifests must fail with a
        # clear error here, not a KeyError deep in a query.
        missing = [key for key in _MANIFEST_KEYS if key not in manifest]
        if missing or not isinstance(manifest["shards"], list):
            raise EngineError(
                f"malformed shard-store manifest {manifest_path}: "
                f"missing or invalid fields {missing or ['shards']}"
            )
        required_entry_keys = _SHARD_ENTRY_KEYS
        if manifest["format"] == MANIFEST_FORMAT:
            required_entry_keys = _SHARD_ENTRY_KEYS + _SHARD_ENTRY_KEYS_V2
        for entry in manifest["shards"]:
            bad = not isinstance(entry, dict) or any(
                key not in entry for key in required_entry_keys
            )
            if bad:
                raise EngineError(
                    f"malformed shard-store manifest {manifest_path}: "
                    f"incomplete shard entry {entry!r}"
                )
        store = cls(
            path,
            manifest,
            max_resident_bytes=max_resident_bytes,
            owns_files=owns_files,
        )
        rows = sum(manifest["cardinalities"])
        for entry in manifest["shards"]:
            # The block shapes must agree with the word windows the kernels
            # slice by, and the word windows with the packed width of the
            # unique spans — or a self-consistent corrupted manifest lands
            # bits at wrong offsets / broadcasts into silently wrong
            # answers instead of an error.
            width = entry["word_stop"] - entry["word_start"]
            unique_span = entry["unique_stop"] - entry["unique_start"]
            if width != (unique_span + _WORD_BITS - 1) // _WORD_BITS:
                raise EngineError(
                    f"shard {entry['id']} of {path} spans {unique_span} "
                    f"unique combinations but {width} mask words; the "
                    f"packed layout requires "
                    f"{(unique_span + _WORD_BITS - 1) // _WORD_BITS}"
                )
            if entry["words_shape"] != [rows, width]:
                raise EngineError(
                    f"shard {entry['id']} of {path} has block shape "
                    f"{entry['words_shape']}, but its manifest word window "
                    f"requires {[rows, width]}"
                )
            store._check_file(entry["words_file"], entry["words_size"])
            if entry["counts_file"] is not None:
                if entry["counts_shape"] != [width * _WORD_BITS]:
                    raise EngineError(
                        f"shard {entry['id']} of {path} has counts shape "
                        f"{entry['counts_shape']}, but its manifest word "
                        f"window requires {[width * _WORD_BITS]}"
                    )
                store._check_file(entry["counts_file"], entry["counts_size"])
        return store

    def _check_file(self, filename: str, expected_size: int) -> None:
        file_path = self._path / filename
        try:
            actual = file_path.stat().st_size
        except OSError as error:
            raise EngineError(f"missing shard file {file_path}") from error
        if actual != expected_size:
            raise EngineError(
                f"shard file {file_path} is truncated or corrupted "
                f"({actual} bytes on disk, manifest records {expected_size})"
            )

    # ------------------------------------------------------------------
    # manifest accessors
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def manifest(self) -> Dict[str, Any]:
        return self._manifest

    @property
    def shard_count(self) -> int:
        return len(self._manifest["shards"])

    @property
    def format_version(self) -> int:
        """1 for legacy manifests (no fingerprints), 2 for current ones."""
        return 1 if self._manifest["format"] == MANIFEST_FORMAT_V1 else 2

    def shard_fingerprint(self, shard_id: int) -> Optional[str]:
        """The shard's slice fingerprint (``None`` in v1 manifests)."""
        return self._manifest["shards"][shard_id].get("fingerprint")

    @property
    def uniform(self) -> bool:
        return bool(self._manifest["uniform"])

    @property
    def total_words(self) -> int:
        return int(self._manifest["total_words"])

    @property
    def row_offsets(self) -> List[int]:
        """Stacked-block start row of each attribute (length ``d + 1``)."""
        return list(self._manifest["row_offsets"])

    def shard_nbytes(self, shard_id: int) -> int:
        """Bytes the shard occupies when resident (words + counts)."""
        entry = self._manifest["shards"][shard_id]
        rows, words = entry["words_shape"]
        nbytes = rows * words * 8
        if entry["counts_shape"] is not None:
            nbytes += entry["counts_shape"][0] * 8
        return nbytes

    @property
    def data_nbytes(self) -> int:
        """On-disk index bytes (word + count payloads, headers excluded)."""
        return sum(
            self.shard_nbytes(shard_id) for shard_id in range(self.shard_count)
        )

    @property
    def words_nbytes(self) -> int:
        """On-disk membership-word bytes only (the in-memory engines'
        ``index_nbytes`` counts words, not multiplicities — same basis)."""
        total = 0
        for entry in self._manifest["shards"]:
            rows, words = entry["words_shape"]
            total += rows * words * 8
        return total

    @property
    def max_resident_bytes(self) -> Optional[int]:
        return self._max_resident

    # ------------------------------------------------------------------
    # the loader
    # ------------------------------------------------------------------
    def shard_words(self, shard_id: int) -> np.ndarray:
        """The shard's stacked membership-word block (counts untouched)."""
        return self._component(shard_id, "words")

    def shard_counts(self, shard_id: int) -> Optional[np.ndarray]:
        """The shard's padded multiplicity vector, or ``None`` when uniform.

        The count kernels' accessor: only the (small) count vector is
        loaded and charged against ``max_resident_bytes`` — the shard's
        word block, typically an order of magnitude larger, stays on disk.
        """
        meta = self._manifest["shards"][shard_id]
        if meta["counts_file"] is None:
            if self._closed:
                raise EngineError(f"shard store {self._path} is closed")
            return None
        return self._component(shard_id, "counts")

    def _component(self, shard_id: int, component: str) -> np.ndarray:
        """Load one residency unit (a shard's words *or* counts)."""
        key = (shard_id, component)
        with self._lock:
            if self._closed:
                raise EngineError(f"shard store {self._path} is closed")
            entry = self._resident.get(key)
            if entry is not None:
                self.hits += 1
                self._resident.move_to_end(key)
                return entry.array
            meta = self._manifest["shards"][shard_id]
        # The disk opens run outside the lock so pool threads load shards
        # concurrently; only the LRU bookkeeping below serializes.
        if component == "words":
            array = self._open_array(
                meta["words_file"], tuple(meta["words_shape"]), np.uint64
            )
        else:
            array = self._open_array(
                meta["counts_file"], tuple(meta["counts_shape"]), np.int64
            )
        nbytes = int(array.nbytes)
        with self._lock:
            if self._closed:
                raise EngineError(f"shard store {self._path} is closed")
            entry = self._resident.get(key)
            if entry is not None:
                # Another thread loaded it while we read; keep theirs.
                self.hits += 1
                self._resident.move_to_end(key)
                return entry.array
            self.loads += 1
            self._component_loads[component] += 1
            if self._max_resident is not None:
                while (
                    self._resident
                    and self._resident_bytes + nbytes > self._max_resident
                ):
                    evicted_key, evicted = self._resident.popitem(last=False)
                    self._resident_bytes -= evicted.nbytes
                    self._component_bytes[evicted_key[1]] -= evicted.nbytes
                    self.evictions += 1
                if nbytes > self._max_resident:
                    self.over_budget_loads += 1
            self._resident[key] = _Resident(array, nbytes)
            self._resident_bytes += nbytes
            self._component_bytes[component] += nbytes
            self.peak_resident_bytes = max(
                self.peak_resident_bytes, self._resident_bytes
            )
            return array

    def _open_array(
        self, filename: str, expected_shape: Tuple[int, ...], expected_dtype
    ) -> np.ndarray:
        path = self._path / filename
        try:
            # A zero-size payload cannot be mmapped; plain load is exact.
            if 0 in expected_shape:
                array = np.load(path)
            else:
                array = np.load(path, mmap_mode="r")
        except (OSError, ValueError, EOFError) as error:
            raise EngineError(
                f"corrupted shard file {path}: {error}"
            ) from error
        if array.shape != expected_shape or array.dtype != np.dtype(expected_dtype):
            raise EngineError(
                f"shard file {path} does not match its manifest "
                f"(got {array.dtype}{array.shape}, expected "
                f"{np.dtype(expected_dtype)}{expected_shape})"
            )
        return array

    def stats(self) -> Dict[str, Any]:
        """Loader instrumentation: loads/hits/evictions and residency.

        Loads and resident bytes are also broken down by component
        (``words_*`` / ``counts_*``), exposing the words/counts residency
        split — a count-heavy stream shows ``words_loads == 0`` and zero
        resident word bytes.
        """
        with self._lock:
            return {
                "loads": self.loads,
                "words_loads": self._component_loads["words"],
                "counts_loads": self._component_loads["counts"],
                "hits": self.hits,
                "evictions": self.evictions,
                "over_budget_loads": self.over_budget_loads,
                "resident_shards": len({sid for sid, _ in self._resident}),
                "resident_entries": len(self._resident),
                "resident_bytes": self._resident_bytes,
                "resident_words_bytes": self._component_bytes["words"],
                "resident_counts_bytes": self._component_bytes["counts"],
                "peak_resident_bytes": self.peak_resident_bytes,
                "max_resident_bytes": self._max_resident,
                "shard_count": self.shard_count,
            }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def owns_files(self) -> bool:
        """True when closing the store deletes its spill directory."""
        return self._owns

    def close(self) -> None:
        """Release resident mmaps; delete the spill directory when owned."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._resident.clear()
            self._resident_bytes = 0
            self._component_bytes = {component: 0 for component in _COMPONENTS}
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._owns:
            _remove_tree(str(self._path))


# ----------------------------------------------------------------------
# warm-start payload
# ----------------------------------------------------------------------
def load_spill_dataset(directory):
    """Rebuild the spilled dataset from a directory's ``dataset.npz``.

    Spill directories written at manifest v2 carry the dataset's logical
    content (unique combinations, multiplicities, attribute names), which
    is everything the engine stack observes — so a serving process can
    attach a spill directory it did not write, without the original CSV.
    The reconstructed rows repeat each unique combination by its
    multiplicity; the row *order* differs from the original dataset, but
    the content fingerprint (validated against the manifest here) does not.
    """
    from repro.data.dataset import Dataset, Schema  # circular-safe: lazy

    path = Path(directory)
    payload_path = path / DATASET_PAYLOAD_NAME
    if not payload_path.is_file():
        raise EngineError(
            f"{path} carries no {DATASET_PAYLOAD_NAME}; only spill "
            f"directories written at manifest format {MANIFEST_FORMAT!r} "
            f"can warm-start without the original dataset"
        )
    manifest_path = path / MANIFEST_NAME
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise EngineError(
            f"unreadable shard-store manifest {manifest_path}: {error}"
        ) from error
    try:
        with np.load(payload_path, allow_pickle=False) as payload:
            unique = np.ascontiguousarray(payload["unique"], dtype=np.int32)
            counts = np.ascontiguousarray(payload["counts"], dtype=np.int64)
            names = [str(name) for name in payload["names"]]
    except (OSError, ValueError, KeyError, EOFError) as error:
        raise EngineError(
            f"corrupted dataset payload {payload_path}: {error}"
        ) from error
    cardinalities = [int(c) for c in manifest.get("cardinalities", [])]
    if unique.ndim != 2 or unique.shape[1] != len(cardinalities) or len(
        counts
    ) != len(unique):
        raise EngineError(
            f"dataset payload {payload_path} does not match its manifest "
            f"(unique {unique.shape}, counts {counts.shape}, "
            f"{len(cardinalities)} attributes)"
        )
    schema = Schema.of(names, cardinalities)
    rows = np.repeat(unique, counts, axis=0) if len(unique) else unique
    dataset = Dataset(schema, rows)
    dataset._prime_unique_cache(unique, counts)
    expected = manifest.get("dataset", {}).get("fingerprint")
    if expected is not None and dataset.content_fingerprint() != expected:
        raise EngineError(
            f"dataset payload {payload_path} fingerprints "
            f"{dataset.content_fingerprint()}, but the manifest records "
            f"{expected}; the spill directory is inconsistent"
        )
    return dataset


# ----------------------------------------------------------------------
# process-pool fan-out
# ----------------------------------------------------------------------
#: Per-process cache of attached stores, keyed by spill path.  Children
#: attach by path — no word arrays ever cross the process boundary.
_WORKER_STORES: Dict[str, MmapShardStore] = {}


def worker_attach(path: str, max_resident_bytes: Optional[int] = None) -> None:
    """Pool initializer: open the spill directory once per child process.

    The resident budget applies per process — each child streams its shards
    under its own ``max_resident_bytes`` ceiling.  A cached store that was
    closed, whose directory was replaced, or that was opened under a
    different budget (e.g. inherited across ``fork`` from an in-process
    fallback attach) is re-opened rather than served stale.
    """
    existing = _WORKER_STORES.get(path)
    if (
        existing is None
        or existing.closed
        or existing.max_resident_bytes != max_resident_bytes
    ):
        _WORKER_STORES[path] = MmapShardStore.open(
            path, max_resident_bytes=max_resident_bytes
        )


def worker_detach(path: str) -> bool:
    """Drop a worker-attached store and release its mmap handles.

    The invalidation half of :func:`worker_attach`: a coordinator that
    delta-rewrote a spill directory tells the workers owning dirty shards
    to forget the retired path, so the next attach re-opens fresh files.
    Returns whether a store was actually dropped.
    """
    store = _WORKER_STORES.pop(path, None)
    if store is None:
        return False
    store.close()
    return True


#: Shard-op payloads (all small: mask windows, row ids — never the index).
ShardOp = Tuple[str, int, str, Any]

#: Ops that only read the multiplicity vectors: the shard's word block is
#: neither loaded nor budget-charged for them (the words/counts residency
#: split).  Conversely the remaining ops ("match"/"children") never read
#: the counts.
COUNT_ONLY_OPS = frozenset({"count", "count_rows"})


def apply_shard_op(
    op: str,
    payload: Any,
    words: np.ndarray,
    counts: Optional[np.ndarray],
    kernels: Optional[Kernels] = None,
):
    """Dispatch one per-shard kernel over the shard's loaded arrays.

    The single dispatch shared by the serial, thread-pool, and
    process-pool paths, so the three evaluation modes cannot diverge.
    ``kernels`` selects the tier (the engine passes its own; pool children
    default to the env-resolved tier — both tiers are bit-identical).
    Ops:

    * ``"count"`` — payload = mask window → weighted count (int);
    * ``"count_rows"`` — payload = ``(k, W_j)`` mask matrix window →
      per-row weighted counts;
    * ``"match"`` — payload = ``(start window, index row ids)`` → the
      window after chained AND of the rows;
    * ``"children"`` — payload = ``(mask window, row_start, row_stop)`` →
      the ``(c, W_j)`` sibling-family window.
    """
    if kernels is None:
        kernels = get_kernels()
    if op == "count":
        return kernels.count(payload, counts)
    if op == "count_rows":
        return kernels.count_rows(payload, counts)
    if op == "match":
        window, rows = payload
        return kernels.and_rows(window, words, rows)
    if op == "children":
        window, row_start, row_stop = payload
        return kernels.and_family(window, words[row_start:row_stop])
    raise EngineError(f"unknown shard op {op!r}")


def run_shard_op(args: ShardOp):
    """Execute one per-shard kernel in a pool worker (or in-process).

    ``args`` is ``(spill_path, shard_id, op, payload)``; the index words are
    read from the attached store, so only mask windows and row ids are ever
    pickled.  Pool workers are attached by the :func:`worker_attach`
    initializer, which carries the engine's per-process resident budget;
    the lazy attach below is a fallback for in-process callers and opens
    the store with an unlimited budget.  Ops are dispatched through
    :func:`apply_shard_op`.
    """
    path, shard_id, op, payload = args
    store = _WORKER_STORES.get(path)
    if store is None or store.closed:
        # Unlike the initializer, the fallback states no budget intent, so
        # it must not clobber a pool-attached store's configured budget.
        store = _WORKER_STORES[path] = MmapShardStore.open(path)
    # Load only the component the kernel reads: count ops touch the small
    # multiplicity vectors, word ops the membership block — never both.
    if op in COUNT_ONLY_OPS:
        return apply_shard_op(op, payload, None, store.shard_counts(shard_id))
    return apply_shard_op(op, payload, store.shard_words(shard_id), None)
