"""Sharded coverage engine (the packed index partitioned K ways).

The dataset's rows are split into K shards by partitioning the sorted
unique-combination space into contiguous slices: shard ``j`` owns every
row whose value combination falls in its slice.  Appendix A's index works
over unique combinations, so this keeps each combination (and all its
duplicate rows) in exactly one shard — the shard multiplicity vectors
concatenate to the global one and no work is replicated across shards.

Each shard is indexed by an inner
:class:`~repro.core.engine.packed.PackedBitsetEngine`; the shard word
blocks are laid out side by side in one flat ``uint64`` word space, so a
mask is a single word array in which shard ``j`` owns a contiguous,
word-aligned slice:

* **serial** queries run the fused packed kernels over the whole flat
  array — one ``bitwise_and`` / popcount per query family, so a K-shard
  engine costs the same numpy dispatch as the unsharded one (plus at most
  K-1 words of shard-boundary padding);
* with ``workers=`` the same kernels run per shard slice on a thread pool
  (numpy releases the GIL inside the bitwise/popcount loops) and the
  per-shard partial counts are reduced in shard order, so results are
  bit-for-bit identical to the serial path.

Shard slices are exactly the unit the roadmap's mmap-backed out-of-core
index will load and evict: every kernel below already touches one shard's
words through its ``(word_start, word_stop)`` window only.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.engine.base import (
    DEFAULT_MASK_CACHE,
    CoverageEngine,
    register_engine,
)
from repro.core.engine.packed import PackedBitsetEngine
from repro.data.bitset import popcount_words
from repro.data.dataset import Dataset
from repro.exceptions import ReproError

#: Default number of shards when none is requested.
DEFAULT_SHARDS = 4

_WORD_BITS = 64

_T = TypeVar("_T")

#: A sharded mask: one flat ``uint64`` word array over all shard slices.
ShardedMask = np.ndarray


@dataclass(frozen=True)
class ShardInfo:
    """Placement of one shard inside the engine's flat word space.

    A shard owns the contiguous slice ``[unique_start, unique_stop)`` of
    the engine's (sorted) global unique combinations and the word range
    ``[word_start, word_stop)`` of every mask; both views into the global
    arrays are derivable from the bounds, so no per-shard copies exist.
    """

    row_count: int  #: number of dataset rows (with duplicates) in the shard
    unique_start: int  #: first global unique-combination index of the shard
    unique_stop: int  #: one past the shard's last unique-combination index
    unique_rows: np.ndarray  #: view of the shard's unique-combination slice
    counts: np.ndarray  #: view of the matching multiplicity slice
    word_start: int  #: first word of the shard's mask slice
    word_stop: int  #: one past the shard's last mask word

    @property
    def unique_count(self) -> int:
        return self.unique_stop - self.unique_start


@register_engine
class ShardedEngine(CoverageEngine):
    """Coverage queries over K row-shards of packed membership vectors.

    Args:
        dataset: the dataset to index.
        shards: requested shard count; clamped to the number of distinct
            value combinations (an empty dataset keeps one empty shard) so
            over-sharding degrades gracefully instead of crashing.
        workers: fan the per-shard kernels out over a thread pool of this
            size; ``None`` (default) runs the fused serial kernels.
            Results are identical either way — shard answers are reduced
            in shard order.
        mask_cache_size: capacity of the hot-mask LRU cache layered over
            ``match_mask`` (see :class:`CoverageEngine`).
    """

    name = "sharded"

    def __init__(
        self,
        dataset: Dataset,
        shards: int = DEFAULT_SHARDS,
        workers: Optional[int] = None,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
    ) -> None:
        super().__init__(dataset, mask_cache_size=mask_cache_size)
        shards = int(shards)
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        if workers is not None:
            workers = int(workers)
            if workers < 1:
                raise ReproError(f"worker count must be >= 1, got {workers}")
        self._requested_shards = shards
        self._workers = workers
        # Clamp: more shards than distinct combinations would only produce
        # empty shards (the index's unit of work is a unique combination).
        unique_total = len(self._unique)
        effective = max(1, min(shards, max(unique_total, 1)))
        bounds = np.linspace(0, unique_total, effective + 1).astype(np.int64)
        # Which slice of the (sorted) unique space each row falls in.
        inverse = dataset.unique_inverse()

        self._shards: List[ShardInfo] = []
        attribute_blocks: List[List[np.ndarray]] = [[] for _ in dataset.cardinalities]
        count_blocks: List[np.ndarray] = []
        full_blocks: List[np.ndarray] = []
        uniform = True
        word_offset = 0
        for unique_start, unique_stop in zip(bounds[:-1], bounds[1:]):
            row_indices = np.nonzero(
                (inverse >= unique_start) & (inverse < unique_stop)
            )[0]
            # Each shard is an inner packed engine; its word blocks are
            # harvested into the flat layout and the engine dropped, so the
            # index exists once.  The shard's unique rows are, by
            # construction, exactly the global slice — prime the shard
            # dataset with it so the inner engine skips its own re-sort.
            shard_dataset = dataset.take(row_indices)
            unique_slice = self._unique[unique_start:unique_stop]
            shard_dataset._prime_unique_cache(
                unique_slice, self._counts[unique_start:unique_stop]
            )
            inner = PackedBitsetEngine(shard_dataset, mask_cache_size=0)
            words = inner.full_mask().words
            for attribute in range(dataset.d):
                attribute_blocks[attribute].append(inner.word_matrix(attribute))
            count_blocks.append(inner.counts_padded)
            full_blocks.append(words)
            uniform = uniform and inner.is_uniform
            self._shards.append(
                ShardInfo(
                    row_count=len(row_indices),
                    unique_start=int(unique_start),
                    unique_stop=int(unique_stop),
                    unique_rows=unique_slice,
                    counts=self._counts[unique_start:unique_stop],
                    word_start=word_offset,
                    word_stop=word_offset + len(words),
                )
            )
            word_offset += len(words)

        # The flat index: per attribute a (cardinality, total_words) matrix
        # whose column ranges are the shard slices.
        self._words: List[np.ndarray] = [
            np.ascontiguousarray(np.concatenate(blocks, axis=1))
            for blocks in attribute_blocks
        ]
        self._counts_padded = (
            np.concatenate(count_blocks)
            if count_blocks
            else np.zeros(0, dtype=np.int64)
        )
        self._full_words = (
            np.concatenate(full_blocks)
            if full_blocks
            else np.zeros(0, dtype=np.uint64)
        )
        self._uniform = uniform
        self._word_count = word_offset

        # The pool is created lazily on the first fan-out query and shut
        # down when the engine is closed or garbage-collected, so rebuild
        # churn (e.g. the incremental index) never accumulates idle threads.
        self._fan_out = (
            workers is not None and workers > 1 and len(self._shards) > 1
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards actually built (requested count clamped to n)."""
        return len(self._shards)

    @property
    def shard_infos(self) -> List[ShardInfo]:
        """Placement records of every shard, in shard order."""
        return list(self._shards)

    @property
    def requested_shards(self) -> int:
        """Shard count asked for at construction (before clamping)."""
        return self._requested_shards

    @property
    def workers(self) -> Optional[int]:
        """Thread-pool size for shard fan-out; ``None`` means serial."""
        return self._workers

    def close(self) -> None:
        """Shut the worker pool down (no-op when none was ever started).

        The engine stays usable: a later fan-out query simply starts a
        fresh pool.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _map_shards(self, fn: Callable[[ShardInfo], _T]) -> List[_T]:
        """``[fn(shard_0), …, fn(shard_K-1)]`` on the pool, in shard order.

        Only the worker fan-out paths call this; serial queries use the
        fused flat kernels instead.
        """
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self._workers, len(self._shards)),
                thread_name_prefix="repro-shard",
            )
            self._finalizer = weakref.finalize(
                self, self._executor.shutdown, wait=False
            )
        return list(self._executor.map(fn, self._shards))

    def _template_options(self) -> dict:
        options = super()._template_options()
        options.update(shards=self._requested_shards, workers=self._workers)
        return options

    # ------------------------------------------------------------------
    # counting kernels
    # ------------------------------------------------------------------
    def _count_words(self, words: np.ndarray) -> int:
        """Weighted count of one flat word array (the whole mask space)."""
        if words.size == 0:
            return 0
        if self._uniform:
            return int(popcount_words(words).sum())
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return int(bits @ self._counts_padded)

    def _count_word_matrix(self, matrix: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Weighted count of each row of a ``(k, W)`` word matrix."""
        # Shard-sliced matrices are not C-contiguous, and numpy < 1.23
        # refuses the itemsize-changing views both counting paths take
        # (popcount_words' uint16 fallback and the unpackbits uint8 view).
        matrix = np.ascontiguousarray(matrix)
        if self._uniform:
            return popcount_words(matrix).sum(axis=1, dtype=np.int64)
        if matrix.shape[1] == 0:
            return np.zeros(matrix.shape[0], dtype=np.int64)
        bits = np.unpackbits(matrix.view(np.uint8), axis=1, bitorder="little")
        return bits @ counts

    # ------------------------------------------------------------------
    # mask kernel
    # ------------------------------------------------------------------
    @property
    def index_nbytes(self) -> int:
        return sum(words.nbytes for words in self._words)

    def full_mask(self) -> ShardedMask:
        return self._full_words.copy()

    def value_mask(self, attribute: int, value: int) -> ShardedMask:
        return self._words[attribute][value]

    def restrict(
        self, mask: ShardedMask, attribute: int, value: int
    ) -> ShardedMask:
        return np.bitwise_and(mask, self._words[attribute][value])

    def restrict_children(
        self, mask: ShardedMask, attribute: int
    ) -> List[ShardedMask]:
        index = self._words[attribute]
        if not self._fan_out:
            family = np.bitwise_and(mask[np.newaxis, :], index)
        else:
            family = np.empty_like(index)

            def _and_slice(shard: ShardInfo) -> None:
                window = slice(shard.word_start, shard.word_stop)
                np.bitwise_and(
                    mask[np.newaxis, window], index[:, window], out=family[:, window]
                )

            self._map_shards(_and_slice)
        return list(family)

    def count(self, mask: ShardedMask) -> int:
        if not self._fan_out:
            return self._count_words(mask)
        partials = self._map_shards(
            lambda shard: self._count_shard_words(
                mask[shard.word_start : shard.word_stop], shard
            )
        )
        return int(sum(partials))

    def _count_shard_words(self, words: np.ndarray, shard: ShardInfo) -> int:
        if words.size == 0:
            return 0
        if self._uniform:
            return int(popcount_words(words).sum())
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        counts = self._counts_padded[
            shard.word_start * _WORD_BITS : shard.word_stop * _WORD_BITS
        ]
        return int(bits @ counts)

    def count_many(self, masks: Sequence[ShardedMask]) -> np.ndarray:
        if not len(masks):
            return np.zeros(0, dtype=np.int64)
        matrix = np.stack(masks)
        if not self._fan_out:
            return self._count_word_matrix(matrix, self._counts_padded)
        partials = self._map_shards(
            lambda shard: self._count_word_matrix(
                matrix[:, shard.word_start : shard.word_stop],
                self._counts_padded[
                    shard.word_start * _WORD_BITS : shard.word_stop * _WORD_BITS
                ],
            )
        )
        total = partials[0].copy()
        for partial in partials[1:]:
            total += partial
        return total

    def mask_to_bool(self, mask: ShardedMask) -> np.ndarray:
        selected = np.zeros(self.unique_count, dtype=bool)
        if mask.size == 0:
            return selected
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
        for shard in self._shards:
            start = shard.word_start * _WORD_BITS
            selected[shard.unique_start : shard.unique_stop] = bits[
                start : start + shard.unique_count
            ]
        return selected

    def _compute_match_mask(self, pattern) -> ShardedMask:
        mask = self.full_mask()
        indices = pattern.deterministic_indices()
        if not self._fan_out or not indices:
            for index in indices:
                np.bitwise_and(mask, self._words[index][pattern[index]], out=mask)
            return mask

        def _chain_slice(shard: ShardInfo) -> None:
            window = slice(shard.word_start, shard.word_stop)
            for index in indices:
                np.bitwise_and(
                    mask[window],
                    self._words[index][pattern[index]][window],
                    out=mask[window],
                )

        self._map_shards(_chain_slice)
        return mask
