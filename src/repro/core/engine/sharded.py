"""Sharded coverage engine (the packed index partitioned K ways).

The dataset's rows are split into K shards by partitioning the sorted
unique-combination space into contiguous slices: shard ``j`` owns every
row whose value combination falls in its slice.  Appendix A's index works
over unique combinations, so this keeps each combination (and all its
duplicate rows) in exactly one shard — the shard multiplicity vectors
concatenate to the global one and no work is replicated across shards.

Each shard is indexed by an inner
:class:`~repro.core.engine.packed.PackedBitsetEngine`; the shard word
blocks are laid out side by side in one flat ``uint64`` word space, so a
mask is a single word array in which shard ``j`` owns a contiguous,
word-aligned slice.  The engine runs in one of two storage modes:

* **in-memory** (default): the flat index is resident.  Serial queries run
  the fused packed kernels over the whole flat array — one ``bitwise_and``
  / popcount per query family — and with ``workers=`` the same kernels run
  per shard slice on a thread pool (numpy releases the GIL inside the
  bitwise/popcount loops), reduced in shard order.
* **out-of-core** (``spill_dir=``): shard word blocks are serialized to a
  spill directory as they are built and queried through an
  :class:`~repro.core.engine.mmapped.MmapShardStore` — ``np.memmap``-backed
  shard slices behind a byte-budgeted LRU loader (``max_resident_bytes=``),
  so coverage queries stream over an index the hardware cannot hold at
  once.  Masks stay resident (one bit per unique combination); only the
  index words and multiplicity vectors spill.  Because the shard files are
  immutable and addressed by path, ``workers_mode="process"`` fans the
  per-shard kernels out over a ``ProcessPoolExecutor`` whose children
  attach to the mmap files by path (no pickling of word arrays), falling
  back to threads on platforms without ``fork``.  Results reduce in
  deterministic shard order in every mode, so answers are bit-for-bit
  identical.

Use :meth:`ShardedEngine.attach` to re-open an existing spill directory
from its manifest (e.g. after a crash) without re-serializing the index.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import sys
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.engine.base import (
    DEFAULT_MASK_CACHE,
    CoverageEngine,
    register_engine,
)
from repro.core.engine.mmapped import (
    COUNT_ONLY_OPS,
    MmapShardStore,
    ShardStoreWriter,
    apply_shard_op,
    run_shard_op,
    shard_slice_fingerprint,
    worker_attach,
)
from repro.core.engine.packed import PackedBitsetEngine
from repro.data.bitset import BitVector
from repro.data.dataset import Dataset
from repro.exceptions import EngineError

#: Default number of shards when none is requested.
DEFAULT_SHARDS = 4

#: Worker fan-out modes for ``workers=``.  ``"socket"`` fans per-shard ops
#: out to long-lived worker processes over the length-prefixed socket
#: protocol in :mod:`repro.core.engine.distributed` — spawn-local workers
#: by default, remote ``host:port`` endpoints via ``worker_endpoints=``.
WORKERS_MODES = ("thread", "process", "socket")

#: Default fan-out mode (threads work in every storage mode).
DEFAULT_WORKERS_MODE = "thread"

_WORD_BITS = 64

_T = TypeVar("_T")

#: A sharded mask: one flat ``uint64`` word array over all shard slices.
ShardedMask = np.ndarray


def _dataset_meta(dataset: Dataset, unique_total: int) -> Dict[str, Any]:
    """The dataset-identity record a spill manifest stores.

    One definition for both sides of the contract: :meth:`ShardedEngine`'s
    builder writes it and ``attach`` validates it field by field.
    """
    return {
        "n": dataset.n,
        "d": dataset.d,
        "cardinalities": [int(c) for c in dataset.cardinalities],
        "unique": unique_total,
        "fingerprint": dataset.content_fingerprint(),
    }


def _build_shard_block(
    dataset: Dataset,
    unique: np.ndarray,
    counts: np.ndarray,
    unique_start: int,
    unique_stop: int,
    *,
    inverse: Optional[np.ndarray] = None,
    kernel_tier: Optional[str] = None,
):
    """Pack one shard's stacked membership block from the global aggregation.

    The per-shard serialization unit shared by the engine's spill builder
    and :meth:`ShardStoreWriter.delta_write` (which rebuilds only dirty
    shards): returns ``(words block, padded multiplicities, row count)``
    for the unique-combination slice ``[unique_start, unique_stop)``.
    """
    if inverse is None:
        inverse = dataset.unique_inverse()
    row_indices = np.nonzero(
        (inverse >= unique_start) & (inverse < unique_stop)
    )[0]
    shard_dataset = dataset.take(row_indices)
    shard_dataset._prime_unique_cache(
        unique[unique_start:unique_stop], counts[unique_start:unique_stop]
    )
    inner = PackedBitsetEngine(
        shard_dataset, mask_cache_size=0, kernel_tier=kernel_tier
    )
    words = inner.full_mask().words
    if dataset.d:
        block = np.vstack([inner.word_matrix(a) for a in range(dataset.d)])
    else:
        block = np.zeros((0, len(words)), dtype=np.uint64)
    return block, inner.counts_padded, len(row_indices)


def _fork_available() -> bool:
    """Whether this platform can safely fork pool workers.

    Linux only: macOS lists ``fork`` but forking a multithreaded parent is
    documented-unsafe there (CoreFoundation state can crash or hang the
    children), so it takes the thread fallback along with the platforms
    that have no ``fork`` at all.
    """
    return sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    )


@dataclass(frozen=True)
class ShardInfo:
    """Placement of one shard inside the engine's flat word space.

    A shard owns the contiguous slice ``[unique_start, unique_stop)`` of
    the engine's (sorted) global unique combinations and the word range
    ``[word_start, word_stop)`` of every mask; both views into the global
    arrays are derivable from the bounds, so no per-shard copies exist.
    """

    index: int  #: shard id (position in shard order; spill-store key)
    row_count: int  #: number of dataset rows (with duplicates) in the shard
    unique_start: int  #: first global unique-combination index of the shard
    unique_stop: int  #: one past the shard's last unique-combination index
    unique_rows: np.ndarray  #: view of the shard's unique-combination slice
    counts: np.ndarray  #: view of the matching multiplicity slice
    word_start: int  #: first word of the shard's mask slice
    word_stop: int  #: one past the shard's last mask word

    @property
    def unique_count(self) -> int:
        return self.unique_stop - self.unique_start


@register_engine
class ShardedEngine(CoverageEngine):
    """Coverage queries over K row-shards of packed membership vectors.

    Args:
        dataset: the dataset to index.
        shards: requested shard count; clamped to the number of distinct
            value combinations (an empty dataset keeps one empty shard) so
            over-sharding degrades gracefully instead of crashing.
        workers: fan the per-shard kernels out over a pool of this size;
            ``None`` (default) runs the fused serial kernels.  Results are
            identical either way — shard answers are reduced in shard order.
        workers_mode: ``"thread"`` (default) runs fan-out on a thread pool;
            ``"process"`` runs it on a process pool whose children attach
            to the spill files by path (requires ``spill_dir=``; falls back
            to threads on platforms without ``fork``); ``"socket"`` runs it
            on long-lived worker processes speaking the socket protocol —
            spawn-local by default, or the ``worker_endpoints=`` hosts —
            with sticky shard placement and retry-with-reattach (requires
            ``spill_dir=``).
        mask_cache_size: capacity of the hot-mask LRU cache layered over
            ``match_mask`` (see :class:`CoverageEngine`).
        spill_dir: enable the out-of-core mode — shard blocks are
            serialized into a fresh unique subdirectory of this root (owned
            by the engine and deleted on :meth:`close` / garbage
            collection) and queried via ``np.memmap``.
        max_resident_bytes: byte budget for resident (mmap-opened) shard
            slices in the out-of-core mode; ``None`` means unlimited.
        worker_endpoints: ``"host:port"`` addresses of running
            ``repro-coverage worker`` processes (``workers_mode="socket"``
            only); absent, the engine spawns ``workers`` local workers.
        delta_spill: let rebuilds over an appended dataset reuse this
            engine's spill directory via
            :meth:`ShardStoreWriter.delta_write` (consulted by
            :meth:`delta_rebuild` callers such as the incremental index).
    """

    name = "sharded"

    def __init__(
        self,
        dataset: Dataset,
        shards: int = DEFAULT_SHARDS,
        workers: Optional[int] = None,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        spill_dir: Optional[str] = None,
        max_resident_bytes: Optional[int] = None,
        workers_mode: str = DEFAULT_WORKERS_MODE,
        kernel_tier: str = None,
        worker_endpoints: Optional[Sequence[str]] = None,
        delta_spill: bool = False,
        _attach_store: Optional[MmapShardStore] = None,
    ) -> None:
        super().__init__(
            dataset, mask_cache_size=mask_cache_size, kernel_tier=kernel_tier
        )
        shards = int(shards)
        if workers is not None:
            workers = int(workers)
        if max_resident_bytes is not None:
            max_resident_bytes = int(max_resident_bytes)
        if worker_endpoints is not None:
            worker_endpoints = tuple(str(e) for e in worker_endpoints)
        # One validator holds every cross-field rule (EngineConfig.validate)
        # so constructor callers and config callers cannot drift; an adopted
        # store stands in for spill_dir, making attach() pass the same
        # out-of-core checks.  Imported lazily — the config module imports
        # this one for its constants.
        from repro.core.engine.config import EngineConfig

        EngineConfig.from_options(
            "sharded",
            shards=shards,
            workers=workers,
            workers_mode=workers_mode,
            spill_dir=(
                spill_dir
                if spill_dir is not None
                else (
                    os.fspath(_attach_store.path)
                    if _attach_store is not None
                    else None
                )
            ),
            max_resident_bytes=max_resident_bytes,
            kernel_tier=kernel_tier,
            worker_endpoints=worker_endpoints,
            delta_spill=delta_spill or None,
        )
        out_of_core = spill_dir is not None or _attach_store is not None
        self._requested_shards = shards
        self._workers = workers
        self._workers_mode = workers_mode
        self._worker_endpoints = worker_endpoints
        self._delta_spill = bool(delta_spill)
        self._max_resident_bytes = max_resident_bytes
        self._store: Optional[MmapShardStore] = None
        self._spill_path_pending: Optional[str] = None
        self._spill_root = os.fspath(spill_dir) if spill_dir is not None else None
        self._shards: List[ShardInfo] = []
        # Attribute value rows are stacked per shard block; attribute i's
        # rows occupy [_row_offsets[i], _row_offsets[i + 1]).
        self._row_offsets = [0]
        for cardinality in dataset.cardinalities:
            self._row_offsets.append(self._row_offsets[-1] + cardinality)
        # With no duplicate rows every weight is 1 and coverage is a pure
        # popcount; known up front from the global multiplicities.
        unique_total = len(self._unique)
        self._uniform = bool(
            unique_total == 0 or self._counts.max(initial=1) == 1
        )

        if _attach_store is not None:
            self._init_from_store(_attach_store)
        else:
            try:
                self._build(dataset, out_of_core)
            except BaseException:
                # A failed out-of-core build has no store (and so no GC
                # finalizer) yet — remove the partial spill directory here
                # or it leaks forever.
                if self._store is None and self._spill_path_pending is not None:
                    shutil.rmtree(self._spill_path_pending, ignore_errors=True)
                raise

        # The pools are created lazily on the first fan-out query and shut
        # down when the engine is closed or garbage-collected, so rebuild
        # churn (e.g. the incremental index) never accumulates idle workers.
        self._fan_out = (
            workers is not None and workers > 1 and len(self._shards) > 1
        )
        self._use_processes = (
            self._fan_out
            and self._store is not None
            and workers_mode == "process"
            and _fork_available()
        )
        # Socket fan-out needs a spill path for workers to attach by, and
        # either remote endpoints or the ability to fork local workers;
        # otherwise it degrades like "process" does (threads, then serial).
        self._use_socket = (
            self._store is not None
            and workers_mode == "socket"
            and len(self._shards) > 0
            and (
                self._worker_endpoints is not None
                or (self._fan_out and _fork_available())
            )
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_finalizer: Optional[weakref.finalize] = None
        self._dist_pool = None
        self._dist_finalizer: Optional[weakref.finalize] = None
        #: Set by :meth:`delta_rebuild` — the reuse accounting of the
        #: delta write that produced this engine's spill directory.
        self.delta_result = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, dataset: Dataset, out_of_core: bool) -> None:
        """Index the dataset shard by shard (spilling each block if asked)."""
        unique_total = len(self._unique)
        # Clamp: more shards than distinct combinations would only produce
        # empty shards (the index's unit of work is a unique combination).
        effective = max(1, min(self._requested_shards, max(unique_total, 1)))
        bounds = np.linspace(0, unique_total, effective + 1).astype(np.int64)
        # Which slice of the (sorted) unique space each row falls in.
        inverse = dataset.unique_inverse()

        writer: Optional[ShardStoreWriter] = None
        if out_of_core:
            os.makedirs(self._spill_root, exist_ok=True)
            spill_path = tempfile.mkdtemp(
                prefix="repro-shards-", dir=self._spill_root
            )
            self._spill_path_pending = spill_path
            writer = ShardStoreWriter(
                spill_path,
                cardinalities=dataset.cardinalities,
                uniform=self._uniform,
                dataset_meta=_dataset_meta(dataset, unique_total),
            )

        attribute_blocks: List[List[np.ndarray]] = [[] for _ in dataset.cardinalities]
        count_blocks: List[np.ndarray] = []
        full_blocks: List[np.ndarray] = []
        word_offset = 0
        for shard_id, (unique_start, unique_stop) in enumerate(
            zip(bounds[:-1], bounds[1:])
        ):
            row_indices = np.nonzero(
                (inverse >= unique_start) & (inverse < unique_stop)
            )[0]
            # Each shard is an inner packed engine; its word blocks are
            # harvested (into the flat layout, or onto disk) and the engine
            # dropped, so the index exists once.  The shard's unique rows
            # are, by construction, exactly the global slice — prime the
            # shard dataset with it so the inner engine skips its own
            # re-sort.
            shard_dataset = dataset.take(row_indices)
            unique_slice = self._unique[unique_start:unique_stop]
            shard_dataset._prime_unique_cache(
                unique_slice, self._counts[unique_start:unique_stop]
            )
            inner = PackedBitsetEngine(
                shard_dataset,
                mask_cache_size=0,
                kernel_tier=self._requested_kernel_tier,
            )
            words = inner.full_mask().words
            if writer is not None:
                if dataset.d:
                    block = np.vstack(
                        [inner.word_matrix(a) for a in range(dataset.d)]
                    )
                else:
                    block = np.zeros((0, len(words)), dtype=np.uint64)
                writer.add_shard(
                    block,
                    None if self._uniform else inner.counts_padded,
                    unique_start=int(unique_start),
                    unique_stop=int(unique_stop),
                    row_count=len(row_indices),
                    fingerprint=shard_slice_fingerprint(
                        unique_slice,
                        None
                        if self._uniform
                        else self._counts[unique_start:unique_stop],
                    ),
                    start_key=(
                        [int(v) for v in unique_slice[0]]
                        if len(unique_slice)
                        else None
                    ),
                )
            else:
                for attribute in range(dataset.d):
                    attribute_blocks[attribute].append(inner.word_matrix(attribute))
                count_blocks.append(inner.counts_padded)
            full_blocks.append(words)
            self._shards.append(
                ShardInfo(
                    index=shard_id,
                    row_count=len(row_indices),
                    unique_start=int(unique_start),
                    unique_stop=int(unique_stop),
                    unique_rows=unique_slice,
                    counts=self._counts[unique_start:unique_stop],
                    word_start=word_offset,
                    word_stop=word_offset + len(words),
                )
            )
            word_offset += len(words)

        if writer is not None:
            self._store = writer.finish(
                max_resident_bytes=self._max_resident_bytes,
                owns_files=True,
                dataset_payload=(
                    self._unique,
                    self._counts,
                    dataset.schema.names,
                ),
            )
            self._words = None
            self._counts_padded = None
        else:
            # The flat index: per attribute a (cardinality, total_words)
            # matrix whose column ranges are the shard slices.
            self._words = [
                np.ascontiguousarray(np.concatenate(blocks, axis=1))
                for blocks in attribute_blocks
            ]
            self._counts_padded = (
                np.concatenate(count_blocks)
                if count_blocks
                else np.zeros(0, dtype=np.int64)
            )
        self._full_words = (
            np.concatenate(full_blocks)
            if full_blocks
            else np.zeros(0, dtype=np.uint64)
        )
        self._word_count = word_offset

    def _init_from_store(self, store: MmapShardStore) -> None:
        """Adopt an existing spill directory (no re-serialization)."""
        meta = store.manifest.get("dataset", {})
        expected = _dataset_meta(self._dataset, len(self._unique))
        for key, value in expected.items():
            if meta.get(key) != value:
                store.close()
                raise EngineError(
                    f"spill directory {store.path} was built for a different "
                    f"dataset ({key}: manifest has {meta.get(key)!r}, "
                    f"dataset has {value!r})"
                )
        # Uniformity is derivable from the dataset, so a disagreeing
        # manifest is corrupt — accepting it would drop (or invent) the
        # multiplicity weighting and silently mis-count.
        if store.uniform != self._uniform:
            store.close()
            raise EngineError(
                f"spill directory {store.path} records uniform="
                f"{store.uniform}, but the dataset's multiplicities say "
                f"{self._uniform}"
            )
        self._store = store
        self._words = None
        self._counts_padded = None
        if self._spill_root is None:
            self._spill_root = os.fspath(store.path.parent)
        full_blocks: List[np.ndarray] = []
        previous_unique = 0
        previous_word = 0
        for position, entry in enumerate(store.manifest["shards"]):
            # The id doubles as the store lookup key and the payload index,
            # so a permuted manifest must fail loudly, not mis-place results.
            if entry["id"] != position:
                store.close()
                raise EngineError(
                    f"spill directory {store.path} has out-of-order shard ids "
                    f"(entry {position} carries id {entry['id']})"
                )
            if (
                entry["unique_start"] != previous_unique
                or entry["word_start"] != previous_word
            ):
                store.close()
                raise EngineError(
                    f"spill directory {store.path} has a non-contiguous "
                    f"shard layout (manifest shard {entry['id']})"
                )
            # v2 manifests fingerprint each shard's unique-combination
            # slice; recomputing it from this dataset proves the shard
            # files (including hard-linked ones a delta write reused)
            # still describe exactly these combinations.
            if store.format_version >= 2:
                expected_fingerprint = shard_slice_fingerprint(
                    self._unique[entry["unique_start"] : entry["unique_stop"]],
                    None
                    if self._uniform
                    else self._counts[
                        entry["unique_start"] : entry["unique_stop"]
                    ],
                )
                if entry.get("fingerprint") != expected_fingerprint:
                    store.close()
                    raise EngineError(
                        f"spill directory {store.path} shard {entry['id']} "
                        f"fingerprint mismatch (manifest has "
                        f"{entry.get('fingerprint')!r}, dataset slice hashes "
                        f"to {expected_fingerprint!r})"
                    )
            info = ShardInfo(
                index=int(entry["id"]),
                row_count=int(entry["row_count"]),
                unique_start=int(entry["unique_start"]),
                unique_stop=int(entry["unique_stop"]),
                unique_rows=self._unique[
                    entry["unique_start"] : entry["unique_stop"]
                ],
                counts=self._counts[entry["unique_start"] : entry["unique_stop"]],
                word_start=int(entry["word_start"]),
                word_stop=int(entry["word_stop"]),
            )
            full_blocks.append(BitVector(info.unique_count, fill=True).words)
            previous_unique = info.unique_stop
            previous_word = info.word_stop
            self._shards.append(info)
        if previous_unique != len(self._unique):
            store.close()
            raise EngineError(
                f"spill directory {store.path} covers {previous_unique} unique "
                f"combinations; dataset has {len(self._unique)}"
            )
        self._full_words = (
            np.concatenate(full_blocks)
            if full_blocks
            else np.zeros(0, dtype=np.uint64)
        )
        self._word_count = previous_word
        self._requested_shards = len(self._shards)

    @classmethod
    def attach(
        cls,
        dataset: Dataset,
        spill_path: str,
        *,
        workers: Optional[int] = None,
        workers_mode: str = DEFAULT_WORKERS_MODE,
        mask_cache_size: int = DEFAULT_MASK_CACHE,
        max_resident_bytes: Optional[int] = None,
        worker_endpoints: Optional[Sequence[str]] = None,
        delta_spill: bool = False,
        kernel_tier: str = None,
    ) -> "ShardedEngine":
        """Re-open a spill directory written by a previous engine.

        The manifest's dataset fingerprint must match ``dataset``; the
        attached engine reads the existing shard files and does **not**
        delete them on close (the writing engine, or the caller, owns
        them).  This is the crash-recovery path: a finished spill directory
        answers coverage queries identically to the engine that wrote it.
        """
        store = MmapShardStore.open(
            spill_path, max_resident_bytes=max_resident_bytes, owns_files=False
        )
        try:
            return cls(
                dataset,
                shards=store.shard_count,
                workers=workers,
                workers_mode=workers_mode,
                mask_cache_size=mask_cache_size,
                max_resident_bytes=max_resident_bytes,
                worker_endpoints=worker_endpoints,
                delta_spill=delta_spill,
                kernel_tier=kernel_tier,
                _attach_store=store,
            )
        except BaseException:
            # Constructor validation can raise before _init_from_store
            # adopts the store; don't leave the mmaps open until GC
            # (close() is idempotent for the paths that already closed it).
            store.close()
            raise

    @classmethod
    def delta_rebuild(
        cls, previous: "ShardedEngine", dataset: Dataset
    ) -> "ShardedEngine":
        """Rebuild ``previous`` over an appended/changed ``dataset``,
        rewriting only the shards whose unique-combination slice changed.

        :meth:`ShardStoreWriter.delta_write` diffs the new dataset against
        ``previous``'s spill manifest by per-shard fingerprint and
        hard-links every clean shard's files into a fresh sibling spill
        directory, so the re-serialization cost is O(changed shards).  The
        new engine owns the new directory; ``previous`` keeps its own and
        stays open (the caller retires it).  A live distributed pool is
        handed over: workers owning dirty shards are invalidated, everyone
        re-attaches to the new path — clean shards are the same inodes, so
        their mmap pages stay warm.  The reuse accounting is left on the
        returned engine as ``delta_result``.
        """
        if previous._store is None:
            raise EngineError(
                "delta_rebuild requires an out-of-core previous engine "
                "(build it with spill_dir=)"
            )
        previous._check_open()
        spill_root = previous._spill_root
        os.makedirs(spill_root, exist_ok=True)
        new_path = tempfile.mkdtemp(prefix="repro-shards-", dir=spill_root)
        try:
            result = ShardStoreWriter.delta_write(
                previous._store,
                dataset,
                new_path,
                max_resident_bytes=previous._max_resident_bytes,
                owns_files=True,
                kernel_tier=previous._requested_kernel_tier,
            )
        except BaseException:
            shutil.rmtree(new_path, ignore_errors=True)
            raise
        store = result.store
        try:
            engine = cls(
                dataset,
                shards=store.shard_count,
                workers=previous._workers,
                workers_mode=previous._workers_mode,
                mask_cache_size=previous._mask_cache_size,
                max_resident_bytes=previous._max_resident_bytes,
                kernel_tier=previous._requested_kernel_tier,
                worker_endpoints=previous._worker_endpoints,
                delta_spill=previous._delta_spill,
                _attach_store=store,
            )
        except BaseException:
            store.close()
            shutil.rmtree(new_path, ignore_errors=True)
            raise
        engine.delta_result = result
        if previous._dist_pool is not None:
            # Hand the worker pool over instead of letting the retiring
            # engine tear it down: push invalidations only to the workers
            # owning dirty shards, then re-attach everyone to the new path.
            pool = previous._dist_pool
            if previous._dist_finalizer is not None:
                previous._dist_finalizer.detach()
                previous._dist_finalizer = None
            previous._dist_pool = None
            try:
                pool.invalidate(
                    str(previous._store.path), result.dirty_shards
                )
                pool.attach(
                    str(store.path),
                    store.shard_count,
                    max_resident_bytes=previous._max_resident_bytes,
                )
                engine._dist_pool = pool
                engine._dist_finalizer = weakref.finalize(
                    engine, pool.close
                )
            except Exception:
                # A broken pool is not worth failing the rebuild over —
                # the new engine lazily spawns a fresh one on first query.
                try:
                    pool.close()
                except Exception:
                    pass
        return engine

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards actually built (requested count clamped to n)."""
        return len(self._shards)

    @property
    def shard_infos(self) -> List[ShardInfo]:
        """Placement records of every shard, in shard order."""
        return list(self._shards)

    @property
    def requested_shards(self) -> int:
        """Shard count asked for at construction (before clamping)."""
        return self._requested_shards

    @property
    def workers(self) -> Optional[int]:
        """Pool size for shard fan-out; ``None`` means serial."""
        return self._workers

    @property
    def workers_mode(self) -> str:
        """Requested fan-out mode (``"thread"``/``"process"``/``"socket"``)."""
        return self._workers_mode

    @property
    def worker_endpoints(self) -> Optional[Sequence[str]]:
        """Remote worker addresses (``workers_mode="socket"`` only)."""
        return self._worker_endpoints

    @property
    def delta_spill(self) -> bool:
        """Whether rebuilds may reuse this spill dir via delta writes."""
        return self._delta_spill

    @property
    def effective_workers_mode(self) -> str:
        """The fan-out mode queries actually use.

        ``"serial"`` when no fan-out is configured; ``"thread"`` when
        threads serve it (including the fallback from ``"process"`` or
        ``"socket"`` on platforms without ``fork``); ``"process"`` or
        ``"socket"`` otherwise.
        """
        if self._use_socket:
            return "socket"
        if not self._fan_out:
            return "serial"
        return "process" if self._use_processes else "thread"

    @property
    def out_of_core(self) -> bool:
        """True when the index lives in a spill directory, not RAM."""
        return self._store is not None

    @property
    def store(self) -> Optional[MmapShardStore]:
        """The mmap shard store (``None`` in the in-memory mode)."""
        return self._store

    @property
    def spill_path(self) -> Optional[str]:
        """Directory holding this engine's shard files (out-of-core only)."""
        return str(self._store.path) if self._store is not None else None

    @property
    def max_resident_bytes(self) -> Optional[int]:
        """Resident-shard byte budget (out-of-core only; None = unlimited)."""
        return self._max_resident_bytes

    def close(self) -> None:
        """Shut worker pools down and release the spill store.

        In-memory engines stay usable (a later fan-out query starts a fresh
        pool).  An out-of-core engine deletes its spill directory when it
        owns one (i.e. it was not :meth:`attach`-ed), after which queries
        raise :class:`EngineError`.

        Every teardown step runs even if an earlier one raises (a shard op
        that died mid-fan-out can leave a pool broken): the store and its
        mmap handles are always released, and the first error is re-raised
        after the sweep.
        """
        errors: List[BaseException] = []
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            executor, self._executor = self._executor, None
            try:
                executor.shutdown(wait=True)
            except BaseException as exc:  # noqa: BLE001 — resurfaced below
                errors.append(exc)
        if self._process_finalizer is not None:
            self._process_finalizer.detach()
            self._process_finalizer = None
        if self._process_pool is not None:
            pool, self._process_pool = self._process_pool, None
            try:
                pool.shutdown(wait=True)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        if self._dist_finalizer is not None:
            self._dist_finalizer.detach()
            self._dist_finalizer = None
        if self._dist_pool is not None:
            pool, self._dist_pool = self._dist_pool, None
            try:
                pool.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        if self._store is not None:
            try:
                self._store.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            # Cached masks must not keep answering for released spill files.
            self.clear_mask_cache()
        if errors:
            raise errors[0]

    def cache_info(self) -> Dict[str, Any]:
        """Hot-mask cache counters, plus the spill loader's residency split.

        In the out-of-core mode a ``"store"`` entry carries
        :meth:`MmapShardStore.stats`, including the per-component
        (words/counts) load counters and resident bytes — the observable
        proof that count-heavy streams charge only the multiplicity
        vectors.
        """
        info = dict(super().cache_info())
        if self._store is not None:
            info["store"] = self._store.stats()
        return info

    def _check_open(self) -> None:
        """Reject queries on a closed out-of-core engine (in every path —
        including the uniform-count and all-wildcard shortcuts that never
        touch the store)."""
        if self._store is not None and self._store.closed:
            raise EngineError(
                f"out-of-core engine is closed (spill directory "
                f"{self._store.path} was released)"
            )

    def _map_shards(self, fn: Callable[[ShardInfo], _T]) -> List[_T]:
        """``[fn(shard_0), …, fn(shard_K-1)]`` on the pool, in shard order.

        Only the worker fan-out paths call this; serial queries use the
        fused flat kernels instead.
        """
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self._workers, len(self._shards)),
                thread_name_prefix="repro-shard",
            )
            self._finalizer = weakref.finalize(
                self, self._executor.shutdown, wait=False
            )
        return list(self._executor.map(fn, self._shards))

    def _map_shards_ooc(self, op: str, payloads: Sequence[Any]) -> List[Any]:
        """One :func:`apply_shard_op` result per shard, in shard order.

        The single dispatch for every out-of-core query family: the same
        ``(op, payload)`` pairs run on the process pool, the thread pool,
        or inline — so the three evaluation modes cannot diverge.
        """
        if self._use_socket:
            return self._map_shards_socket(op, payloads)
        if self._use_processes:
            return self._map_shards_process(op, payloads)

        def _local(shard: ShardInfo) -> Any:
            # Words/counts residency split: load only the component the
            # kernel reads, so count-heavy streams never budget-charge the
            # (much larger) word blocks.
            if op in COUNT_ONLY_OPS:
                counts = self._store.shard_counts(shard.index)
                return apply_shard_op(
                    op, payloads[shard.index], None, counts,
                    kernels=self._kernels,
                )
            words = self._store.shard_words(shard.index)
            return apply_shard_op(
                op, payloads[shard.index], words, None, kernels=self._kernels
            )

        if self._fan_out:
            return self._map_shards(_local)
        return [_local(shard) for shard in self._shards]

    def _map_shards_process(self, op: str, payloads: Sequence[Any]) -> List[Any]:
        """Run one shard op per shard on the process pool, in shard order.

        Children attach to the spill directory by path (pool initializer),
        so only the op payloads — mask windows, row ids — are pickled.
        """
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=min(self._workers, len(self._shards)),
                mp_context=multiprocessing.get_context("fork"),
                initializer=worker_attach,
                initargs=(self.spill_path, self._max_resident_bytes),
            )
            self._process_finalizer = weakref.finalize(
                self, self._process_pool.shutdown, wait=False
            )
        path = self.spill_path
        return list(
            self._process_pool.map(
                run_shard_op,
                [
                    (path, shard.index, op, payload)
                    for shard, payload in zip(self._shards, payloads)
                ],
            )
        )

    def _ensure_dist_pool(self):
        """The socket worker pool, spawning/connecting + attaching lazily.

        Spawn-local workers when no endpoints are configured (one per
        worker slot, capped at the shard count); otherwise connect to the
        standing ``host:port`` workers.  Either way every worker attaches
        to this engine's spill path before the first op, so placement is
        sticky from the start.
        """
        if self._dist_pool is None:
            from repro.core.engine.distributed import DistributedPool

            if self._worker_endpoints:
                pool = DistributedPool.connect(self._worker_endpoints)
            else:
                pool = DistributedPool.spawn_local(
                    min(self._workers or 1, len(self._shards))
                )
            try:
                pool.attach(
                    self.spill_path,
                    len(self._shards),
                    max_resident_bytes=self._max_resident_bytes,
                )
            except BaseException:
                pool.close()
                raise
            self._dist_pool = pool
            self._dist_finalizer = weakref.finalize(self, pool.close)
        return self._dist_pool

    def _map_shards_socket(self, op: str, payloads: Sequence[Any]) -> List[Any]:
        """Run one shard op per shard on the socket worker pool.

        The pool batches the ops per owning worker (placement is sticky:
        shard ``k`` always lands on the worker holding shard ``k``'s
        mmap-warm bytes), retries once with a respawned + re-attached
        worker on connection death, and returns results in shard order.
        """
        pool = self._ensure_dist_pool()
        return pool.run_shard_ops(self.spill_path, op, list(payloads))

    def _template_options(self) -> Dict[str, Any]:
        options = super()._template_options()
        options.update(
            shards=self._requested_shards,
            workers=self._workers,
            workers_mode=self._workers_mode,
            spill_dir=self._spill_root if self._store is not None else None,
            max_resident_bytes=self._max_resident_bytes,
        )
        if self._worker_endpoints is not None:
            options["worker_endpoints"] = self._worker_endpoints
        if self._delta_spill:
            options["delta_spill"] = True
        return options

    # ------------------------------------------------------------------
    # counting kernels
    # ------------------------------------------------------------------
    @property
    def _weights(self) -> Optional[np.ndarray]:
        """Global padded multiplicities, or ``None`` on uniform data."""
        return None if self._uniform else self._counts_padded

    def _window(self, shard: ShardInfo) -> slice:
        return slice(shard.word_start, shard.word_stop)

    def _shard_weights(self, shard: ShardInfo) -> Optional[np.ndarray]:
        """The shard's padded multiplicity slice (in-memory mode)."""
        if self._uniform:
            return None
        return self._counts_padded[
            shard.word_start * _WORD_BITS : shard.word_stop * _WORD_BITS
        ]

    # ------------------------------------------------------------------
    # mask kernel
    # ------------------------------------------------------------------
    @property
    def index_nbytes(self) -> int:
        # Membership words only in both modes, so cross-engine memory
        # comparisons stay apples-to-apples (store.data_nbytes adds the
        # spilled multiplicity vectors for the full on-disk footprint).
        if self._store is not None:
            return self._store.words_nbytes
        return sum(words.nbytes for words in self._words)

    def full_mask(self) -> ShardedMask:
        self._check_open()
        return self._full_words.copy()

    def value_mask(self, attribute: int, value: int) -> ShardedMask:
        if self._store is None:
            return self._words[attribute][value]
        # Index rows have zeroed tail bits, so ANDing with the (tail-masked)
        # full words reproduces the raw row — one op for both queries.
        return self._ooc_and_row(self._full_words, attribute, value)

    def restrict(
        self, mask: ShardedMask, attribute: int, value: int
    ) -> ShardedMask:
        if self._store is None:
            return np.bitwise_and(mask, self._words[attribute][value])
        return self._ooc_and_row(mask, attribute, value)

    def _ooc_and_row(
        self, mask: ShardedMask, attribute: int, value: int
    ) -> ShardedMask:
        """``mask AND`` one index row, through the shared fan-out dispatch."""
        self._check_open()
        row = self._row_offsets[attribute] + value
        return self._ooc_chain_rows(mask, [row], np.empty_like(mask))

    def _ooc_chain_rows(
        self, mask: ShardedMask, rows: Sequence[int], out: ShardedMask
    ) -> ShardedMask:
        """AND the index ``rows`` into each shard window of ``mask``.

        The single shard-window scatter/gather behind both ``restrict`` /
        ``value_mask`` (one row, fresh output) and ``match_mask`` (chained
        rows, in-place: pass ``out=mask``).
        """
        windows = self._map_shards_ooc(
            "match",
            [(mask[self._window(shard)], list(rows)) for shard in self._shards],
        )
        for shard, window_words in zip(self._shards, windows):
            out[self._window(shard)] = window_words
        return out

    def restrict_children(
        self, mask: ShardedMask, attribute: int
    ) -> List[ShardedMask]:
        if self._store is not None:
            self._check_open()
            return self._ooc_restrict_children(mask, attribute)
        index = self._words[attribute]
        if not self._fan_out:
            family = self._kernels.and_family(mask, index)
        else:
            family = np.empty_like(index)

            def _and_slice(shard: ShardInfo) -> None:
                window = self._window(shard)
                np.bitwise_and(
                    mask[np.newaxis, window], index[:, window], out=family[:, window]
                )

            self._map_shards(_and_slice)
        return list(family)

    def _ooc_restrict_children(
        self, mask: ShardedMask, attribute: int
    ) -> List[ShardedMask]:
        row_start = self._row_offsets[attribute]
        row_stop = self._row_offsets[attribute + 1]
        family = np.empty((row_stop - row_start, len(mask)), dtype=np.uint64)
        blocks = self._map_shards_ooc(
            "children",
            [
                (mask[self._window(shard)], row_start, row_stop)
                for shard in self._shards
            ],
        )
        for shard, block in zip(self._shards, blocks):
            family[:, self._window(shard)] = block
        return list(family)

    def count(self, mask: ShardedMask) -> int:
        if self._store is not None:
            self._check_open()
            return self._ooc_count(mask)
        if not self._fan_out:
            return self._kernels.count(mask, self._weights)
        partials = self._map_shards(
            lambda shard: self._kernels.count(
                mask[self._window(shard)], self._shard_weights(shard)
            )
        )
        return int(sum(partials))

    def _ooc_count(self, mask: ShardedMask) -> int:
        # Uniform data needs no multiplicities: coverage is a pure popcount
        # of the (resident) mask, with no shard loads at all.
        if self._uniform:
            return self._kernels.count(mask, None)
        partials = self._map_shards_ooc(
            "count", [mask[self._window(shard)] for shard in self._shards]
        )
        return int(sum(partials))

    def count_many(self, masks: Sequence[ShardedMask]) -> np.ndarray:
        if not len(masks):
            return np.zeros(0, dtype=np.int64)
        matrix = np.stack(masks)
        if self._store is not None:
            self._check_open()
            return self._ooc_count_many(matrix)
        if not self._fan_out:
            return self._kernels.count_rows(matrix, self._weights)
        partials = self._map_shards(
            lambda shard: self._kernels.count_rows(
                matrix[:, self._window(shard)], self._shard_weights(shard)
            )
        )
        total = partials[0].copy()
        for partial in partials[1:]:
            total += partial
        return total

    def _ooc_count_many(self, matrix: np.ndarray) -> np.ndarray:
        if self._uniform:
            return self._kernels.count_rows(matrix, None)
        partials = self._map_shards_ooc(
            "count_rows",
            [matrix[:, self._window(shard)] for shard in self._shards],
        )
        total = partials[0].copy()
        for partial in partials[1:]:
            total += partial
        return total

    def mask_to_bool(self, mask: ShardedMask) -> np.ndarray:
        self._check_open()
        selected = np.zeros(self.unique_count, dtype=bool)
        if mask.size == 0:
            return selected
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
        for shard in self._shards:
            start = shard.word_start * _WORD_BITS
            selected[shard.unique_start : shard.unique_stop] = bits[
                start : start + shard.unique_count
            ]
        return selected

    def _compute_match_mask(self, pattern) -> ShardedMask:
        mask = self.full_mask()
        indices = pattern.deterministic_indices()
        if self._store is not None:
            self._check_open()
            return self._ooc_match_mask(mask, pattern, indices)
        if not self._fan_out or not indices:
            for index in indices:
                np.bitwise_and(mask, self._words[index][pattern[index]], out=mask)
            return mask

        def _chain_slice(shard: ShardInfo) -> None:
            window = self._window(shard)
            for index in indices:
                np.bitwise_and(
                    mask[window],
                    self._words[index][pattern[index]][window],
                    out=mask[window],
                )

        self._map_shards(_chain_slice)
        return mask

    def _ooc_match_mask(
        self, mask: ShardedMask, pattern, indices: Sequence[int]
    ) -> ShardedMask:
        if not indices:
            return mask
        rows = [self._row_offsets[index] + pattern[index] for index in indices]
        return self._ooc_chain_rows(mask, rows, mask)
