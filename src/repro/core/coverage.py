"""Coverage computation with inverted indices (Definition 2, Appendix A).

The oracle aggregates the dataset to its unique value combinations with
multiplicities, keeps one boolean membership vector per attribute value over
those unique combinations, and answers ``cov(P)`` as the AND of the
deterministic elements' vectors dotted with the count vector — exactly the
Appendix A design.  Traversal algorithms can additionally thread a parent's
match mask down so a child's coverage costs a single vectorized AND
(``restrict_mask``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.exceptions import PatternError


class CoverageOracle:
    """Answers coverage queries for one dataset (Appendix A).

    Attributes:
        evaluations: number of coverage queries answered; algorithms report
            this in their :class:`~repro._util.SearchStats`.
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        unique, counts = dataset.unique_rows()
        self._unique = unique
        self._counts = counts
        # _index[i][v] is the boolean vector over unique rows with value v
        # on attribute i (the inverted index of Appendix A).
        self._index: List[np.ndarray] = []
        for i, cardinality in enumerate(dataset.cardinalities):
            if len(unique):
                column = unique[:, i]
                per_value = np.zeros((cardinality, len(unique)), dtype=bool)
                per_value[column, np.arange(len(unique))] = True
            else:
                per_value = np.zeros((cardinality, 0), dtype=bool)
            self._index.append(per_value)
        self.evaluations = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def total(self) -> int:
        """Coverage of the root pattern = number of tuples ``n``."""
        return self._dataset.n

    @property
    def unique_count(self) -> int:
        """Number of distinct value combinations present in the data."""
        return len(self._unique)

    def threshold_from_rate(self, rate: float) -> int:
        """Translate the paper's "threshold rate" into an absolute count.

        The evaluation section sweeps rates like 0.01%; the absolute
        threshold is ``ceil(rate * n)``, floored at 1 so a rate of 0 still
        flags empty regions.
        """
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        return max(1, int(math.ceil(rate * self._dataset.n)))

    # ------------------------------------------------------------------
    # mask plumbing (incremental evaluation for graph traversals)
    # ------------------------------------------------------------------
    def full_mask(self) -> np.ndarray:
        """Mask matching every unique combination (the root pattern)."""
        return np.ones(len(self._unique), dtype=bool)

    def value_mask(self, attribute: int, value: int) -> np.ndarray:
        """Inverted-index vector for ``attribute == value`` (do not mutate)."""
        return self._index[attribute][value]

    def restrict_mask(self, mask: np.ndarray, attribute: int, value: int) -> np.ndarray:
        """``mask AND (attribute == value)`` — one child step down the graph."""
        return np.logical_and(mask, self._index[attribute][value])

    def match_mask(self, pattern: Pattern) -> np.ndarray:
        """Boolean mask over unique combinations matching ``pattern``."""
        if len(pattern) != self._dataset.d:
            raise PatternError(
                f"pattern of length {len(pattern)} against d={self._dataset.d}"
            )
        mask = self.full_mask()
        for index in pattern.deterministic_indices():
            value = pattern[index]
            if not 0 <= value < self._dataset.cardinalities[index]:
                raise PatternError(
                    f"pattern {pattern} has out-of-range value {value} "
                    f"at attribute {index}"
                )
            np.logical_and(mask, self._index[index][value], out=mask)
        return mask

    def coverage_of_mask(self, mask: np.ndarray) -> int:
        """Total multiplicity of the unique combinations selected by ``mask``."""
        self.evaluations += 1
        return int(self._counts[mask].sum())

    # ------------------------------------------------------------------
    # the oracle itself
    # ------------------------------------------------------------------
    def coverage(self, pattern: Pattern) -> int:
        """Definition 2: number of tuples of ``D`` matching ``pattern``."""
        return self.coverage_of_mask(self.match_mask(pattern))

    def is_covered(self, pattern: Pattern, threshold: int) -> bool:
        """Definition 3: ``cov(P) >= τ``."""
        return self.coverage(pattern) >= threshold

    def matching_rows(self, pattern: Pattern) -> np.ndarray:
        """The unique value combinations matching ``pattern`` (one per kind)."""
        return self._unique[self.match_mask(pattern)]


def coverage_scan(dataset: Dataset, pattern: Pattern) -> int:
    """Literal Definition 2: one pass over the raw rows, no indices.

    Kept as the ablation baseline for Appendix A's inverted-index design and
    as an independent correctness check in tests.
    """
    if len(pattern) != dataset.d:
        raise PatternError(
            f"pattern of length {len(pattern)} against d={dataset.d}"
        )
    rows = dataset.rows
    mask = np.ones(dataset.n, dtype=bool)
    for index in pattern.deterministic_indices():
        np.logical_and(mask, rows[:, index] == pattern[index], out=mask)
    return int(mask.sum())


def max_covered_level(
    mups: Sequence[Pattern], d: Optional[int] = None
) -> int:
    """Definition 6: the maximum level λ with every MUP strictly deeper.

    With no MUPs at all, the dataset is covered through level ``d`` (every
    pattern is covered); pass ``d`` to get that answer, otherwise the
    function returns ``min level - 1`` over the MUPs.
    """
    mups = list(mups)
    if not mups:
        if d is None:
            raise ValueError("need d to report the level of a fully covered dataset")
        return d
    return min(p.level for p in mups) - 1
