"""Coverage computation with inverted indices (Definition 2, Appendix A).

The oracle aggregates the dataset to its unique value combinations with
multiplicities, keeps one membership vector per attribute value over those
unique combinations, and answers ``cov(P)`` as the AND of the deterministic
elements' vectors weighted by the count vector — exactly the Appendix A
design.  The vector representation is pluggable: the oracle delegates every
mask operation to a :class:`~repro.core.engine.CoverageEngine` backend
(``dense`` boolean ndarrays or ``packed`` uint64 bitsets), so traversal
algorithms run unmodified on either.  Masks are engine-specific opaque
handles; thread a parent's match mask down so a child's coverage costs a
single vectorized AND (``restrict_mask``), or answer a whole frontier with
the batched ``coverage_of_masks`` / ``coverage_many`` queries.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import CoverageEngine, EngineSpec, resolve_engine
from repro.core.engine.base import Mask
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.exceptions import PatternError


def threshold_from_rate(rate: float, n: int) -> int:
    """The paper's "threshold rate" as an absolute count: ``ceil(rate * n)``.

    Floored at 1 so a rate of 0 still flags empty regions.
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    return max(1, int(math.ceil(rate * n)))


class CoverageOracle:
    """Answers coverage queries for one dataset (Appendix A).

    Args:
        dataset: the dataset to index.
        engine: coverage-engine selection — a declarative
            :class:`~repro.core.engine.EngineConfig`, a registry name
            (``"dense"`` / ``"packed"`` / ``"sharded"``, or ``"auto"`` to
            let the workload-aware planner choose), an engine class, or a
            prebuilt engine instance; ``None`` picks the default backend.

    Attributes:
        evaluations: number of coverage queries answered; algorithms report
            this in their :class:`~repro._util.SearchStats`.
    """

    def __init__(self, dataset: Dataset, engine: EngineSpec = None) -> None:
        self._dataset = dataset
        self._engine = resolve_engine(engine, dataset)
        self.evaluations = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def engine(self) -> CoverageEngine:
        """The backend answering the mask queries."""
        return self._engine

    @property
    def total(self) -> int:
        """Coverage of the root pattern = number of tuples ``n``."""
        return self._dataset.n

    @property
    def unique_count(self) -> int:
        """Number of distinct value combinations present in the data."""
        return self._engine.unique_count

    def threshold_from_rate(self, rate: float) -> int:
        """Translate the paper's "threshold rate" into an absolute count.

        The evaluation section sweeps rates like 0.01%; see
        :func:`threshold_from_rate`.
        """
        return threshold_from_rate(rate, self._dataset.n)

    # ------------------------------------------------------------------
    # mask plumbing (incremental evaluation for graph traversals)
    # ------------------------------------------------------------------
    def full_mask(self) -> Mask:
        """Mask matching every unique combination (the root pattern)."""
        return self._engine.full_mask()

    def value_mask(self, attribute: int, value: int) -> Mask:
        """Inverted-index vector for ``attribute == value`` (do not mutate)."""
        return self._engine.value_mask(attribute, value)

    def restrict_mask(self, mask: Mask, attribute: int, value: int) -> Mask:
        """``mask AND (attribute == value)`` — one child step down the graph."""
        return self._engine.restrict(mask, attribute, value)

    def restrict_children(self, mask: Mask, attribute: int) -> List[Mask]:
        """The whole sibling family ``mask AND (attribute == v)``, batched."""
        return self._engine.restrict_children(mask, attribute)

    def match_mask(self, pattern: Pattern) -> Mask:
        """Mask over unique combinations matching ``pattern``."""
        return self._engine.match_mask(pattern)

    def coverage_of_mask(self, mask: Mask) -> int:
        """Total multiplicity of the unique combinations selected by ``mask``."""
        self.evaluations += 1
        return self._engine.count(mask)

    def coverage_of_masks(self, masks: Sequence[Mask]) -> np.ndarray:
        """Batched :meth:`coverage_of_mask` — one frontier, one pass."""
        self.evaluations += len(masks)
        return self._engine.count_many(masks)

    # ------------------------------------------------------------------
    # the oracle itself
    # ------------------------------------------------------------------
    def coverage(self, pattern: Pattern) -> int:
        """Definition 2: number of tuples of ``D`` matching ``pattern``."""
        return self.coverage_of_mask(self.match_mask(pattern))

    def coverage_many(
        self,
        patterns: Sequence[Pattern],
        memo: Optional[Dict[Tuple[int, ...], int]] = None,
    ) -> np.ndarray:
        """Batched :meth:`coverage` — a whole pattern-graph level at once.

        With a ``memo`` (a ``pattern.values -> count`` reuse table, see
        :meth:`CoverageEngine.coverage_many
        <repro.core.engine.base.CoverageEngine.coverage_many>`), only the
        patterns absent from the table count as evaluations — the sweep
        engine relies on this to report true amortized work.
        """
        if memo is None:
            self.evaluations += len(patterns)
        else:
            self.evaluations += sum(
                1 for p in patterns if p.values not in memo
            )
        return self._engine.coverage_many(patterns, memo=memo)

    def is_covered(self, pattern: Pattern, threshold: int) -> bool:
        """Definition 3: ``cov(P) >= τ``."""
        return self.coverage(pattern) >= threshold

    def matching_rows(self, pattern: Pattern) -> np.ndarray:
        """The unique value combinations matching ``pattern`` (one per kind)."""
        selected = self._engine.mask_to_bool(self._engine.match_mask(pattern))
        return self._engine.unique_rows[selected]


def coverage_scan(dataset: Dataset, pattern: Pattern) -> int:
    """Literal Definition 2: one pass over the raw rows, no indices.

    Kept as the ablation baseline for Appendix A's inverted-index design and
    as an independent correctness check in tests.
    """
    if len(pattern) != dataset.d:
        raise PatternError(
            f"pattern of length {len(pattern)} against d={dataset.d}"
        )
    rows = dataset.rows
    mask = np.ones(dataset.n, dtype=bool)
    for index in pattern.deterministic_indices():
        np.logical_and(mask, rows[:, index] == pattern[index], out=mask)
    return int(mask.sum())


def max_covered_level(
    mups: Sequence[Pattern], d: Optional[int] = None
) -> int:
    """Definition 6: the maximum level λ with every MUP strictly deeper.

    With no MUPs at all, the dataset is covered through level ``d`` (every
    pattern is covered); pass ``d`` to get that answer, otherwise the
    function returns ``min level - 1`` over the MUPs.
    """
    mups = list(mups)
    if not mups:
        if d is None:
            raise ValueError("need d to report the level of a fully covered dataset")
        return d
    return min(p.level for p in mups) - 1
