"""The pattern graph and its Rule 1 / Rule 2 traversal trees (§III-B).

:class:`PatternSpace` binds attribute cardinalities to the pattern algebra:
child/parent generation, the Rule 1 tree (top-down, each node generated once
by specializing only to the right of the right-most deterministic element)
and the Rule 2 forest (bottom-up, each node generated once by X-ing out
value-0 elements to the right of the right-most ``X``), node/edge counting,
and descendant expansion used by coverage enhancement (Appendix C).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro._util import product_int
from repro.core.pattern import Pattern, X
from repro.exceptions import PatternError


class PatternSpace:
    """All patterns over attributes with the given cardinalities.

    Args:
        cardinalities: ``c_i`` per attribute; every deterministic value of
            attribute ``i`` must lie in ``[0, c_i)``.
    """

    def __init__(self, cardinalities: Sequence[int]) -> None:
        cardinalities = tuple(int(c) for c in cardinalities)
        if not cardinalities:
            raise PatternError("need at least one attribute")
        for i, c in enumerate(cardinalities):
            if c < 1:
                raise PatternError(f"attribute {i} has cardinality {c} < 1")
        self._cardinalities = cardinalities

    @classmethod
    def for_dataset(cls, dataset) -> "PatternSpace":
        """Space matching a :class:`~repro.data.Dataset`'s schema."""
        return cls(dataset.schema.cardinalities)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return self._cardinalities

    @property
    def d(self) -> int:
        return len(self._cardinalities)

    def root(self) -> Pattern:
        """The level-0 all-``X`` pattern."""
        return Pattern.root(self.d)

    def validate(self, pattern: Pattern) -> Pattern:
        """Check a pattern fits this space; returns it for chaining."""
        if len(pattern) != self.d:
            raise PatternError(
                f"pattern {pattern} has length {len(pattern)}, expected {self.d}"
            )
        for i, value in enumerate(pattern):
            if value != X and not 0 <= value < self._cardinalities[i]:
                raise PatternError(
                    f"pattern {pattern} has value {value} at attribute {i} "
                    f"with cardinality {self._cardinalities[i]}"
                )
        return pattern

    # ------------------------------------------------------------------
    # counting (§III-B analysis)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total nodes ``Π (c_k + 1)``."""
        return product_int(c + 1 for c in self._cardinalities)

    def combination_count(self) -> int:
        """Total full value combinations ``Π c_k`` (the level-``d`` width)."""
        return product_int(self._cardinalities)

    def edge_count(self) -> int:
        """Total parent-child edges.

        Each node ``P`` has ``Σ_{i ∈ A_P} c_i`` edges to level ``ℓ(P)+1``;
        summing over all nodes gives, for uniform cardinality ``c``,
        ``c · d · (c+1)^{d-1}`` (verified in tests against Figure 2's 54).
        """
        total = 0
        for pattern in self.all_patterns():
            total += sum(
                self._cardinalities[i] for i in pattern.nondeterministic_indices()
            )
        return total

    def level_width(self, level: int) -> int:
        """Number of nodes at a level: ``Σ over index sets of Π c_i``."""
        if not 0 <= level <= self.d:
            raise PatternError(f"level {level} out of range [0, {self.d}]")
        total = 0
        for subset in itertools.combinations(range(self.d), level):
            total += product_int(self._cardinalities[i] for i in subset)
        return total

    def value_count(self, pattern: Pattern) -> int:
        """Definition 7: number of value combinations matching ``pattern``."""
        self.validate(pattern)
        return product_int(
            self._cardinalities[i] for i in pattern.nondeterministic_indices()
        )

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def all_patterns(self) -> Iterator[Pattern]:
        """Every pattern in the space (exponential; for tests/naive only)."""
        choices = [[X] + list(range(c)) for c in self._cardinalities]
        for values in itertools.product(*choices):
            yield Pattern(values)

    def all_combinations(self) -> Iterator[Tuple[int, ...]]:
        """Every full value combination (the level-``d`` leaves)."""
        return itertools.product(*[range(c) for c in self._cardinalities])

    def combinations_matching(self, pattern: Pattern) -> Iterator[Tuple[int, ...]]:
        """All full value combinations matching ``pattern``."""
        self.validate(pattern)
        choices = [
            range(self._cardinalities[i]) if value == X else (value,)
            for i, value in enumerate(pattern)
        ]
        return itertools.product(*choices)

    # ------------------------------------------------------------------
    # graph navigation
    # ------------------------------------------------------------------
    def children(self, pattern: Pattern) -> Iterator[Pattern]:
        """All children: replace one ``X`` with each value of its attribute."""
        for index in pattern.nondeterministic_indices():
            for value in range(self._cardinalities[index]):
                yield pattern.with_value(index, value)

    def rule1_children(self, pattern: Pattern) -> List[Pattern]:
        """Rule 1: specialize only ``X``s right of the right-most
        deterministic element, so each node is generated exactly once in the
        top-down traversal (Theorem 3)."""
        start = pattern.rightmost_deterministic() + 1
        result = []
        for index in range(start, self.d):
            if pattern[index] == X:
                for value in range(self._cardinalities[index]):
                    result.append(pattern.with_value(index, value))
        return result

    def rule1_parent(self, pattern: Pattern) -> Optional[Pattern]:
        """The unique Rule-1 generator: right-most deterministic element → X."""
        index = pattern.rightmost_deterministic()
        if index < 0:
            return None
        return pattern.with_value(index, X)

    def rule2_parents(self, pattern: Pattern) -> List[Pattern]:
        """Rule 2: in the bottom-up traversal, a node generates the patterns
        obtained by X-ing out deterministic *value-0* elements right of its
        right-most ``X`` (Theorem 4)."""
        start = pattern.rightmost_nondeterministic() + 1
        result = []
        for index in range(start, self.d):
            if pattern[index] == 0:
                result.append(pattern.with_value(index, X))
        return result

    def rule2_child(self, pattern: Pattern) -> Optional[Pattern]:
        """The unique Rule-2 generator: right-most ``X`` → value 0."""
        index = pattern.rightmost_nondeterministic()
        if index < 0:
            return None
        return pattern.with_value(index, 0)

    def sibling_family(self, pattern: Pattern, index: int) -> List[Pattern]:
        """The ``c_i`` children of ``pattern`` specializing attribute ``index``.

        These partition the matches of ``pattern`` disjointly — the identity
        PATTERN-COMBINER uses to combine coverages upward
        (``cov(1XX) = cov(1X0) + cov(1X1)``).
        """
        if pattern[index] != X:
            raise PatternError(
                f"attribute {index} of {pattern} is already deterministic"
            )
        return [
            pattern.with_value(index, value)
            for value in range(self._cardinalities[index])
        ]

    # ------------------------------------------------------------------
    # descendant expansion (Appendix C)
    # ------------------------------------------------------------------
    def descendants_at_level(self, pattern: Pattern, level: int) -> Iterator[Pattern]:
        """All descendants of ``pattern`` at exactly ``level``.

        Appendix C: replace ``level - ℓ(P)`` non-deterministic elements with
        concrete values, in all ways.  Yields ``pattern`` itself when already
        at ``level``.
        """
        self.validate(pattern)
        gap = level - pattern.level
        if gap < 0:
            raise PatternError(
                f"pattern {pattern} at level {pattern.level} has no "
                f"descendants at level {level}"
            )
        if gap == 0:
            yield pattern
            return
        free = pattern.nondeterministic_indices()
        for subset in itertools.combinations(free, gap):
            value_ranges = [range(self._cardinalities[i]) for i in subset]
            for values in itertools.product(*value_ranges):
                current = pattern
                for index, value in zip(subset, values):
                    current = current.with_value(index, value)
                yield current

    def random_pattern(self, rng, level: Optional[int] = None) -> Pattern:
        """A uniformly random pattern (optionally of a fixed level); tests."""
        d = self.d
        if level is None:
            level = int(rng.integers(0, d + 1))
        if not 0 <= level <= d:
            raise PatternError(f"level {level} out of range [0, {d}]")
        positions = rng.choice(d, size=level, replace=False)
        values = [X] * d
        for index in positions:
            values[int(index)] = int(rng.integers(0, self._cardinalities[int(index)]))
        return Pattern(values)
