"""Patterns over categorical attributes (§II, Definitions 1–5 and 7).

A pattern is a vector of length ``d`` whose elements are either a concrete
attribute value or ``X`` (unspecified, "non-deterministic").  Patterns are
immutable and hashable so they can live in sets and dict keys — the MUP
algorithms rely on that heavily.

``X`` is represented internally by ``-1``; the string form uses the letter
``X`` exactly as the paper prints patterns (``1XX0``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.exceptions import PatternError

#: The non-deterministic ("unspecified") element marker.
X: int = -1


class Pattern:
    """An immutable pattern vector (Definition 1).

    Construct with :meth:`of`, :meth:`from_string`, or :meth:`root`; the raw
    constructor accepts an iterable of ints where ``X`` (= -1) marks
    non-deterministic elements.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Iterable[int]) -> None:
        values = tuple(int(v) for v in values)
        for value in values:
            if value < X:
                raise PatternError(f"invalid pattern element {value}")
        self._values = values
        self._hash = hash(values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *values: Union[int, None, str]) -> "Pattern":
        """Convenience constructor: ``Pattern.of(1, X, X, 0)``.

        ``None`` and ``"X"``/``"x"`` are accepted as aliases for ``X``.
        """
        normalized = []
        for value in values:
            if value is None or (isinstance(value, str) and value.upper() == "X"):
                normalized.append(X)
            else:
                normalized.append(int(value))
        return cls(normalized)

    @classmethod
    def from_string(cls, text: str) -> "Pattern":
        """Parse the paper's compact form, e.g. ``"1XX0"``.

        Only single-digit values are supported (cardinality ≤ 10), which
        covers every example in the paper; use :meth:`of` otherwise.
        """
        values = []
        for ch in text:
            if ch.upper() == "X":
                values.append(X)
            elif ch.isdigit():
                values.append(int(ch))
            else:
                raise PatternError(f"invalid pattern character {ch!r} in {text!r}")
        return cls(values)

    @classmethod
    def root(cls, d: int) -> "Pattern":
        """The all-``X`` pattern at level 0 (matches everything)."""
        if d < 1:
            raise PatternError(f"pattern length must be >= 1, got {d}")
        return cls([X] * d)

    @classmethod
    def from_tuple_row(cls, row: Sequence[int]) -> "Pattern":
        """The fully deterministic pattern equal to a value combination."""
        return cls(row)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> Tuple[int, ...]:
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> int:
        return self._values[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._values == other._values

    def __lt__(self, other: "Pattern") -> bool:
        # Deterministic ordering for stable, reproducible outputs.
        return self._values < other._values

    def __repr__(self) -> str:
        return f"Pattern({self})"

    def __str__(self) -> str:
        return "".join("X" if v == X else str(v) for v in self._values)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of deterministic elements, the paper's ``ℓ(P)``."""
        return sum(1 for v in self._values if v != X)

    def is_deterministic(self, index: int) -> bool:
        """True if element ``index`` carries a concrete value."""
        return self._values[index] != X

    def deterministic_indices(self) -> Tuple[int, ...]:
        """Positions carrying concrete values."""
        return tuple(i for i, v in enumerate(self._values) if v != X)

    def nondeterministic_indices(self) -> Tuple[int, ...]:
        """Positions carrying ``X`` (the paper's ``A_P``)."""
        return tuple(i for i, v in enumerate(self._values) if v == X)

    @property
    def is_root(self) -> bool:
        """True for the all-``X`` pattern."""
        return all(v == X for v in self._values)

    @property
    def is_leaf(self) -> bool:
        """True when fully deterministic (a single value combination)."""
        return all(v != X for v in self._values)

    def rightmost_deterministic(self) -> int:
        """Index of the right-most deterministic element, or -1 (Rule 1)."""
        for index in range(len(self._values) - 1, -1, -1):
            if self._values[index] != X:
                return index
        return -1

    def rightmost_nondeterministic(self) -> int:
        """Index of the right-most ``X`` element, or -1 (Rule 2)."""
        for index in range(len(self._values) - 1, -1, -1):
            if self._values[index] == X:
                return index
        return -1

    # ------------------------------------------------------------------
    # matching and dominance (Definitions 1, 4, and the dominance notion)
    # ------------------------------------------------------------------
    def matches(self, row: Sequence[int]) -> bool:
        """Definition 1: ``M(t, P)`` — every deterministic element agrees."""
        if len(row) != len(self._values):
            raise PatternError(
                f"row of length {len(row)} against pattern of length {len(self._values)}"
            )
        return all(v == X or v == row[i] for i, v in enumerate(self._values))

    def covers(self, other: "Pattern") -> bool:
        """True if every combination matching ``other`` matches ``self``.

        Reflexive; ``dominates`` is the strict version used by the paper.
        """
        if len(other) != len(self._values):
            raise PatternError("patterns of different lengths are incomparable")
        return all(v == X or v == other[i] for i, v in enumerate(self._values))

    def dominates(self, other: "Pattern") -> bool:
        """Strict dominance: ``self`` is a proper generalization of ``other``."""
        return self != other and self.covers(other)

    def is_parent_of(self, other: "Pattern") -> bool:
        """Definition 4: parent = ``other`` with one deterministic element X'd."""
        return other.level == self.level + 1 and self.covers(other)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def parents(self) -> Iterator["Pattern"]:
        """All parents (one deterministic element replaced with ``X``)."""
        for index in self.deterministic_indices():
            yield self.with_value(index, X)

    def with_value(self, index: int, value: int) -> "Pattern":
        """A copy with element ``index`` set to ``value`` (or ``X``)."""
        if not 0 <= index < len(self._values):
            raise PatternError(f"index {index} out of range")
        values = list(self._values)
        values[index] = value
        return Pattern(values)

    def merge_intersection(self, other: "Pattern") -> "Pattern":
        """Element-wise generalization: keep a value only where both agree.

        Used by the GREEDY implementation note (§IV-B): the intersection of
        the patterns a combination hits yields a more general collection
        recipe.
        """
        if len(other) != len(self._values):
            raise PatternError("patterns of different lengths cannot merge")
        return Pattern(
            a if a == b else X for a, b in zip(self._values, other._values)
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def describe(self, schema) -> str:
        """Human-readable rendering against a :class:`~repro.data.Schema`.

        Example: ``race=hispanic, marital_status=widowed``.
        """
        parts = []
        for index in self.deterministic_indices():
            parts.append(
                f"{schema.names[index]}={schema.value_label(index, self._values[index])}"
            )
        return ", ".join(parts) if parts else "(any)"


def parse_patterns(texts: Iterable[str]) -> Tuple[Pattern, ...]:
    """Parse several compact pattern strings at once (test convenience)."""
    return tuple(Pattern.from_string(t) for t in texts)
