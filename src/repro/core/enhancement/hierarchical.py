"""Hierarchy-aware coverage enhancement: generalize or acquire.

The paper's Problem 2 remedies a MUP by *acquiring* rows.  With attribute
generalization hierarchies in play there is a second remedy that costs no
data collection at all: report the attribute at a coarser level (ZIP →
county → state) so the region's pooled coverage clears τ.  This module
holds the remedy record produced by the hierarchical MUP search
(:mod:`repro.analysis.hierarchy`) and the cost model that decides, per
MUP, between generalizing and acquiring — routing the acquisition share
through the existing greedy hitting set so shared combinations are still
exploited.

Layering note: this module is analysis-agnostic — it defines the remedy
type and consumes precomputed remedies, so ``analysis.hierarchy`` can
import *from* it without a core → analysis cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.enhancement.greedy import EnhancementResult, greedy_cover
from repro.core.enhancement.oracle import ValidationOracle
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset
from repro.exceptions import EnhancementError

__all__ = [
    "GeneralizationRemedy",
    "HierarchicalEnhancementPlan",
    "plan_hierarchical_enhancement",
]


@dataclass(frozen=True)
class GeneralizationRemedy:
    """The most *specific covered generalization* of a MUP.

    Attributes:
        mup: the (finest-level) maximal uncovered pattern.
        generalized: the closest covered pattern reachable by climbing
            attribute hierarchies (values are codes at the per-attribute
            levels recorded in ``levels``); ``None`` when no generalization
            is covered (only possible when the dataset itself is smaller
            than τ).
        levels: per attribute, how many hierarchy levels the value climbed
            (0 = untouched; one past the top of the chain = widened to
            ``X``).
        coverage: pooled coverage of ``generalized`` on the base dataset.
        steps: total generalization steps taken (``sum(levels)``).
    """

    mup: Pattern
    generalized: Optional[Pattern]
    levels: Tuple[int, ...]
    coverage: int
    steps: int

    @property
    def found(self) -> bool:
        return self.generalized is not None

    def as_dict(self) -> Dict[str, object]:
        return {
            "mup": list(self.mup.values),
            "generalized": (
                list(self.generalized.values) if self.found else None
            ),
            "levels": list(self.levels),
            "coverage": self.coverage,
            "steps": self.steps,
        }

    def describe(self, schema, stack=None) -> str:
        """Human-readable remedy, e.g. ``state=MI -> region=midwest``."""
        if not self.found:
            return f"{self.mup.describe(schema)}: no covered generalization"
        parts: List[str] = []
        for index, value in enumerate(self.generalized.values):
            if self.mup[index] == X:
                continue
            name = schema.names[index]
            level = self.levels[index]
            if value == X:
                parts.append(f"{name}=*")
            elif level == 0:
                parts.append(f"{name}={schema.value_label(index, value)}")
            else:
                label = str(value)
                if stack is not None:
                    chain = stack.chains.get(index, ())
                    if level <= len(chain) and chain[level - 1].group_labels:
                        label = chain[level - 1].group_labels[value]
                parts.append(f"{name}={label}@L{level}")
        rendered = ", ".join(parts) if parts else "(root)"
        return (
            f"{self.mup.describe(schema)} -> generalize to [{rendered}] "
            f"(coverage {self.coverage}, {self.steps} step(s))"
        )


@dataclass(frozen=True)
class HierarchicalEnhancementPlan:
    """Per-MUP generalize-vs-acquire decisions plus the pooled acquisition.

    Attributes:
        threshold: the coverage threshold τ the plan restores.
        generalizations: MUPs remedied by climbing hierarchies, cheapest
            first.
        acquired: MUPs routed to row acquisition.
        acquisition: greedy hitting-set result over ``acquired`` (``None``
            when nothing needs acquiring).
        generalization_cost: total cost of the generalization share.
        acquisition_cost: total cost of the acquisition share (per-MUP
            deficit × row cost; an upper bound — one acquired combination
            can serve several targets).
    """

    threshold: int
    generalizations: Tuple[GeneralizationRemedy, ...]
    acquired: Tuple[Pattern, ...]
    acquisition: Optional[EnhancementResult]
    generalization_cost: float
    acquisition_cost: float

    @property
    def total_cost(self) -> float:
        return self.generalization_cost + self.acquisition_cost

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "generalizations": [r.as_dict() for r in self.generalizations],
            "acquired": [list(p.values) for p in self.acquired],
            "combinations": (
                [list(c) for c in self.acquisition.combinations]
                if self.acquisition is not None
                else []
            ),
            "generalization_cost": self.generalization_cost,
            "acquisition_cost": self.acquisition_cost,
            "total_cost": self.total_cost,
        }


def plan_hierarchical_enhancement(
    dataset: Dataset,
    mups: Sequence[Pattern],
    remedies: Iterable[GeneralizationRemedy],
    threshold: int,
    row_cost: float = 1.0,
    step_cost: float = 1.0,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    validation: Optional[ValidationOracle] = None,
) -> HierarchicalEnhancementPlan:
    """Choose, per MUP, the cheaper of generalizing and acquiring rows.

    The cost model is deliberately simple and explicit: acquiring costs
    ``(τ - cov(MUP)) × row_cost`` (the deficit must be filled with matching
    rows), generalizing costs ``steps × step_cost`` (each hierarchy climb
    coarsens the report's resolution by one notch).  Ties go to
    generalization — it needs no new data.  MUPs routed to acquisition are
    pooled into one :func:`greedy_cover` run so combinations hitting
    several targets are still shared.

    Args:
        dataset: the base (finest-level) dataset.
        mups: the finest-level MUPs to remedy.
        remedies: precomputed :class:`GeneralizationRemedy` records (from
            ``find_mups_hierarchical``); MUPs without a usable remedy are
            acquired.
        threshold: absolute τ.
        row_cost: cost of collecting one matching row.
        step_cost: cost of coarsening an attribute by one hierarchy level.
        oracle: optional warm oracle for the base dataset.
        validation: validation oracle forwarded to the greedy hitting set.
    """
    if row_cost <= 0 or step_cost <= 0:
        raise EnhancementError(
            f"costs must be positive (row_cost={row_cost}, "
            f"step_cost={step_cost})"
        )
    if oracle is None:
        oracle = CoverageOracle(dataset, engine)
    by_mup: Mapping[Pattern, GeneralizationRemedy] = {
        remedy.mup: remedy for remedy in remedies
    }
    coverages = oracle.coverage_many(list(mups))
    generalizations: List[GeneralizationRemedy] = []
    acquired: List[Pattern] = []
    generalization_cost = 0.0
    acquisition_cost = 0.0
    for mup, coverage in zip(mups, coverages):
        deficit = max(0, threshold - int(coverage))
        acquire = deficit * row_cost
        remedy = by_mup.get(mup)
        if remedy is not None and remedy.found and remedy.steps * step_cost <= acquire:
            generalizations.append(remedy)
            generalization_cost += remedy.steps * step_cost
        else:
            acquired.append(mup)
            acquisition_cost += acquire
    generalizations.sort(key=lambda r: (r.steps, r.mup))
    acquisition = None
    if acquired:
        acquisition = greedy_cover(
            acquired,
            PatternSpace.for_dataset(dataset),
            validation=validation,
            engine=oracle.engine,
        )
    return HierarchicalEnhancementPlan(
        threshold=threshold,
        generalizations=tuple(generalizations),
        acquired=tuple(acquired),
        acquisition=acquisition,
        generalization_cost=generalization_cost,
        acquisition_cost=acquisition_cost,
    )
