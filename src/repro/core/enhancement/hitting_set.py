"""Direct (naive) implementation of the greedy hitting-set (§IV-A, §V-C4).

Materializes the whole universe of valid value combinations and, at every
iteration, scans it to find the combination hitting the most un-hit targets.
This is the baseline Figure 17 shows timing out everywhere except the
smallest setting; it also provides an independent reference implementation
for tests (both greedy variants must pick equally-sized covers when tie
breaking is irrelevant).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import Stopwatch
from repro.core.enhancement.greedy import EnhancementResult
from repro.core.enhancement.oracle import ValidationOracle
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import EnhancementError

#: The naive algorithm materializes the full combination universe; refuse
#: spaces where that is plainly hopeless.
_MAX_UNIVERSE = 2_000_000


def naive_greedy_cover(
    targets: Sequence[Pattern],
    space: PatternSpace,
    validation: Optional[ValidationOracle] = None,
    cost_fn=None,
) -> EnhancementResult:
    """Greedy hitting set by exhaustive scan (the paper's naive baseline).

    Args:
        targets: uncovered patterns to hit.
        space: the pattern space.
        validation: optional validation oracle.
        cost_fn: optional acquisition-cost function over value combinations
            (§IV motivates minimizing collection cost); when given, each
            iteration picks the combination maximizing newly-hit targets
            per unit cost instead of raw hit count.
    """
    validation = validation or ValidationOracle.permissive()
    watch = Stopwatch()
    if space.combination_count() > _MAX_UNIVERSE:
        raise EnhancementError(
            f"universe of {space.combination_count()} combinations is too "
            f"large for the naive algorithm; use greedy_cover"
        )
    for target in targets:
        space.validate(target)

    universe: List[Tuple[int, ...]] = [
        combo
        for combo in space.all_combinations()
        if validation.is_valid_values(combo)
    ]
    m = len(targets)
    # hit_matrix[k, j] == True iff universe[k] matches targets[j].
    hit_matrix = np.zeros((len(universe), m), dtype=bool)
    for j, target in enumerate(targets):
        deterministic = target.deterministic_indices()
        column = np.ones(len(universe), dtype=bool)
        for index in deterministic:
            values = np.fromiter(
                (combo[index] for combo in universe), dtype=np.int64, count=len(universe)
            )
            np.logical_and(column, values == target[index], out=column)
        hit_matrix[:, j] = column

    costs = None
    if cost_fn is not None:
        costs = np.asarray([float(cost_fn(combo)) for combo in universe])
        if (costs <= 0).any():
            raise EnhancementError("cost_fn must return positive costs")

    remaining = np.ones(m, dtype=bool)
    combos: List[Tuple[int, ...]] = []
    generalized: List[Pattern] = []
    iterations = 0
    nodes = 0
    while remaining.any():
        iterations += 1
        gains = hit_matrix[:, remaining].sum(axis=1)
        nodes += len(universe)
        if costs is not None:
            best = int(np.argmax(np.where(gains > 0, gains / costs, -1.0)))
        else:
            best = int(np.argmax(gains))
        if gains[best] == 0:
            break
        combo = universe[best]
        hits = np.logical_and(hit_matrix[best], remaining)
        hit_targets = [targets[j] for j in np.nonzero(hits)[0]]
        general_values = list(combo)
        for attribute in range(space.d):
            if all(t[attribute] == X for t in hit_targets):
                general_values[attribute] = X
        combos.append(combo)
        generalized.append(Pattern(general_values))
        np.logical_and(remaining, np.logical_not(hits), out=remaining)

    unhittable = tuple(targets[j] for j in np.nonzero(remaining)[0])
    return EnhancementResult(
        combinations=tuple(combos),
        generalized=tuple(generalized),
        targets=m,
        unhittable=unhittable,
        iterations=iterations,
        nodes_visited=nodes,
        seconds=watch.elapsed(),
    )
