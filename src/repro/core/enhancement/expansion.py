"""Expansion of MUPs into the hitting-set targets ``M_λ`` (Appendix C).

Covering only the MUPs does not guarantee a maximum covered level of λ:
a MUP at level 2 can be "hit" by a single combination while most of its
level-3 children stay empty.  Appendix C therefore expands every MUP of
level ≤ λ into its descendants at *exactly* level λ; covering all of those
covers every pattern at level ≤ λ as well.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import EnhancementError


def uncovered_at_level(
    mups: Iterable[Pattern],
    space: PatternSpace,
    level: int,
    limit: Optional[int] = None,
) -> List[Pattern]:
    """The set of uncovered patterns at exactly ``level`` (the paper's M_λ).

    Every uncovered pattern at ``level`` is a descendant of (or is) some MUP
    with level ≤ ``level``, because all ancestors of a MUP are covered.
    MUPs deeper than ``level`` are ignored: the patterns above them at
    ``level`` are covered.

    Args:
        mups: the material MUPs of the dataset.
        space: the pattern space (for cardinalities).
        level: the target λ.
        limit: safety cap on the number of generated targets.

    Returns:
        Sorted list of target patterns (deduplicated).
    """
    if not 0 <= level <= space.d:
        raise EnhancementError(f"level {level} out of range [0, {space.d}]")
    targets: Set[Pattern] = set()
    for mup in mups:
        space.validate(mup)
        if mup.level > level:
            continue
        for descendant in space.descendants_at_level(mup, level):
            targets.add(descendant)
            if limit is not None and len(targets) > limit:
                raise EnhancementError(
                    f"more than {limit} targets at level {level}; "
                    f"raise the limit or lower λ"
                )
    return sorted(targets)
