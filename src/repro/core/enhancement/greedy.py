"""Efficient greedy hitting-set for coverage enhancement (§IV-B, Algs. 4–5).

The targets (uncovered patterns at level λ) form the sets of a hitting-set
instance whose universe is the value combinations.  The classic greedy
approximation repeatedly picks the combination hitting the most un-hit
targets; doing that naively scans an exponential universe, so the paper
builds, per attribute value, an inverted index over the targets (a target
survives value ``v`` on attribute ``i`` iff its element there is ``v`` or
``X``) and finds the best combination with a threshold-pruned DFS over the
attribute-assignment tree (Algorithm 4), consulting the validation oracle
before generating each child.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import Stopwatch
from repro.core.engine import EngineSpec, engine_name
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.oracle import ValidationOracle
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.bitset import BitVector
from repro.data.dataset import Dataset
from repro.exceptions import EnhancementError, ReproError


@dataclass(frozen=True)
class EnhancementResult:
    """Output of a coverage-enhancement run (Problem 2).

    Attributes:
        combinations: the value combinations to collect, in pick order.
        generalized: per pick, the most general pattern whose matching
            combinations all hit the same targets (§IV-B implementation
            note) — extra freedom for the data collector.
        targets: how many target patterns had to be hit.
        unhittable: targets no valid combination can hit (ruled out by the
            validation oracle); they require human attention.
        iterations: greedy picks performed.
        nodes_visited: tree nodes expanded by Algorithm 4 across all picks.
        seconds: wall-clock time.
    """

    combinations: Tuple[Tuple[int, ...], ...]
    generalized: Tuple[Pattern, ...]
    targets: int
    unhittable: Tuple[Pattern, ...] = ()
    iterations: int = 0
    nodes_visited: int = 0
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.combinations)

    def rows(self) -> np.ndarray:
        """The collected combinations as an ``(m, d)`` array for appending."""
        if not self.combinations:
            return np.zeros((0, 0), dtype=np.int32)
        return np.asarray(self.combinations, dtype=np.int32)

    def describe(self, schema) -> str:
        """Human-readable acquisition plan."""
        lines = [f"Collect {len(self.combinations)} value combination(s):"]
        for combo, general in zip(self.combinations, self.generalized):
            rendered = ", ".join(
                f"{schema.names[i]}={schema.value_label(i, v)}"
                for i, v in enumerate(combo)
            )
            lines.append(f"  - {rendered}")
            if general.level < len(combo):
                lines.append(f"    (any tuple matching {general.describe(schema)})")
        if self.unhittable:
            lines.append(
                f"  ! {len(self.unhittable)} target(s) cannot be hit by any "
                f"valid combination"
            )
        return "\n".join(lines)


class _TargetIndex:
    """Inverted indices from attribute values to target patterns (§IV-B).

    The per-value membership vectors live in the representation of the
    selected coverage engine: unpacked ``bool`` ndarrays (``dense``) or
    packed :class:`~repro.data.bitset.BitVector` words with word-level
    popcount (``packed``).  The Algorithm-4 tree search only touches the
    masks through :meth:`search_mask` / :meth:`restrict` / :meth:`count`,
    so it runs unmodified on either backend.
    """

    def __init__(
        self,
        targets: Sequence[Pattern],
        space: PatternSpace,
        engine: EngineSpec = None,
    ) -> None:
        self.targets = list(targets)
        self.space = space
        # Any bitset-family backend ("packed", "sharded", future variants)
        # gets the packed target representation; only the dense reference
        # keeps unpacked bool vectors.  Unnamed factory callables (valid
        # per EngineSpec but carrying no registry name) default to packed —
        # the choice only affects the mask representation, not results.
        # Bad names and non-engine specs must still raise.
        try:
            name = engine_name(engine)
        except ReproError:
            if isinstance(engine, str) or not callable(engine):
                raise
            name = None
        self._packed = name != "dense"
        m = len(self.targets)
        # vectors[i][v][j] == True iff target j can still be hit after
        # fixing attribute i to value v (its element is v or X).
        self.vectors: List[List] = []
        for i, cardinality in enumerate(space.cardinalities):
            per_value = []
            elements = np.array([t[i] for t in self.targets], dtype=np.int64)
            is_x = elements == X
            for value in range(cardinality):
                flags = np.logical_or(is_x, elements == value)
                per_value.append(
                    BitVector.from_bool_array(flags) if self._packed else flags
                )
            self.vectors.append(per_value)
        self.m = m

    # ------------------------------------------------------------------
    # mask kernel for the Algorithm-4 search
    # ------------------------------------------------------------------
    def search_mask(self, remaining: np.ndarray):
        """The un-hit-targets filter as a search mask (engine-specific)."""
        if self._packed:
            return BitVector.from_bool_array(remaining)
        return remaining

    def restrict(self, mask, attribute: int, value: int):
        """``mask AND (targets still hittable with attribute == value)``."""
        if self._packed:
            return mask & self.vectors[attribute][value]
        return np.logical_and(mask, self.vectors[attribute][value])

    def count(self, mask) -> int:
        """Number of targets selected by ``mask``."""
        if self._packed:
            return mask.count()
        return int(mask.sum())

    def hits_of(self, combination: Sequence[int]) -> np.ndarray:
        """Boolean vector of targets hit by a full combination."""
        if self._packed:
            mask = BitVector(self.m, fill=True)
            for i, value in enumerate(combination):
                mask.iand(self.vectors[i][value])
            return mask.to_bool_array()
        mask = np.ones(self.m, dtype=bool)
        for i, value in enumerate(combination):
            np.logical_and(mask, self.vectors[i][value], out=mask)
        return mask


def _hit_count_search(
    index: _TargetIndex,
    filter_mask,
    validation: ValidationOracle,
    counters: Dict[str, int],
) -> Tuple[int, Optional[Tuple[int, ...]]]:
    """Algorithm 4: best valid combination for the current filter.

    Returns ``(hits, combination)``; ``combination`` is ``None`` when no
    valid combination hits any remaining target.
    """
    space = index.space
    d = space.d
    best_count = 0
    best_combo: Optional[Tuple[int, ...]] = None

    def recurse(level: int, mask, prefix: List[int]) -> None:
        nonlocal best_count, best_combo
        counters["nodes"] += 1
        candidates = []
        for value in range(space.cardinalities[level]):
            prefix.append(value)
            invalid = validation.invalidates_prefix(prefix)
            prefix.pop()
            if invalid:
                continue
            child_mask = index.restrict(mask, level, value)
            count = index.count(child_mask)
            candidates.append((count, value, child_mask))
        if level == d - 1:
            for count, value, _child in candidates:
                if count > best_count:
                    best_count = count
                    best_combo = tuple(prefix + [value])
            return
        # Explore children best-first; prune once the upper bound (remaining
        # potential hits) cannot beat the best known combination.
        candidates.sort(key=lambda item: -item[0])
        for count, value, child_mask in candidates:
            if count <= best_count:
                break
            prefix.append(value)
            recurse(level + 1, child_mask, prefix)
            prefix.pop()

    recurse(0, filter_mask, [])
    return best_count, best_combo


def greedy_cover(
    targets: Sequence[Pattern],
    space: PatternSpace,
    validation: Optional[ValidationOracle] = None,
    engine: EngineSpec = None,
) -> EnhancementResult:
    """Algorithm 5: greedy hitting set over the given target patterns.

    Args:
        targets: uncovered patterns to hit (e.g. from
            :func:`~repro.core.enhancement.expansion.uncovered_at_level`).
        space: the pattern space.
        validation: the human-configured validation oracle; defaults to
            permissive.
        engine: engine spec choosing the mask representation for the
            target index (any :class:`~repro.core.engine.EngineSpec` —
            name, ``EngineConfig``, class, instance; everything except
            ``"dense"`` selects the packed representation).

    Returns:
        An :class:`EnhancementResult`; targets that no *valid* combination
        can hit are reported in ``unhittable`` rather than looping forever.
    """
    validation = validation or ValidationOracle.permissive()
    watch = Stopwatch()
    for target in targets:
        space.validate(target)
    index = _TargetIndex(targets, space, engine=engine)
    remaining = np.ones(index.m, dtype=bool)
    combos: List[Tuple[int, ...]] = []
    generalized: List[Pattern] = []
    counters = {"nodes": 0}
    iterations = 0

    while remaining.any():
        iterations += 1
        best_count, best_combo = _hit_count_search(
            index, index.search_mask(remaining), validation, counters
        )
        if best_combo is None or best_count == 0:
            break
        hits = np.logical_and(index.hits_of(best_combo), remaining)
        # Generalize (§IV-B implementation note): keep the combination's
        # value only where some hit target pins it; if every hit target has
        # X on an attribute, any value there hits the same set.
        general_values = list(best_combo)
        hit_targets = [index.targets[j] for j in np.nonzero(hits)[0]]
        for attribute in range(space.d):
            if all(t[attribute] == X for t in hit_targets):
                general_values[attribute] = X
        combos.append(best_combo)
        generalized.append(Pattern(general_values))
        np.logical_and(remaining, np.logical_not(hits), out=remaining)

    unhittable = tuple(index.targets[j] for j in np.nonzero(remaining)[0])
    return EnhancementResult(
        combinations=tuple(combos),
        generalized=tuple(generalized),
        targets=index.m,
        unhittable=unhittable,
        iterations=iterations,
        nodes_visited=counters["nodes"],
        seconds=watch.elapsed(),
    )


def enhance_coverage(
    dataset: Dataset,
    mups: Sequence[Pattern],
    level: int,
    threshold: int,
    validation: Optional[ValidationOracle] = None,
    copies: Optional[int] = None,
    engine: EngineSpec = None,
) -> Tuple[EnhancementResult, Dataset]:
    """End-to-end Problem 2: plan the acquisition and apply it.

    Args:
        dataset: the dataset to enhance.
        mups: its material MUPs.
        level: the target maximum covered level λ.
        threshold: the coverage threshold τ (each planned combination is
            added ``copies`` times so hit targets actually reach τ).
        validation: optional validation oracle.
        copies: how many tuples to collect per planned combination; defaults
            to ``threshold`` (enough to cover any previously empty target).
        engine: engine spec (name, ``EngineConfig``, class, instance)
            choosing the greedy target index's mask representation.

    Returns:
        ``(result, enhanced dataset)``.
    """
    space = PatternSpace.for_dataset(dataset)
    targets = uncovered_at_level(mups, space, level)
    result = greedy_cover(targets, space, validation, engine=engine)
    copies = threshold if copies is None else copies
    if copies < 1:
        raise EnhancementError(f"copies must be >= 1, got {copies}")
    new_rows: List[Tuple[int, ...]] = []
    for combo in result.combinations:
        new_rows.extend([combo] * copies)
    enhanced = dataset.append_rows(new_rows)
    return result, enhanced
