"""Validation rules and oracle (§IV, Definitions 10–11).

A human expert rules out semantically impossible value combinations (the
paper's example: ``{gender=Male, isPregnant=True}``).  A
:class:`ValidationRule` is a conjunction of per-attribute value sets; a
pattern *satisfies* a rule when every clause holds.  The
:class:`ValidationOracle` declares a combination valid when it satisfies
**none** of its rules, and is consulted by the GREEDY tree search before
generating each child so only valid combinations are ever proposed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.core.pattern import Pattern
from repro.exceptions import ValidationError


class ValidationRule:
    """One forbidden conjunction: ``{⟨A_i, V_i⟩, ...}`` (Definition 10).

    Args:
        clauses: mapping or iterable of ``(attribute index, values)`` pairs;
            a pattern satisfies the rule when, for every pair, its value at
            that attribute is in the value set.
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses) -> None:
        items: Iterable
        if isinstance(clauses, dict):
            items = clauses.items()
        else:
            items = clauses
        normalized = []
        seen = set()
        for attribute, values in items:
            attribute = int(attribute)
            if attribute < 0:
                raise ValidationError(f"negative attribute index {attribute}")
            if attribute in seen:
                raise ValidationError(f"attribute {attribute} appears twice in rule")
            seen.add(attribute)
            if isinstance(values, int):
                values = (values,)
            value_set = frozenset(int(v) for v in values)
            if not value_set:
                raise ValidationError(f"empty value set for attribute {attribute}")
            normalized.append((attribute, value_set))
        if not normalized:
            raise ValidationError("a validation rule needs at least one clause")
        normalized.sort()
        self._clauses: Tuple[Tuple[int, FrozenSet[int]], ...] = tuple(normalized)

    @property
    def clauses(self) -> Tuple[Tuple[int, FrozenSet[int]], ...]:
        return self._clauses

    @property
    def max_attribute(self) -> int:
        """Highest attribute index referenced; drives prefix checks."""
        return self._clauses[-1][0]

    def satisfied_by(self, pattern: Pattern) -> bool:
        """Definition 10: every clause holds (``X`` never satisfies a clause)."""
        return all(pattern[attribute] in values for attribute, values in self._clauses)

    def satisfied_by_values(self, values: Sequence[int]) -> bool:
        """Same check against a full value combination."""
        return all(values[attribute] in allowed for attribute, allowed in self._clauses)

    def satisfied_by_prefix(self, prefix: Sequence[int]) -> bool:
        """True when the assigned prefix already satisfies every clause.

        Only meaningful when all clause attributes are within the prefix;
        the GREEDY tree search uses this to refuse to generate children that
        can only lead to invalid combinations.
        """
        if self.max_attribute >= len(prefix):
            return False
        return self.satisfied_by_values(prefix)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"A{attribute}∈{sorted(values)}" for attribute, values in self._clauses
        )
        return f"ValidationRule({parts})"


class ValidationOracle:
    """A collection of validation rules (Definition 11).

    ``is_valid`` returns True when the pattern/combination satisfies none of
    the rules.
    """

    def __init__(self, rules: Iterable[ValidationRule] = ()) -> None:
        self._rules = list(rules)
        self.queries = 0

    @classmethod
    def permissive(cls) -> "ValidationOracle":
        """An oracle with no rules — everything is valid."""
        return cls()

    @classmethod
    def from_named_rules(cls, schema, rules: Iterable[Dict[str, Iterable]]) -> "ValidationOracle":
        """Build from attribute *names* and value *labels*.

        Example::

            ValidationOracle.from_named_rules(schema, [
                {"marital_status": ["unknown"]},
                {"age": ["<20"], "marital_status": ["married", "widowed"]},
            ])
        """
        built = []
        for rule in rules:
            clauses = []
            for name, labels in rule.items():
                attribute = schema.index_of(name)
                values = []
                for label in labels:
                    if isinstance(label, int):
                        values.append(label)
                    else:
                        if schema.value_labels is None:
                            raise ValidationError(
                                f"schema has no value labels; use integer values"
                            )
                        try:
                            values.append(schema.value_labels[attribute].index(label))
                        except ValueError:
                            raise ValidationError(
                                f"unknown value {label!r} for attribute {name!r}"
                            ) from None
                clauses.append((attribute, values))
            built.append(ValidationRule(clauses))
        return cls(built)

    @property
    def rules(self) -> Tuple[ValidationRule, ...]:
        return tuple(self._rules)

    def add_rule(self, rule: ValidationRule) -> None:
        self._rules.append(rule)

    def is_valid(self, pattern: Pattern) -> bool:
        """Definition 11: valid iff no rule is satisfied."""
        self.queries += 1
        return not any(rule.satisfied_by(pattern) for rule in self._rules)

    def is_valid_values(self, values: Sequence[int]) -> bool:
        """Validity of a full value combination."""
        self.queries += 1
        return not any(rule.satisfied_by_values(values) for rule in self._rules)

    def invalidates_prefix(self, prefix: Sequence[int]) -> bool:
        """True when every extension of ``prefix`` is invalid.

        This happens as soon as one rule is already fully satisfied by the
        assigned attributes (clauses are conjunctions over fixed values, so
        later attributes cannot un-satisfy them).
        """
        self.queries += 1
        return any(rule.satisfied_by_prefix(prefix) for rule in self._rules)

    def __len__(self) -> int:
        return len(self._rules)
