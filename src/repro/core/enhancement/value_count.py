"""Value-count variant of coverage enhancement (Definition 7, §II/§IV).

Instead of a maximum covered level, the owner may require that every
uncovered pattern whose *value count* (number of value combinations matching
it) is at least ``v`` be covered.  The proposed solution is identical once
the target set is enumerated, which is what this module does.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.exceptions import EnhancementError


def targets_by_value_count(
    mups: Iterable[Pattern],
    space: PatternSpace,
    min_value_count: int,
) -> List[Pattern]:
    """Enumerate uncovered patterns with value count ≥ ``min_value_count``.

    The uncovered patterns are exactly the patterns covered by some MUP
    (including the MUPs themselves); specializing a pattern only shrinks its
    value count, so the enumeration explores descendants of each MUP and
    prunes as soon as the count drops below the bound.
    """
    if min_value_count < 1:
        raise EnhancementError(
            f"min_value_count must be >= 1, got {min_value_count}"
        )
    targets: Set[Pattern] = set()
    for mup in mups:
        space.validate(mup)
        _collect(mup, space, min_value_count, targets, 0)
    return sorted(targets)


def _collect(
    pattern: Pattern,
    space: PatternSpace,
    bound: int,
    out: Set[Pattern],
    min_index: int,
) -> None:
    """DFS over descendants while the value count stays ≥ bound.

    Specializing only ``X`` positions ≥ ``min_index`` (in increasing order)
    gives each descendant a unique path, so nothing is enumerated twice;
    value counts shrink monotonically along any path, so the bound prune
    never cuts a qualifying descendant.
    """
    if space.value_count(pattern) < bound:
        return
    already_known = pattern in out
    out.add(pattern)
    if already_known:
        # All qualifying descendants were enumerated when this pattern was
        # first reached (from this or another MUP).
        return
    for index in range(min_index, space.d):
        if pattern[index] != X:
            continue
        for value in range(space.cardinalities[index]):
            _collect(pattern.with_value(index, value), space, bound, out, index + 1)
