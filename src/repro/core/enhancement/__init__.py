"""Coverage enhancement (Problem 2, §IV): determine the minimum additional
tuples to collect so the maximum covered level reaches a target λ.
"""

from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.greedy import EnhancementResult, greedy_cover, enhance_coverage
from repro.core.enhancement.hierarchical import (
    GeneralizationRemedy,
    HierarchicalEnhancementPlan,
    plan_hierarchical_enhancement,
)
from repro.core.enhancement.hitting_set import naive_greedy_cover
from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.enhancement.value_count import targets_by_value_count

__all__ = [
    "uncovered_at_level",
    "EnhancementResult",
    "greedy_cover",
    "enhance_coverage",
    "GeneralizationRemedy",
    "HierarchicalEnhancementPlan",
    "plan_hierarchical_enhancement",
    "naive_greedy_cover",
    "ValidationOracle",
    "ValidationRule",
    "targets_by_value_count",
]
