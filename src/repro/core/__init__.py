"""Core contribution of the paper: pattern algebra, the pattern graph,
coverage computation (over pluggable engines), MUP identification, and
coverage enhancement.
"""

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.core.engine import (
    ENGINES,
    CoverageEngine,
    DenseBoolEngine,
    PackedBitsetEngine,
    resolve_engine,
)
from repro.core.coverage import CoverageOracle, coverage_scan
from repro.core.dominance import MupDominanceIndex

__all__ = [
    "Pattern",
    "X",
    "PatternSpace",
    "CoverageEngine",
    "DenseBoolEngine",
    "PackedBitsetEngine",
    "ENGINES",
    "resolve_engine",
    "CoverageOracle",
    "coverage_scan",
    "MupDominanceIndex",
]
