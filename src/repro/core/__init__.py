"""Core contribution of the paper: pattern algebra, the pattern graph,
coverage computation, MUP identification, and coverage enhancement.
"""

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.core.coverage import CoverageOracle, coverage_scan
from repro.core.dominance import MupDominanceIndex

__all__ = [
    "Pattern",
    "X",
    "PatternSpace",
    "CoverageOracle",
    "coverage_scan",
    "MupDominanceIndex",
]
