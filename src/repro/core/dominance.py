"""MUP dominance index (Definition 9, Appendix B).

DEEPDIVER issues two queries against the set of MUPs discovered so far:

* does pattern ``P`` **dominate** some MUP (``P`` is a proper ancestor)?
* is ``P`` **dominated by** some MUP (``P`` is a proper descendant)?

Appendix B answers both with inverted indices: one bit vector per attribute
value plus one per-attribute vector for MUPs carrying ``X`` there, combined
with bitwise AND/OR and an early stop as soon as a surviving word is seen.
Columns are MUPs, packed 64 per ``uint64`` word so a query over tens of
thousands of MUPs costs a few hundred word operations.  Strictness
(a pattern never dominates itself) is enforced by clearing the pattern's
own column before testing for survivors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.pattern import Pattern, X
from repro.exceptions import PatternError

_INITIAL_WORDS = 8  # 512 MUP columns
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class MupDominanceIndex:
    """Incremental dominance index over a growing set of MUPs."""

    def __init__(self, cardinalities: Sequence[int]) -> None:
        self._cardinalities = tuple(int(c) for c in cardinalities)
        if not self._cardinalities:
            raise PatternError("need at least one attribute")
        self._size = 0
        self._words = _INITIAL_WORDS
        # _value_bits[i][v] — packed columns; bit m set iff MUP m has value
        # v at attribute i.  Row index c_i holds the X vector.
        self._value_bits: List[np.ndarray] = [
            np.zeros((c + 1, self._words), dtype=np.uint64)
            for c in self._cardinalities
        ]
        # All columns added so far (the query starting mask).
        self._full = np.zeros(self._words, dtype=np.uint64)
        # Preallocated scratch buffers so queries allocate nothing.
        self._mask = np.zeros(self._words, dtype=np.uint64)
        self._tmp = np.zeros(self._words, dtype=np.uint64)
        self._mups: List[Pattern] = []
        self._column_of: Dict[Pattern, int] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._mups)

    def patterns(self) -> List[Pattern]:
        """The MUPs added so far, in insertion order."""
        return list(self._mups)

    def _grow(self) -> None:
        self._words *= 2
        for i, bits in enumerate(self._value_bits):
            grown = np.zeros((bits.shape[0], self._words), dtype=np.uint64)
            grown[:, : bits.shape[1]] = bits
            self._value_bits[i] = grown
        full = np.zeros(self._words, dtype=np.uint64)
        full[: len(self._full)] = self._full
        self._full = full
        self._mask = np.zeros(self._words, dtype=np.uint64)
        self._tmp = np.zeros(self._words, dtype=np.uint64)

    def add(self, mup: Pattern) -> None:
        """Register a newly discovered MUP (idempotent for duplicates)."""
        if len(mup) != len(self._cardinalities):
            raise PatternError(
                f"pattern of length {len(mup)} in a "
                f"{len(self._cardinalities)}-attribute index"
            )
        if mup in self._column_of:
            return
        if self._size == self._words * 64:
            self._grow()
        column = self._size
        word, bit = divmod(column, 64)
        flag = np.uint64(1 << bit)
        for i, value in enumerate(mup):
            if value != X and not 0 <= value < self._cardinalities[i]:
                raise PatternError(f"value {value} out of range for attribute {i}")
            row = self._cardinalities[i] if value == X else value
            self._value_bits[i][row, word] |= flag
        self._full[word] |= flag
        self._mups.append(mup)
        self._column_of[mup] = column
        self._size += 1

    def extend(self, mups: Iterable[Pattern]) -> None:
        for mup in mups:
            self.add(mup)

    # ------------------------------------------------------------------
    # queries (Appendix B)
    # ------------------------------------------------------------------
    def _without_self(self, mask: np.ndarray, pattern: Pattern) -> np.ndarray:
        """Clear the pattern's own column so dominance stays strict."""
        column = self._column_of.get(pattern)
        if column is not None:
            word, bit = divmod(column, 64)
            mask[word] &= np.uint64((~(1 << bit)) & 0xFFFFFFFFFFFFFFFF)
        return mask

    def dominates_any(self, pattern: Pattern) -> bool:
        """True if ``pattern`` strictly dominates some stored MUP.

        AND together the value vectors of the deterministic elements of
        ``pattern``; a surviving column is a MUP agreeing with ``pattern``
        everywhere ``pattern`` is deterministic, i.e. dominated by it.
        """
        if self._size == 0:
            return False
        mask = self._mask
        np.copyto(mask, self._full)
        self._without_self(mask, pattern)
        for index in pattern.deterministic_indices():
            np.bitwise_and(mask, self._value_bits[index][pattern[index]], out=mask)
            if not mask.any():
                return False
        return bool(mask.any())

    def dominated_by_any(self, pattern: Pattern) -> bool:
        """True if some stored MUP strictly dominates ``pattern``.

        For ``X`` elements of ``pattern`` the MUP must have ``X`` too; for
        deterministic elements the MUP may carry the same value or ``X``
        (bitwise OR of the two vectors, per Appendix B).
        """
        if self._size == 0:
            return False
        mask = self._mask
        np.copyto(mask, self._full)
        self._without_self(mask, pattern)
        for index, value in enumerate(pattern):
            x_row = self._value_bits[index][self._cardinalities[index]]
            if value == X:
                np.bitwise_and(mask, x_row, out=mask)
            else:
                np.bitwise_or(self._value_bits[index][value], x_row, out=self._tmp)
                np.bitwise_and(mask, self._tmp, out=mask)
            if not mask.any():
                return False
        return bool(mask.any())

    def contains(self, pattern: Pattern) -> bool:
        """Exact membership test."""
        return pattern in self._column_of


def dominated_by_any_scan(mups: Sequence[Pattern], pattern: Pattern) -> bool:
    """Linear-scan reference for :meth:`MupDominanceIndex.dominated_by_any`.

    Used in tests and as the ablation baseline for Appendix B.
    """
    return any(m.dominates(pattern) for m in mups)


def dominates_any_scan(mups: Sequence[Pattern], pattern: Pattern) -> bool:
    """Linear-scan reference for :meth:`MupDominanceIndex.dominates_any`."""
    return any(pattern.dominates(m) for m in mups)
