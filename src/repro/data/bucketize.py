"""Bucketization of continuous / high-cardinality attributes (§II).

The paper handles continuous attributes by "putting similar values into the
same bucket".  These helpers turn a numeric column into integer bucket codes
plus human-readable bucket labels, ready to slot into a :class:`Schema`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError


def bucketize_thresholds(
    values: Sequence[float], thresholds: Sequence[float], labels: Sequence[str] = None
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize using explicit ascending ``thresholds``.

    A value lands in bucket ``k`` when ``thresholds[k-1] <= value <
    thresholds[k]``; there are ``len(thresholds) + 1`` buckets.  This is how
    the paper's COMPAS age attribute is encoded (under 20 / 20–39 / 40–59 /
    over 60).

    Returns:
        ``(codes, bucket_labels)`` where codes are ints in
        ``[0, len(thresholds)]``.
    """
    thresholds = list(thresholds)
    if thresholds != sorted(thresholds):
        raise DataError(f"thresholds must be ascending, got {thresholds}")
    if not thresholds:
        raise DataError("need at least one threshold")
    array = np.asarray(values, dtype=float)
    codes = np.searchsorted(thresholds, array, side="right").astype(np.int32)
    if labels is None:
        labels = []
        labels.append(f"<{thresholds[0]:g}")
        for low, high in zip(thresholds, thresholds[1:]):
            labels.append(f"[{low:g},{high:g})")
        labels.append(f">={thresholds[-1]:g}")
    else:
        labels = list(labels)
        if len(labels) != len(thresholds) + 1:
            raise DataError(
                f"{len(thresholds) + 1} buckets but {len(labels)} labels"
            )
    return codes, list(labels)


def bucketize_equal_width(
    values: Sequence[float], buckets: int
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize into ``buckets`` equal-width intervals over the data range."""
    if buckets < 2:
        raise DataError(f"need at least 2 buckets, got {buckets}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise DataError("cannot bucketize an empty column")
    low, high = float(array.min()), float(array.max())
    if low == high:
        # Degenerate constant column: everything in bucket 0.
        return np.zeros(len(array), dtype=np.int32), [f"[{low:g},{high:g}]"] + [
            "(empty)"
        ] * (buckets - 1)
    edges = np.linspace(low, high, buckets + 1)
    codes = np.clip(
        np.searchsorted(edges, array, side="right") - 1, 0, buckets - 1
    ).astype(np.int32)
    labels = [f"[{edges[k]:g},{edges[k + 1]:g})" for k in range(buckets)]
    return codes, labels


def bucketize_quantiles(
    values: Sequence[float], buckets: int
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize into ``buckets`` (approximately) equal-population buckets."""
    if buckets < 2:
        raise DataError(f"need at least 2 buckets, got {buckets}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise DataError("cannot bucketize an empty column")
    quantiles = np.quantile(array, np.linspace(0, 1, buckets + 1))
    # Collapse duplicate edges (heavy ties) so codes stay dense.
    edges = np.unique(quantiles)
    if len(edges) < 2:
        return np.zeros(len(array), dtype=np.int32), [f"[{edges[0]:g}]"]
    codes = np.clip(
        np.searchsorted(edges[1:-1], array, side="right"), 0, len(edges) - 2
    ).astype(np.int32)
    labels = [f"[{edges[k]:g},{edges[k + 1]:g})" for k in range(len(edges) - 1)]
    return codes, labels
