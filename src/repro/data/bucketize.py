"""Bucketization of continuous / high-cardinality attributes (§II).

The paper handles continuous attributes by "putting similar values into the
same bucket".  These helpers turn a numeric column into integer bucket codes
plus human-readable bucket labels, ready to slot into a :class:`Schema`.

All three bucketizers reject non-finite inputs (NaN, ±inf): NaN sorts after
every float, so ``np.searchsorted`` would silently drop NaN rows into the top
bucket and corrupt every coverage count downstream.  Bucket labels are
half-open ``[a,b)`` except the last, which is closed ``[a,b]`` because the
column maximum is included in it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError


def _finite_column(values: Sequence[float]) -> np.ndarray:
    """Normalize a numeric column, rejecting empty and non-finite input."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise DataError("cannot bucketize an empty column")
    if not np.isfinite(array).all():
        bad = array[~np.isfinite(array)]
        raise DataError(
            f"cannot bucketize non-finite values (found {bad[0]!r} at row "
            f"{int(np.flatnonzero(~np.isfinite(array))[0])}); drop or impute "
            "NaN/inf rows first"
        )
    return array


def _interval_labels(edges: Sequence[float]) -> List[str]:
    """Labels for consecutive ``edges`` intervals; the last one is closed
    because the column maximum belongs to it."""
    count = len(edges) - 1
    labels = [
        f"[{edges[k]:g},{edges[k + 1]:g})" for k in range(count - 1)
    ]
    labels.append(f"[{edges[count - 1]:g},{edges[count]:g}]")
    return labels


def bucketize_thresholds(
    values: Sequence[float],
    thresholds: Sequence[float],
    labels: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize using explicit strictly ascending ``thresholds``.

    A value lands in bucket ``k`` when ``thresholds[k-1] <= value <
    thresholds[k]``; there are ``len(thresholds) + 1`` buckets.  This is how
    the paper's COMPAS age attribute is encoded (under 20 / 20–39 / 40–59 /
    over 60).

    Returns:
        ``(codes, bucket_labels)`` where codes are ints in
        ``[0, len(thresholds)]``.
    """
    thresholds = [float(t) for t in thresholds]
    if not thresholds:
        raise DataError("need at least one threshold")
    if not all(np.isfinite(thresholds)):
        raise DataError(f"thresholds must be finite, got {thresholds}")
    if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
        # A duplicate threshold makes a zero-width bucket no value can land
        # in, so the code space would not be dense.
        raise DataError(
            f"thresholds must be strictly ascending, got {thresholds}"
        )
    array = _finite_column(values)
    codes = np.searchsorted(thresholds, array, side="right").astype(np.int32)
    if labels is None:
        labels = [f"<{thresholds[0]:g}"]
        for low, high in zip(thresholds, thresholds[1:]):
            labels.append(f"[{low:g},{high:g})")
        labels.append(f">={thresholds[-1]:g}")
    else:
        labels = list(labels)
        if len(labels) != len(thresholds) + 1:
            raise DataError(
                f"{len(thresholds) + 1} buckets but {len(labels)} labels"
            )
    return codes, list(labels)


def bucketize_equal_width(
    values: Sequence[float], buckets: int
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize into ``buckets`` equal-width intervals over the data range.

    A constant column collapses to a single bucket (cardinality 1) rather
    than padding out ``buckets`` labels: a :class:`Schema` built from the
    result would otherwise claim provably-empty values and inflate the
    pattern lattice.
    """
    if buckets < 2:
        raise DataError(f"need at least 2 buckets, got {buckets}")
    array = _finite_column(values)
    low, high = float(array.min()), float(array.max())
    if low == high:
        # Degenerate constant column: one real bucket, cardinality 1.
        return np.zeros(len(array), dtype=np.int32), [f"[{low:g},{high:g}]"]
    edges = np.linspace(low, high, buckets + 1)
    codes = np.clip(
        np.searchsorted(edges, array, side="right") - 1, 0, buckets - 1
    ).astype(np.int32)
    return codes, _interval_labels(edges)


def bucketize_quantiles(
    values: Sequence[float], buckets: int
) -> Tuple[np.ndarray, List[str]]:
    """Bucketize into ``buckets`` (approximately) equal-population buckets."""
    if buckets < 2:
        raise DataError(f"need at least 2 buckets, got {buckets}")
    array = _finite_column(values)
    quantiles = np.quantile(array, np.linspace(0, 1, buckets + 1))
    # Collapse duplicate edges (heavy ties) so codes stay dense.
    edges = np.unique(quantiles)
    if len(edges) < 2:
        return np.zeros(len(array), dtype=np.int32), [f"[{edges[0]:g}]"]
    codes = np.clip(
        np.searchsorted(edges[1:-1], array, side="right"), 0, len(edges) - 2
    ).astype(np.int32)
    return codes, _interval_labels(edges)
