"""Seeded simulator of the ProPublica COMPAS dataset (§V-B).

The real download is unavailable offline, so this module generates a dataset
with the exact schema the paper uses — sex (2), age (4), race (4),
marital status (7) — matching ProPublica's published marginals and the
coverage phenomena the paper reports:

* at τ=10 every single attribute value is covered but multi-attribute MUPs
  exist (the paper finds 65, concentrated at levels 2–4);
* widowed Hispanic individuals (pattern ``XX23``) are nearly absent;
* there are roughly 100 Hispanic women, enough to run the Figure 11
  train-with-{0,20,40,60,80} experiment;
* a binary recidivism label whose signal *differs* for minority subgroups,
  so a model trained without those rows generalizes badly onto them.

See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import Dataset, Schema

SEX_LABELS = ("male", "female")
AGE_LABELS = ("<20", "20-39", "40-59", ">=60")
RACE_LABELS = ("african-american", "caucasian", "hispanic", "other")
MARITAL_LABELS = (
    "single",
    "married",
    "separated",
    "widowed",
    "significant-other",
    "divorced",
    "unknown",
)

COMPAS_SCHEMA = Schema.of(
    ["sex", "age", "race", "marital_status"],
    [2, 4, 4, 7],
    [SEX_LABELS, AGE_LABELS, RACE_LABELS, MARITAL_LABELS],
)

# Marginals follow ProPublica's published demographics for the COMPAS cohort.
_SEX_P = np.array([0.81, 0.19])
_AGE_P = np.array([0.04, 0.57, 0.33, 0.06])
_RACE_P = np.array([0.51, 0.34, 0.08, 0.07])
_MARITAL_P = np.array([0.75, 0.10, 0.03, 0.01, 0.04, 0.06, 0.01])


def _recidivism_probability(rows: np.ndarray) -> np.ndarray:
    """Subgroup-dependent recidivism probability.

    The base signal rewards youth and single marital status; minority
    subgroups get *reversed or shifted* signals so that a tree trained
    without them mispredicts them — the mechanism behind Figure 11 and the
    paper's widowed-Hispanic anecdote (both matching rows re-offended).
    """
    sex, age, race, marital = rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3]
    young = age <= 1
    single = marital == 0
    # Strong stratum probabilities so the majority behaviour is learnable
    # (a model on the majority tops out around the paper's 0.76 accuracy).
    probability = np.select(
        [young & single, young & ~single, ~young & single],
        [0.85, 0.65, 0.35],
        default=0.15,
    )
    # Minority subgroups deviate from the majority trend; the deviation
    # calibrates how badly a model trained without them scores
    # (paper: HF < 0.5 and climbing with data, FO = 0.39, MO = 0.59).
    hispanic_female = (race == 2) & (sex == 1)
    other_female = (race == 3) & (sex == 1)
    # Hispanic women follow a fine-grained (age x marital) rule that is
    # uncorrelated with the majority trend: a tree needs examples in each
    # cell to learn it, so accuracy climbs gradually as rows are added.
    hf_signal = (age + marital) % 2 == 1
    probability = np.where(
        hispanic_female, np.where(hf_signal, 0.85, 0.15), probability
    )
    # Other-race women reverse the trend exactly where their population
    # mass sits (young singles); other-race men follow the majority trend
    # but skew old, so the FO-trained race branch still predicts most of
    # them correctly.  This reproduces the paper's asymmetry: accuracy 0.39
    # for FO vs 0.59 for MO when each is excluded from training.
    probability = np.where(
        other_female & young & single, 1.0 - probability, probability
    )
    # Widowed Hispanics always re-offended in the paper's data.
    widowed_hispanic = (race == 2) & (marital == 3)
    probability = np.where(widowed_hispanic, 0.98, probability)
    return np.clip(probability, 0.02, 0.98)


def load_compas(n: int = 6889, seed: int = 42) -> Dataset:
    """Generate the COMPAS-like dataset.

    Args:
        n: number of individuals (paper: 6,889).
        seed: RNG seed; the default reproduces all documented experiments.

    Returns:
        A :class:`Dataset` over (sex, age, race, marital_status) with a
        binary ``reoffended`` label column.
    """
    rng = np.random.default_rng(seed)
    sex = rng.choice(2, size=n, p=_SEX_P)
    age = rng.choice(4, size=n, p=_AGE_P)
    race = rng.choice(4, size=n, p=_RACE_P)
    marital = rng.choice(7, size=n, p=_MARITAL_P)

    # Correlations that carve out uncovered regions: under-20s are almost
    # always single; widowhood concentrates in the oldest band; the
    # "unknown" marital status is rare everywhere.
    young = age == 0
    marital = np.where(young & (rng.uniform(size=n) < 0.97), 0, marital)
    old = age == 3
    widow_boost = old & (rng.uniform(size=n) < 0.15)
    marital = np.where(widow_boost, 3, marital)

    # Subgroup composition shifts that drive the §V-B2 asymmetries:
    # other-race women concentrate in the young-single cell (where their
    # label rule deviates), other-race men skew older, and Hispanic women
    # spread uniformly over (age, marital) so a classifier needs many of
    # them before it has seen every cell of their label rule.
    shift = rng.uniform(size=n)
    fo_mask = (sex == 1) & (race == 3)
    mo_mask = (sex == 0) & (race == 3)
    hf_mask0 = (sex == 1) & (race == 2)
    age = np.where(fo_mask & (shift < 0.55), 1, age)
    marital = np.where(fo_mask & (shift < 0.55), 0, marital)
    age = np.where(mo_mask & (shift < 0.5) & (age <= 1), 2, age)
    age = np.where(hf_mask0, rng.integers(0, 4, size=n), age)
    marital = np.where(hf_mask0, rng.integers(0, 6, size=n), marital)

    rows = np.column_stack([sex, age, race, marital]).astype(np.int32)

    # Pin the count of Hispanic women to ~100 (the paper's HF subgroup) by
    # rewriting surplus/shortfall rows drawn from the majority group.
    hf_mask = (rows[:, 0] == 1) & (rows[:, 2] == 2)
    target_hf = min(100, n // 10) if n < 1000 else 100
    current = int(hf_mask.sum())
    if current > target_hf:
        surplus = np.nonzero(hf_mask)[0][target_hf:]
        rows[surplus, 2] = 0  # reassign to the majority race
    elif current < target_hf:
        majority = np.nonzero((rows[:, 0] == 0) & (rows[:, 2] == 0))[0]
        take = majority[: target_hf - current]
        rows[take, 0] = 1
        rows[take, 2] = 2

    # Make widowed Hispanics nearly absent (exactly 2 rows, as in the paper,
    # when the dataset is big enough) — the paper's XX23 anecdote.
    wh_mask = (rows[:, 2] == 2) & (rows[:, 3] == 3)
    wh_rows = np.nonzero(wh_mask)[0]
    keep = 2 if n >= 1000 else min(2, len(wh_rows))
    for index in wh_rows[keep:]:
        rows[index, 3] = 0
    if len(wh_rows) < keep and n >= 1000:
        hispanic = np.nonzero((rows[:, 2] == 2) & (rows[:, 3] != 3))[0]
        for index in hispanic[: keep - len(wh_rows)]:
            rows[index, 3] = 3

    label = (rng.uniform(size=n) < _recidivism_probability(rows)).astype(np.int32)
    # The paper observes that both widowed-Hispanic rows re-offended.
    label[(rows[:, 2] == 2) & (rows[:, 3] == 3)] = 1

    return Dataset(COMPAS_SCHEMA, rows, labels={"reoffended": label})


def hispanic_female_split(
    dataset: Dataset, test_size: int = 20, seed: int = 7
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index split used by the Figure 11 experiment.

    Returns ``(hf_test, hf_train_pool, rest)`` row-index arrays: a fixed
    random test set of ``test_size`` Hispanic women, the remaining Hispanic
    women (the pool the experiment adds back in increments of 20), and all
    non-HF rows.
    """
    rows = dataset.rows
    hf = np.nonzero((rows[:, 0] == 1) & (rows[:, 2] == 2))[0]
    rest = np.nonzero(~((rows[:, 0] == 1) & (rows[:, 2] == 2)))[0]
    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(hf)
    return shuffled[:test_size], shuffled[test_size:], rest
