"""Coverage-preserving subsampling.

The paper (§VI) distinguishes coverage from classical sampling — but once
coverage is understood, it *informs* sampling: when shrinking a dataset
(for labeling budgets, sharing, or fast experimentation), a uniform sample
can destroy coverage of small subgroups, while keeping up to ``τ`` copies
of every distinct value combination preserves it exactly.

Formally, for any pattern ``P`` with ``cov(P) ≥ τ`` in the original data,
the quota-τ sample satisfies ``cov(P) ≥ τ`` as well: either some matching
combination kept τ copies on its own, or every matching combination was
kept in full.  Uncovered patterns can only lose coverage.  Hence the MUP
set at threshold τ is *identical* before and after (a property test pins
this down).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError


def coverage_preserving_sample(
    dataset: Dataset,
    threshold: int,
    max_size: Optional[int] = None,
    seed: int = 0,
) -> Dataset:
    """Subsample keeping at most ``threshold`` copies per value combination.

    Args:
        dataset: the dataset to shrink.
        threshold: the coverage threshold τ whose MUP set must be preserved.
        max_size: optional hard budget; when the quota sample alone exceeds
            it the function refuses (shrinking further would break the
            guarantee) and reports the required size.
        seed: RNG seed for choosing which duplicate rows to keep.

    Returns:
        A new :class:`Dataset` with the same schema (labels follow the
        selected rows).
    """
    if threshold < 1:
        raise DataError(f"threshold must be >= 1, got {threshold}")
    if dataset.n == 0:
        return dataset.take(np.arange(0))

    rng = np.random.default_rng(seed)
    # Group row indices by unique combination.
    order = np.lexsort(dataset.rows.T[::-1])
    sorted_rows = dataset.rows[order]
    boundaries = np.nonzero(np.any(np.diff(sorted_rows, axis=0) != 0, axis=1))[0] + 1
    groups = np.split(order, boundaries)

    kept = []
    for group in groups:
        if len(group) <= threshold:
            kept.extend(group.tolist())
        else:
            chosen = rng.choice(group, size=threshold, replace=False)
            kept.extend(chosen.tolist())
    if max_size is not None and len(kept) > max_size:
        raise DataError(
            f"preserving coverage at τ={threshold} needs {len(kept)} rows, "
            f"over the budget of {max_size}; raise the budget or lower τ"
        )
    kept.sort()
    return dataset.take(kept)


def bootstrap_resample(dataset: Dataset, seed=0) -> Dataset:
    """One bootstrap replicate: ``n`` rows drawn with replacement.

    The coverage-sensitivity machinery (:mod:`repro.analysis.sweep`) reruns
    MUP identification on replicates to measure how stable each MUP is
    under resampling noise.  Indices are sorted so the replicate's row
    order (and therefore its content fingerprint) is deterministic in the
    seed; labels follow the selected rows.

    Args:
        dataset: the dataset to resample.
        seed: anything :func:`numpy.random.default_rng` accepts — an int,
            or a sequence like ``[base_seed, replicate_index]`` for
            derived per-replicate streams.
    """
    if dataset.n == 0:
        return dataset.take(np.arange(0))
    rng = np.random.default_rng(seed)
    chosen = rng.integers(0, dataset.n, size=dataset.n)
    chosen.sort()
    return dataset.take(chosen)


def sample_size_required(dataset: Dataset, threshold: int) -> int:
    """Rows the quota-τ sample would keep: ``Σ min(count_c, τ)``."""
    if threshold < 1:
        raise DataError(f"threshold must be >= 1, got {threshold}")
    _unique, counts = dataset.unique_rows()
    return int(np.minimum(counts, threshold).sum())
