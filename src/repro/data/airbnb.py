"""Seeded simulator of the AirBnB listings dataset (§V-A).

The paper uses ~2M listings with 41 attributes, 36 of which are boolean
amenity flags (TV, internet, washer, dryer, ...); performance experiments
project down to 5–35 of the boolean attributes.  The crawl is unavailable
offline, so this module generates listings whose boolean amenities have
realistic, heterogeneous base rates and are positively correlated through a
latent listing-quality factor — the property that makes large corners of the
amenity cube empty and produces the bell-shaped MUP level distribution of
Figure 6.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError

AMENITY_NAMES = (
    "tv", "internet", "wifi", "air_conditioning", "kitchen", "heating",
    "washer", "dryer", "smoke_detector", "carbon_monoxide_detector",
    "first_aid_kit", "fire_extinguisher", "essentials", "shampoo",
    "hangers", "hair_dryer", "iron", "laptop_friendly", "self_checkin",
    "lockbox", "private_entrance", "hot_water", "bed_linens",
    "extra_pillows", "microwave", "coffee_maker", "refrigerator",
    "dishwasher", "dishes", "cooking_basics", "oven", "stove",
    "free_parking", "paid_parking", "elevator", "gym",
)

CATEGORICAL_NAMES = ("room_type", "property_type", "bed_type", "cancellation", "city")
CATEGORICAL_CARDINALITIES = (3, 6, 5, 5, 10)

# Base adoption rates: common amenities near 0.9, niche ones near 0.05,
# spread in between (fixed, so runs are reproducible across machines).
_BASE_RATES = np.array(
    [
        0.92, 0.95, 0.96, 0.55, 0.85, 0.90, 0.60, 0.55, 0.88, 0.70,
        0.45, 0.50, 0.93, 0.75, 0.80, 0.72, 0.68, 0.40, 0.30, 0.18,
        0.35, 0.90, 0.65, 0.55, 0.50, 0.60, 0.62, 0.20, 0.58, 0.52,
        0.38, 0.42, 0.48, 0.15, 0.25, 0.12,
    ]
)

_QUALITY_WEIGHT = 0.55  # strength of the latent listing-quality correlation


def load_airbnb(
    n: int = 100_000,
    d: int = 15,
    seed: int = 11,
    attributes: Optional[Sequence[str]] = None,
) -> Dataset:
    """Generate an AirBnB-like dataset of boolean amenities.

    Args:
        n: number of listings (paper default 1M; our benches default lower).
        d: number of boolean amenity attributes to keep (≤ 36), matching the
            paper's dimension sweeps.  Ignored when ``attributes`` is given.
        seed: RNG seed.
        attributes: explicit amenity names to keep, in order.

    Returns:
        A label-free :class:`Dataset` of ``d`` binary attributes.
    """
    if attributes is None:
        if not 1 <= d <= len(AMENITY_NAMES):
            raise DataError(f"d must be in [1, {len(AMENITY_NAMES)}], got {d}")
        attributes = AMENITY_NAMES[:d]
    indices = []
    for name in attributes:
        if name not in AMENITY_NAMES:
            raise DataError(f"unknown amenity {name!r}")
        indices.append(AMENITY_NAMES.index(name))
    rng = np.random.default_rng(seed)
    quality = rng.beta(2.0, 2.0, size=(n, 1))
    rates = _BASE_RATES[indices][None, :]
    probabilities = np.clip(
        (1.0 - _QUALITY_WEIGHT) * rates + _QUALITY_WEIGHT * (rates * 2.0 * quality),
        0.01,
        0.99,
    )
    rows = (rng.uniform(size=(n, len(indices))) < probabilities).astype(np.int32)
    schema = Schema.of(list(attributes), [2] * len(indices))
    return Dataset(schema, rows)


def load_airbnb_full(n: int = 100_000, seed: int = 11) -> Dataset:
    """Generate the full 41-attribute listing table (36 boolean + 5 categorical).

    The performance experiments only use the boolean attributes, but the
    full table exercises mixed cardinalities (examples and tests use it).
    """
    boolean_part = load_airbnb(n=n, d=len(AMENITY_NAMES), seed=seed)
    rng = np.random.default_rng(seed + 1)
    categorical_columns = []
    for cardinality in CATEGORICAL_CARDINALITIES:
        weights = np.exp(-0.6 * np.arange(cardinality))
        weights /= weights.sum()
        categorical_columns.append(rng.choice(cardinality, size=n, p=weights))
    rows = np.column_stack([boolean_part.rows] + categorical_columns).astype(np.int32)
    schema = Schema.of(
        list(AMENITY_NAMES) + list(CATEGORICAL_NAMES),
        [2] * len(AMENITY_NAMES) + list(CATEGORICAL_CARDINALITIES),
    )
    return Dataset(schema, rows)
