"""Seeded simulator of the BlueNile diamond catalog (§V-A).

The paper's catalog has 116,300 diamonds over 7 categorical attributes —
shape, cut, color, clarity, polish, symmetry, fluorescence — with
cardinalities 10, 4, 7, 8, 3, 3, 5.  Figure 13's point is that the *high
cardinalities* blow up the bottom of the pattern graph (its lowest level has
>100K nodes), hurting the bottom-up PATTERN-COMBINER; the simulator
reproduces the exact cardinalities and a realistic retail skew (round shapes
and mid-grade qualities dominate; poor grades are rare).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, Schema

SHAPE_LABELS = (
    "round", "princess", "cushion", "oval", "emerald",
    "pear", "asscher", "marquise", "radiant", "heart",
)
CUT_LABELS = ("good", "very-good", "ideal", "astor-ideal")
COLOR_LABELS = ("D", "E", "F", "G", "H", "I", "J")
CLARITY_LABELS = ("FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2")
POLISH_LABELS = ("good", "very-good", "excellent")
SYMMETRY_LABELS = ("good", "very-good", "excellent")
FLUOR_LABELS = ("none", "faint", "medium", "strong", "very-strong")

BLUENILE_SCHEMA = Schema.of(
    ["shape", "cut", "color", "clarity", "polish", "symmetry", "fluorescence"],
    [10, 4, 7, 8, 3, 3, 5],
    [
        SHAPE_LABELS, CUT_LABELS, COLOR_LABELS, CLARITY_LABELS,
        POLISH_LABELS, SYMMETRY_LABELS, FLUOR_LABELS,
    ],
)

# Retail-skewed marginals (fixed for reproducibility).
_SHAPE_P = np.array([0.45, 0.09, 0.08, 0.08, 0.07, 0.06, 0.05, 0.05, 0.04, 0.03])
_CUT_P = np.array([0.10, 0.30, 0.50, 0.10])
_COLOR_P = np.array([0.08, 0.12, 0.16, 0.20, 0.18, 0.15, 0.11])
_CLARITY_P = np.array([0.01, 0.04, 0.07, 0.10, 0.18, 0.22, 0.22, 0.16])
_POLISH_P = np.array([0.05, 0.30, 0.65])
_SYMMETRY_P = np.array([0.07, 0.33, 0.60])
_FLUOR_P = np.array([0.62, 0.18, 0.12, 0.06, 0.02])


def load_bluenile(n: int = 116_300, seed: int = 23) -> Dataset:
    """Generate the BlueNile-like diamond catalog.

    Quality attributes are positively correlated (a stone with an ideal cut
    tends to have excellent polish/symmetry), which empties the
    "high cut / poor finish" corners of the cube exactly the way a real
    curated catalog does.
    """
    rng = np.random.default_rng(seed)
    shape = rng.choice(10, size=n, p=_SHAPE_P)
    cut = rng.choice(4, size=n, p=_CUT_P)
    color = rng.choice(7, size=n, p=_COLOR_P)
    clarity = rng.choice(8, size=n, p=_CLARITY_P)
    polish = rng.choice(3, size=n, p=_POLISH_P)
    symmetry = rng.choice(3, size=n, p=_SYMMETRY_P)
    fluorescence = rng.choice(5, size=n, p=_FLUOR_P)

    # Correlate finish grades with cut grade: top cuts rarely ship with
    # merely "good" polish or symmetry.
    top_cut = cut >= 2
    upgrade = rng.uniform(size=n) < 0.8
    polish = np.where(top_cut & upgrade & (polish == 0), 2, polish)
    symmetry = np.where(top_cut & upgrade & (symmetry == 0), 2, symmetry)

    rows = np.column_stack(
        [shape, cut, color, clarity, polish, symmetry, fluorescence]
    ).astype(np.int32)
    return Dataset(BLUENILE_SCHEMA, rows)
