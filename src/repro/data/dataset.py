"""The categorical dataset substrate every algorithm in the paper runs on.

The paper (§II) considers a dataset ``D`` over ``d`` low-dimensional
categorical attributes with cardinalities ``c_1..c_d``; label attributes may
ride along but are excluded from coverage analysis.  :class:`Schema`
describes the attributes of interest and :class:`Dataset` holds the encoded
rows (integers in ``[0, c_i)``) together with optional label columns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util import product_int
from repro.exceptions import DataError, SchemaError


@dataclass(frozen=True)
class Schema:
    """Describes the attributes of interest of a dataset.

    Attributes:
        names: one name per attribute.
        cardinalities: number of distinct values ``c_i`` per attribute.
        value_labels: optional human-readable label per attribute value;
            when omitted, values display as their integer codes.
    """

    names: Tuple[str, ...]
    cardinalities: Tuple[int, ...]
    value_labels: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self) -> None:
        if len(self.names) != len(self.cardinalities):
            raise SchemaError(
                f"{len(self.names)} names but {len(self.cardinalities)} cardinalities"
            )
        if len(set(self.names)) != len(self.names):
            raise SchemaError(f"duplicate attribute names in {self.names}")
        for name, cardinality in zip(self.names, self.cardinalities):
            if cardinality < 1:
                raise SchemaError(f"attribute {name!r} has cardinality {cardinality} < 1")
        if self.value_labels is not None:
            if len(self.value_labels) != len(self.names):
                raise SchemaError("value_labels must have one entry per attribute")
            for name, cardinality, labels in zip(
                self.names, self.cardinalities, self.value_labels
            ):
                if len(labels) != cardinality:
                    raise SchemaError(
                        f"attribute {name!r} has {cardinality} values but "
                        f"{len(labels)} labels"
                    )

    @classmethod
    def of(
        cls,
        names: Sequence[str],
        cardinalities: Sequence[int],
        value_labels: Optional[Sequence[Sequence[str]]] = None,
    ) -> "Schema":
        """Build a schema from plain sequences."""
        labels = (
            tuple(tuple(per_attr) for per_attr in value_labels)
            if value_labels is not None
            else None
        )
        return cls(tuple(names), tuple(int(c) for c in cardinalities), labels)

    @classmethod
    def binary(cls, d: int, prefix: str = "A") -> "Schema":
        """A schema of ``d`` binary attributes named ``A1..Ad`` (paper style)."""
        return cls.of([f"{prefix}{i + 1}" for i in range(d)], [2] * d)

    @property
    def d(self) -> int:
        """Number of attributes of interest."""
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self.names.index(name)
        except ValueError:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}") from None

    def value_label(self, attribute: int, value: int) -> str:
        """Human-readable label for ``value`` of attribute ``attribute``."""
        if self.value_labels is None:
            return str(value)
        return self.value_labels[attribute][value]

    def combination_count(self, attributes: Optional[Iterable[int]] = None) -> int:
        """Number of full value combinations over the given attributes.

        With no argument this is the paper's ``Π c_k`` over all attributes.
        """
        if attributes is None:
            return product_int(self.cardinalities)
        return product_int(self.cardinalities[i] for i in attributes)

    def pattern_count(self) -> int:
        """Total number of patterns ``Π (c_k + 1)`` (§III-A)."""
        return product_int(c + 1 for c in self.cardinalities)

    def project(self, attributes: Sequence[int]) -> "Schema":
        """Schema restricted to the given attribute positions, in order."""
        labels = (
            tuple(self.value_labels[i] for i in attributes)
            if self.value_labels is not None
            else None
        )
        return Schema(
            tuple(self.names[i] for i in attributes),
            tuple(self.cardinalities[i] for i in attributes),
            labels,
        )


class Dataset:
    """An encoded categorical dataset plus optional label columns.

    Rows are stored as an ``(n, d)`` integer array; every value must lie in
    ``[0, c_i)`` for its attribute.  Labels (the paper's ``Y`` attributes,
    §II) are stored separately and never participate in coverage.
    """

    def __init__(
        self,
        schema: Schema,
        rows: np.ndarray,
        labels: Optional[Mapping[str, np.ndarray]] = None,
        validate: bool = True,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int32)
        if rows.ndim != 2 or rows.shape[1] != schema.d:
            raise DataError(
                f"rows must be (n, {schema.d}); got shape {rows.shape}"
            )
        self._schema = schema
        self._rows = rows
        self._labels: Dict[str, np.ndarray] = {}
        if labels:
            for name, column in labels.items():
                column = np.asarray(column)
                if column.shape[0] != rows.shape[0]:
                    raise DataError(
                        f"label {name!r} has {column.shape[0]} entries for "
                        f"{rows.shape[0]} rows"
                    )
                self._labels[name] = column
        if validate and rows.size:
            lower = rows.min(axis=0)
            upper = rows.max(axis=0)
            for i, (low, high) in enumerate(zip(lower, upper)):
                if low < 0 or high >= schema.cardinalities[i]:
                    raise DataError(
                        f"attribute {schema.names[i]!r} has values in "
                        f"[{low}, {high}] outside [0, {schema.cardinalities[i]})"
                    )
        self._unique_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._inverse_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[int]],
        schema: Optional[Schema] = None,
        names: Optional[Sequence[str]] = None,
        cardinalities: Optional[Sequence[int]] = None,
    ) -> "Dataset":
        """Build a dataset from an iterable of integer rows.

        When neither ``schema`` nor ``cardinalities`` is given, cardinalities
        are inferred as ``max + 1`` per column (at least 2, so a constant
        binary column stays binary).
        """
        array = np.asarray(list(rows), dtype=np.int32)
        if array.ndim == 1:
            array = array.reshape(0, 0) if array.size == 0 else array.reshape(1, -1)
        if schema is None:
            d = array.shape[1]
            if cardinalities is None:
                if array.size == 0:
                    raise DataError("cannot infer cardinalities from an empty dataset")
                cardinalities = [max(2, int(array[:, i].max()) + 1) for i in range(d)]
            if names is None:
                names = [f"A{i + 1}" for i in range(d)]
            schema = Schema.of(names, cardinalities)
        return cls(schema, array)

    @classmethod
    def from_strings(cls, rows: Iterable[str], schema: Optional[Schema] = None) -> "Dataset":
        """Build from strings like ``"010"`` (paper's compact examples).

        Only supports single-digit values, which covers all in-paper examples.
        """
        parsed = [[int(ch) for ch in row] for row in rows]
        return cls.from_rows(parsed, schema=schema)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> np.ndarray:
        """The encoded ``(n, d)`` rows (do not mutate)."""
        return self._rows

    @property
    def n(self) -> int:
        """Number of tuples in the dataset."""
        return self._rows.shape[0]

    @property
    def d(self) -> int:
        """Number of attributes of interest."""
        return self._schema.d

    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return self._schema.cardinalities

    @property
    def label_names(self) -> Tuple[str, ...]:
        return tuple(self._labels)

    def label(self, name: str) -> np.ndarray:
        """Return the label column ``name``."""
        if name not in self._labels:
            raise DataError(f"unknown label {name!r}; have {tuple(self._labels)}")
        return self._labels[name]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"Dataset(n={self.n}, d={self.d}, "
            f"cardinalities={self._schema.cardinalities})"
        )

    # ------------------------------------------------------------------
    # aggregation (Appendix A: work over unique value combinations)
    # ------------------------------------------------------------------
    def unique_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unique value combinations present in ``D`` plus multiplicities.

        Appendix A aggregates items with the same value combination so the
        inverted indices are built over distinct combinations only.
        Returns ``(unique (u, d) array, counts (u,) array)``; cached.
        """
        if self._unique_cache is None:
            if self.n == 0:
                self._unique_cache = (
                    np.zeros((0, self.d), dtype=np.int32),
                    np.zeros(0, dtype=np.int64),
                )
                self._inverse_cache = np.zeros(0, dtype=np.int64)
            else:
                # One full-row sort serves both the aggregation and the
                # row -> unique-index mapping.
                unique, inverse, counts = np.unique(
                    self._rows, axis=0, return_inverse=True, return_counts=True
                )
                self._unique_cache = (unique.astype(np.int32), counts.astype(np.int64))
                self._inverse_cache = inverse.astype(np.int64).reshape(-1)
        return self._unique_cache

    def unique_inverse(self) -> np.ndarray:
        """Index of each row's combination in :meth:`unique_rows` order.

        ``unique_rows()[0][unique_inverse()]`` reconstructs the rows; the
        sharded engine partitions rows by slicing this index.  Cached
        alongside :meth:`unique_rows` (one shared ``np.unique`` pass).
        """
        if self._inverse_cache is None:
            if self._unique_cache is not None:
                # The unique cache was primed externally, bypassing the
                # shared computation; derive the mapping on its own (the
                # priming contract guarantees the same sorted order).
                if self.n == 0:
                    self._inverse_cache = np.zeros(0, dtype=np.int64)
                else:
                    _, inverse = np.unique(
                        self._rows, axis=0, return_inverse=True
                    )
                    self._inverse_cache = inverse.astype(np.int64).reshape(-1)
            else:
                self.unique_rows()
        return self._inverse_cache

    def content_fingerprint(self) -> str:
        """Stable hex digest of the dataset's logical content.

        Hashes the schema cardinalities together with the (sorted) unique
        value combinations and their multiplicities, so two datasets with
        the same rows in any order fingerprint identically.  The out-of-core
        shard store records this in its manifest and refuses to attach a
        spill directory to a different dataset.
        """
        unique, counts = self.unique_rows()
        digest = hashlib.sha256()
        digest.update(np.asarray(self.cardinalities, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(unique, dtype=np.int32).tobytes())
        digest.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
        return digest.hexdigest()

    @property
    def unique_cache_ready(self) -> bool:
        """Whether :meth:`unique_rows` is already computed (or primed).

        Derived datasets (roll-ups, shards) can aggregate the parent's
        unique rows instead of re-sorting all ``n`` rows when this is set.
        """
        return self._unique_cache is not None

    def _prime_unique_cache(self, unique: np.ndarray, counts: np.ndarray) -> None:
        """Install a precomputed unique-row aggregation (trusted callers).

        The sharded engine partitions the global aggregation and hands each
        shard dataset its slice, so shard index construction skips the
        per-shard ``np.unique`` re-sort entirely.
        """
        self._unique_cache = (unique, counts)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence) -> "Dataset":
        """Dataset restricted to the given attributes (names or indices).

        Labels are carried along unchanged; this mirrors the paper's
        "attributes of interest" projection (§II).
        """
        indices = [
            self._schema.index_of(a) if isinstance(a, str) else int(a)
            for a in attributes
        ]
        for i in indices:
            if i < 0 or i >= self.d:
                raise DataError(f"attribute index {i} out of range [0, {self.d})")
        return Dataset(
            self._schema.project(indices),
            self._rows[:, indices],
            labels=self._labels,
            validate=False,
        )

    def sample(self, size: int, seed: int = 0) -> "Dataset":
        """Uniform sample without replacement of ``size`` rows."""
        if size > self.n:
            raise DataError(f"cannot sample {size} rows from {self.n}")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.n, size=size, replace=False)
        chosen.sort()
        return self.take(chosen)

    def take(self, indices: Sequence[int]) -> "Dataset":
        """Dataset consisting of the given row indices (labels follow)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            self._schema,
            self._rows[indices],
            labels={name: col[indices] for name, col in self._labels.items()},
            validate=False,
        )

    def head(self, size: int) -> "Dataset":
        """First ``size`` rows."""
        return self.take(np.arange(min(size, self.n)))

    def append_rows(self, new_rows: Iterable[Sequence[int]]) -> "Dataset":
        """Return a new dataset with ``new_rows`` appended (labels dropped).

        This models the paper's data acquisition step: collected value
        combinations become new tuples of ``D``.  Label columns are not
        meaningful for acquired rows, so the result carries none.
        """
        addition = np.asarray(list(new_rows), dtype=np.int32)
        if addition.size == 0:
            return Dataset(self._schema, self._rows.copy(), validate=False)
        if addition.ndim == 1:
            addition = addition.reshape(1, -1)
        if addition.shape[1] != self.d:
            raise DataError(
                f"appended rows have {addition.shape[1]} attributes, expected {self.d}"
            )
        combined = np.vstack([self._rows, addition])
        return Dataset(self._schema, combined)

    def mask(self, flags: np.ndarray) -> "Dataset":
        """Dataset of rows where ``flags`` is True."""
        flags = np.asarray(flags, dtype=bool)
        if flags.shape[0] != self.n:
            raise DataError(f"mask has {flags.shape[0]} entries for {self.n} rows")
        return self.take(np.nonzero(flags)[0])

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    def value_counts(self, attribute) -> List[int]:
        """Occurrences of each value of ``attribute`` (name or index)."""
        index = (
            self._schema.index_of(attribute)
            if isinstance(attribute, str)
            else int(attribute)
        )
        counts = np.bincount(
            self._rows[:, index], minlength=self._schema.cardinalities[index]
        )
        return [int(c) for c in counts]

    def describe(self) -> str:
        """A short plain-text summary of the dataset."""
        lines = [f"Dataset: n={self.n}, d={self.d}"]
        for i, name in enumerate(self._schema.names):
            counts = self.value_counts(i)
            parts = ", ".join(
                f"{self._schema.value_label(i, v)}={counts[v]}"
                for v in range(self._schema.cardinalities[i])
            )
            lines.append(f"  {name} (c={self._schema.cardinalities[i]}): {parts}")
        if self._labels:
            lines.append(f"  labels: {', '.join(self._labels)}")
        return "\n".join(lines)
