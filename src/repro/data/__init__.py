"""Dataset substrates: schema/dataset abstraction, bit vectors, bucketization,
and seeded generators standing in for the paper's three real datasets
(COMPAS, AirBnB, BlueNile) plus the adversarial constructions used in the
paper's proofs.
"""

from repro.data.bitset import BitVector
from repro.data.bucketize import bucketize_equal_width, bucketize_quantiles, bucketize_thresholds
from repro.data.dataset import Dataset, Schema
from repro.data.hierarchy import AttributeHierarchy, Rollup, drill_down, rollup
from repro.data.sampling import coverage_preserving_sample, sample_size_required
from repro.data.synthetic import (
    diagonal_dataset,
    random_categorical_dataset,
    vertex_cover_dataset,
)
from repro.data.airbnb import load_airbnb
from repro.data.bluenile import load_bluenile
from repro.data.compas import load_compas

__all__ = [
    "BitVector",
    "Dataset",
    "Schema",
    "AttributeHierarchy",
    "Rollup",
    "drill_down",
    "rollup",
    "coverage_preserving_sample",
    "sample_size_required",
    "bucketize_equal_width",
    "bucketize_quantiles",
    "bucketize_thresholds",
    "diagonal_dataset",
    "random_categorical_dataset",
    "vertex_cover_dataset",
    "load_airbnb",
    "load_bluenile",
    "load_compas",
]
