"""Synthetic dataset constructions used by the paper's proofs and our tests.

* :func:`diagonal_dataset` — the Theorem 1 construction whose MUP set is
  exponential in ``n``.
* :func:`vertex_cover_dataset` — the Theorem 2 reduction from vertex cover
  to the coverage enhancement problem.
* :func:`random_categorical_dataset` — seeded random data with controllable
  skew, the workhorse of property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError


def diagonal_dataset(n: int) -> Dataset:
    """The Theorem 1 construction: ``n`` items over ``n`` binary attributes.

    ``t_i[i] = 1`` and every other value is 0.  With threshold
    ``τ = n/2 + 1`` the dataset has ``n + C(n, n/2) > 2^n`` MUPs, which is
    the paper's proof that no polynomial algorithm can enumerate MUPs.
    """
    if n < 2:
        raise DataError(f"diagonal dataset needs n >= 2, got {n}")
    rows = np.eye(n, dtype=np.int32)
    return Dataset(Schema.binary(n), rows)


def diagonal_threshold(n: int) -> int:
    """The threshold ``τ = n/2 + 1`` used in the Theorem 1 proof."""
    return n // 2 + 1


def vertex_cover_dataset(edges: Sequence[Tuple[int, int]], num_vertices: int) -> Dataset:
    """The Theorem 2 reduction from vertex cover to coverage enhancement.

    Builds a dataset with ``|V| + 3`` items over ``|E|`` binary attributes:
    item ``t_i`` has 1 exactly on the attributes of edges incident to vertex
    ``i``, and three all-zero items are appended.  With ``τ = 3`` and
    ``λ = 1`` the MUPs are exactly the per-edge single-1 patterns, and an
    optimal enhancement corresponds to a minimum vertex cover.

    Args:
        edges: edge list as ``(u, v)`` pairs of 0-based vertex ids.
        num_vertices: ``|V|``.
    """
    if num_vertices < 1:
        raise DataError("need at least one vertex")
    if not edges:
        raise DataError("need at least one edge")
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise DataError(f"edge ({u}, {v}) out of range for {num_vertices} vertices")
        if u == v:
            raise DataError(f"self-loop ({u}, {v}) not allowed")
    num_edges = len(edges)
    rows = np.zeros((num_vertices + 3, num_edges), dtype=np.int32)
    for j, (u, v) in enumerate(edges):
        rows[u, j] = 1
        rows[v, j] = 1
    schema = Schema.of([f"e{j + 1}" for j in range(num_edges)], [2] * num_edges)
    return Dataset(schema, rows)


VERTEX_COVER_THRESHOLD = 3
VERTEX_COVER_LEVEL = 1


def random_categorical_dataset(
    n: int,
    cardinalities: Sequence[int],
    seed: int = 0,
    skew: float = 0.0,
    names: Optional[Sequence[str]] = None,
) -> Dataset:
    """Seeded random categorical data with optional per-attribute skew.

    Args:
        n: number of rows.
        cardinalities: per-attribute cardinalities.
        seed: RNG seed.
        skew: 0 gives uniform values; larger values concentrate probability
            on low codes via a geometric-like profile, which is what creates
            uncovered regions in realistic data.
        names: optional attribute names.
    """
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    columns = []
    for cardinality in cardinalities:
        if skew <= 0:
            weights = np.ones(cardinality)
        else:
            weights = np.exp(-skew * np.arange(cardinality))
        weights = weights / weights.sum()
        columns.append(rng.choice(cardinality, size=n, p=weights))
    rows = (
        np.column_stack(columns).astype(np.int32)
        if columns
        else np.zeros((n, 0), dtype=np.int32)
    )
    schema = Schema.of(
        names if names is not None else [f"A{i + 1}" for i in range(len(cardinalities))],
        cardinalities,
    )
    return Dataset(schema, rows)


def correlated_binary_dataset(
    n: int,
    d: int,
    seed: int = 0,
    base_rates: Optional[Iterable[float]] = None,
    correlation: float = 0.5,
) -> Dataset:
    """Binary data correlated through a single latent factor.

    Each row draws a latent ``z ~ U(0, 1)``; attribute ``i`` fires with
    probability ``(1 - correlation) * p_i + correlation * z``.  Correlation
    concentrates mass on "all amenities" / "no amenities" corners, which is
    how real listing data (AirBnB) produces large uncovered regions.
    """
    if d < 1:
        raise DataError(f"d must be >= 1, got {d}")
    if not 0.0 <= correlation <= 1.0:
        raise DataError(f"correlation must be in [0, 1], got {correlation}")
    rng = np.random.default_rng(seed)
    if base_rates is None:
        rates = rng.uniform(0.05, 0.95, size=d)
    else:
        rates = np.asarray(list(base_rates), dtype=float)
        if rates.shape[0] != d:
            raise DataError(f"{rates.shape[0]} base rates for d={d}")
    latent = rng.uniform(0.0, 1.0, size=(n, 1))
    probabilities = (1.0 - correlation) * rates[None, :] + correlation * latent
    rows = (rng.uniform(size=(n, d)) < probabilities).astype(np.int32)
    return Dataset(Schema.binary(d), rows)
