"""A growable bit vector with the operations Appendices A and B rely on.

The coverage oracle (Appendix A) and the MUP dominance index (Appendix B)
both reduce their queries to bitwise AND / OR / population-count over
per-attribute-value membership vectors.  :class:`BitVector` wraps a packed
``numpy`` ``uint64`` buffer and exposes exactly those operations, including
the word-by-word early-stop intersection test the paper describes
("terminating as soon as a 1 is observed in the results").
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

_WORD_BITS = 64


def _word_count(length: int) -> int:
    return (length + _WORD_BITS - 1) // _WORD_BITS


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count of a ``uint64`` array (any shape)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on old numpy
    #: bits-set lookup table for one uint16; four table reads cover a word.
    _POPCOUNT16 = np.array(
        [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
    )

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count of a ``uint64`` array (any shape)."""
        halves = _POPCOUNT16[words.view(np.uint16)]
        return halves.reshape(words.shape + (4,)).sum(axis=-1).astype(np.uint8)


def weighted_count(words: np.ndarray, counts) -> int:
    """Weighted population count of one flat ``uint64`` word array.

    ``counts`` is the padded per-bit multiplicity vector, or ``None`` when
    every multiplicity is 1 (pure popcount).  The single counting kernel
    shared by the packed, sharded, and out-of-core engines.
    """
    if words.size == 0:
        return 0
    if counts is None:
        return int(popcount_words(words).sum())
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    )
    return int(bits @ counts)


def weighted_count_rows(matrix: np.ndarray, counts) -> np.ndarray:
    """Weighted count of each row of a ``(k, W)`` ``uint64`` word matrix."""
    # Window slices are usually not C-contiguous, and the itemsize-changing
    # views below require contiguity.
    matrix = np.ascontiguousarray(matrix)
    if counts is None:
        return popcount_words(matrix).sum(axis=1, dtype=np.int64)
    if matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    bits = np.unpackbits(matrix.view(np.uint8), axis=1, bitorder="little")
    return bits @ counts


class BitVector:
    """Fixed-length packed bit vector backed by ``numpy.uint64`` words.

    Args:
        length: number of addressable bits.
        fill: initial value of every bit.
    """

    __slots__ = ("_length", "_words")

    def __init__(self, length: int, fill: bool = False) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._length = length
        self._words = np.full(
            _word_count(length),
            np.uint64(0xFFFFFFFFFFFFFFFF) if fill else np.uint64(0),
            dtype=np.uint64,
        )
        if fill:
            self._mask_tail()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector of ``length`` bits with the given positions set."""
        vector = cls(length)
        for index in indices:
            vector.set(index)
        return vector

    @classmethod
    def from_bool_array(cls, flags: np.ndarray) -> "BitVector":
        """Build from a 1-D boolean ``numpy`` array."""
        flags = np.asarray(flags, dtype=bool)
        vector = cls(len(flags))
        if len(flags) == 0:
            return vector
        packed = np.packbits(flags, bitorder="little")
        padded = np.zeros(_word_count(len(flags)) * 8, dtype=np.uint8)
        padded[: len(packed)] = packed
        vector._words = padded.view(np.uint64).copy()
        return vector

    def copy(self) -> "BitVector":
        clone = BitVector(self._length)
        clone._words = self._words.copy()
        return clone

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def _check_index(self, index: int) -> int:
        if index < 0 or index >= self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        return index

    def get(self, index: int) -> bool:
        """Return the value of bit ``index``."""
        self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        return bool((int(self._words[word]) >> offset) & 1)

    def set(self, index: int, value: bool = True) -> None:
        """Set bit ``index`` to ``value``."""
        self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        if value:
            self._words[word] |= np.uint64(1 << offset)
        else:
            self._words[word] &= np.uint64(~(1 << offset) & 0xFFFFFFFFFFFFFFFF)

    def _mask_tail(self) -> None:
        """Clear the padding bits beyond ``length`` in the last word."""
        remainder = self._length % _WORD_BITS
        if remainder and len(self._words):
            self._words[-1] &= np.uint64((1 << remainder) - 1)

    # ------------------------------------------------------------------
    # bulk bitwise operations
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise ValueError(
                f"bit vectors have different lengths: {self._length} vs {other._length}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._length)
        np.bitwise_and(self._words, other._words, out=result._words)
        return result

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._length)
        np.bitwise_or(self._words, other._words, out=result._words)
        return result

    def __invert__(self) -> "BitVector":
        result = BitVector(self._length)
        np.bitwise_not(self._words, out=result._words)
        result._mask_tail()
        return result

    def iand(self, other: "BitVector") -> "BitVector":
        """In-place AND; returns self for chaining."""
        self._check_compatible(other)
        np.bitwise_and(self._words, other._words, out=self._words)
        return self

    def ior(self, other: "BitVector") -> "BitVector":
        """In-place OR; returns self for chaining."""
        self._check_compatible(other)
        np.bitwise_or(self._words, other._words, out=self._words)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        """The packed ``uint64`` words (a view — treat as read-only).

        The coverage engines build their batched kernels directly on the
        word arrays; padding bits beyond ``length`` are always zero.
        """
        return self._words

    @classmethod
    def from_words(cls, length: int, words: np.ndarray) -> "BitVector":
        """Wrap an existing ``uint64`` word array (no copy; padding must be 0)."""
        if words.shape != (_word_count(length),):
            raise ValueError(
                f"need {_word_count(length)} words for {length} bits, "
                f"got shape {words.shape}"
            )
        vector = cls(0)
        vector._length = length
        vector._words = words
        return vector

    def count(self) -> int:
        """Population count (number of set bits), word-level (no unpacking)."""
        if self._length == 0:
            return 0
        return int(popcount_words(self._words).sum())

    def any(self) -> bool:
        """True if at least one bit is set (cheap word-level check)."""
        return bool(self._words.any())

    def intersects(self, other: "BitVector") -> bool:
        """Word-by-word early-stop intersection test (Appendix B).

        Stops as soon as one overlapping word is found instead of
        materializing the full AND.
        """
        self._check_compatible(other)
        a, b = self._words, other._words
        step = 1024  # words per chunk; early exit granularity
        for start in range(0, len(a), step):
            if np.bitwise_and(a[start : start + step], b[start : start + step]).any():
                return True
        return False

    def indices(self) -> Iterator[int]:
        """Yield the positions of all set bits in increasing order."""
        if self._length == 0:
            return
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        for index in np.nonzero(bits[: self._length])[0]:
            yield int(index)

    def to_bool_array(self) -> np.ndarray:
        """Return the bits as a boolean ``numpy`` array of ``length``."""
        if self._length == 0:
            return np.zeros(0, dtype=bool)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._length].astype(bool)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:  # pragma: no cover - BitVector is mutable
        raise TypeError("BitVector is mutable and unhashable")

    def __repr__(self) -> str:
        shown = "".join("1" if self.get(i) else "0" for i in range(min(self._length, 32)))
        suffix = "..." if self._length > 32 else ""
        return f"BitVector({self._length}, bits={shown}{suffix})"
