"""Realistic synthetic scenario families for benchmarks and fuzzing.

:func:`~repro.data.synthetic.random_categorical_dataset` draws every
attribute independently with at most a geometric skew — useful for
property tests, but real coverage workloads are nothing like it: value
frequencies are zipfian (a few huge head values, a long sparse tail),
columns are correlated (listing amenities, demographic attributes), and
the interesting datasets are the ones with *specific known holes*.  This
module generates those regimes deterministically:

* :func:`zipfian_dataset` — per-attribute zipf value frequencies, the
  sparse-categorical family whose tail combinations create realistic
  uncovered regions;
* :func:`zipfian_cardinalities` — schema shapes whose cardinalities are
  themselves zipf-distributed (one wide column, many narrow ones);
* :func:`correlated_dataset` — columns coupled through a latent factor,
  generalizing :func:`~repro.data.synthetic.correlated_binary_dataset`
  beyond binary attributes;
* :func:`planted_mup_dataset` — a dataset *constructed* so that a chosen
  set of patterns is guaranteed to appear in its MUP set at a chosen τ
  (known ground truth for equivalence and sweep tests);
* :func:`scenario_dataset` — one seeded dispatcher over the families, the
  entry point the fuzz harness and benchmark matrices draw from.

Everything is seeded and pure: the same arguments always produce the same
rows, so hypothesis cases shrink and benchmark runs reproduce.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError

#: Families :func:`scenario_dataset` dispatches over.
SCENARIO_FAMILIES = ("uniform", "zipf", "correlated")

#: Rejection-sampling budget per needed row in the planted construction.
_PLANT_ATTEMPTS = 256


def _schema_of(
    cardinalities: Sequence[int], names: Optional[Sequence[str]]
) -> Schema:
    return Schema.of(
        names
        if names is not None
        else [f"A{i + 1}" for i in range(len(cardinalities))],
        cardinalities,
    )


def zipfian_cardinalities(
    d: int, seed: int = 0, max_cardinality: int = 16
) -> Tuple[int, ...]:
    """A zipf-shaped schema: one wide attribute, a long tail of narrow ones.

    Cardinalities are drawn as ``max(2, max_cardinality / rank)`` with the
    rank order shuffled, so the wide column lands at a random position —
    the shape real tabular schemas (one city/category column next to many
    booleans) actually have.
    """
    if d < 1:
        raise DataError(f"d must be >= 1, got {d}")
    if max_cardinality < 2:
        raise DataError(
            f"max_cardinality must be >= 2, got {max_cardinality}"
        )
    rng = np.random.default_rng(seed)
    ranks = rng.permutation(d) + 1
    return tuple(max(2, int(round(max_cardinality / rank))) for rank in ranks)


def zipfian_dataset(
    n: int,
    cardinalities: Sequence[int],
    seed: int = 0,
    exponent: float = 1.1,
    names: Optional[Sequence[str]] = None,
) -> Dataset:
    """Sparse-categorical data: per-attribute zipf value frequencies.

    Value ``v`` of an attribute with cardinality ``c`` is drawn with
    probability ``∝ 1 / (v + 1)^exponent`` — a heavy head and a sparse
    tail, so most of the mass sits on a few combinations while tail-value
    conjunctions are rare or absent (the regime where MUPs live).

    Args:
        n: number of rows.
        cardinalities: per-attribute cardinalities.
        seed: RNG seed.
        exponent: zipf exponent; larger concentrates more mass on the head
            (0 degenerates to uniform).
        names: optional attribute names.
    """
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    if exponent < 0:
        raise DataError(f"exponent must be non-negative, got {exponent}")
    rng = np.random.default_rng(seed)
    columns = []
    for cardinality in cardinalities:
        weights = 1.0 / np.power(np.arange(1, cardinality + 1), exponent)
        weights /= weights.sum()
        columns.append(rng.choice(cardinality, size=n, p=weights))
    rows = (
        np.column_stack(columns).astype(np.int32)
        if columns
        else np.zeros((n, 0), dtype=np.int32)
    )
    return Dataset(_schema_of(cardinalities, names), rows)


def correlated_dataset(
    n: int,
    cardinalities: Sequence[int],
    seed: int = 0,
    correlation: float = 0.5,
    exponent: float = 1.1,
    names: Optional[Sequence[str]] = None,
) -> Dataset:
    """Zipf-skewed columns coupled through a single latent factor.

    Each row draws a latent ``z ~ U(0, 1)``; every attribute's value rank
    is then a mixture ``(1 - correlation) * u_i + correlation * z`` pushed
    through the attribute's zipf quantile map.  At ``correlation=1`` all
    columns move together (rows live near a diagonal, leaving huge
    uncovered off-diagonal regions); at ``0`` it reduces to
    :func:`zipfian_dataset`.
    """
    if not 0.0 <= correlation <= 1.0:
        raise DataError(
            f"correlation must be in [0, 1], got {correlation}"
        )
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    latent = rng.uniform(size=(n, 1))
    noise = rng.uniform(size=(n, len(cardinalities)))
    mixed = (1.0 - correlation) * noise + correlation * latent
    columns = []
    for j, cardinality in enumerate(cardinalities):
        weights = 1.0 / np.power(
            np.arange(1, cardinality + 1), exponent if exponent > 0 else 0.0
        )
        weights /= weights.sum()
        # Quantile map: the latent mixture picks a position on the zipf
        # CDF, so marginals stay zipf while ranks correlate across columns.
        edges = np.cumsum(weights)
        columns.append(
            np.searchsorted(edges, mixed[:, j], side="right").clip(
                0, cardinality - 1
            )
        )
    rows = (
        np.column_stack(columns).astype(np.int32)
        if columns
        else np.zeros((n, 0), dtype=np.int32)
    )
    return Dataset(_schema_of(cardinalities, names), rows)


def _matches_any(row: np.ndarray, patterns: Sequence[Pattern]) -> bool:
    return any(p.matches(row) for p in patterns)


def _coverage_of(rows: np.ndarray, pattern: Pattern) -> int:
    if not len(rows):
        return 0
    mask = np.ones(len(rows), dtype=bool)
    for index in pattern.deterministic_indices():
        mask &= rows[:, index] == pattern[index]
    return int(mask.sum())


def planted_mup_dataset(
    cardinalities: Sequence[int],
    planted: Sequence[Pattern],
    threshold: int,
    n: int = 200,
    seed: int = 0,
    exponent: float = 1.1,
    names: Optional[Sequence[str]] = None,
) -> Dataset:
    """A dataset whose MUP set at ``threshold`` provably contains ``planted``.

    Construction: draw a zipfian base, delete every row matching a planted
    pattern (their coverage drops to 0), then top every *parent* of every
    planted pattern up to ``threshold`` with rows that match the parent but
    no planted pattern.  Each planted pattern then has coverage 0 < τ with
    every parent covered — by monotonicity every higher ancestor is covered
    too — so it is exactly a MUP.  Other (incidental) MUPs may exist
    elsewhere in the graph; the guarantee is containment, not equality.

    Args:
        cardinalities: per-attribute cardinalities.
        planted: the patterns to plant as MUPs.  Each must specify at
            least one value, only on attributes of cardinality ≥ 2 (a
            cardinality-1 attribute forces ``cov(parent) = cov(pattern)``,
            which makes planting impossible), and no planted pattern may
            dominate another (the dominated one would have an uncovered
            ancestor).
        threshold: the τ at which the planted patterns are MUPs.
        n: base-row count before deletion/top-up.
        seed: RNG seed.
        exponent: zipf exponent of the base draw.
        names: optional attribute names.

    Raises:
        DataError: invalid planted set, or the planted patterns are so
            dense that some parent has no completion avoiding all of them.
    """
    if threshold < 1:
        raise DataError(f"threshold must be >= 1, got {threshold}")
    cardinalities = tuple(int(c) for c in cardinalities)
    d = len(cardinalities)
    planted = [Pattern(p) if not isinstance(p, Pattern) else p for p in planted]
    if not planted:
        raise DataError("need at least one planted pattern")
    for pattern in planted:
        if len(pattern) != d:
            raise DataError(
                f"planted pattern {pattern} has {len(pattern)} elements "
                f"for d={d}"
            )
        if pattern.level == 0:
            raise DataError("cannot plant the root pattern as a MUP")
        for index in pattern.deterministic_indices():
            if cardinalities[index] < 2:
                raise DataError(
                    f"planted pattern {pattern} specifies attribute "
                    f"{index} of cardinality 1; its parent could never be "
                    f"covered without covering the pattern itself"
                )
            if not 0 <= pattern[index] < cardinalities[index]:
                raise DataError(
                    f"planted pattern {pattern} value {pattern[index]} out "
                    f"of range for cardinality {cardinalities[index]}"
                )
    for first in planted:
        for second in planted:
            if first is not second and first.covers(second):
                raise DataError(
                    f"planted pattern {first} dominates {second}; the "
                    f"dominated pattern could never be a MUP"
                )

    rng = np.random.default_rng(seed)
    base = zipfian_dataset(
        n, cardinalities, seed=int(rng.integers(2**31)), exponent=exponent
    ).rows
    kept = [row for row in base if not _matches_any(row, planted)]
    rows = (
        np.asarray(kept, dtype=np.int32)
        if kept
        else np.zeros((0, d), dtype=np.int32)
    )

    additions = []
    for pattern in planted:
        for parent in pattern.parents():
            current = _coverage_of(rows, parent) + sum(
                1 for row in additions if parent.matches(row)
            )
            while current < threshold:
                row = _complete_parent(
                    parent, planted, cardinalities, rng
                )
                additions.append(row)
                current += 1
    if additions:
        rows = np.vstack([rows, np.asarray(additions, dtype=np.int32)])
    return Dataset(_schema_of(cardinalities, names), rows)


def _complete_parent(
    parent: Pattern,
    planted: Sequence[Pattern],
    cardinalities: Tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """One row matching ``parent`` but no planted pattern (rejection)."""
    d = len(cardinalities)
    for _ in range(_PLANT_ATTEMPTS):
        row = np.empty(d, dtype=np.int32)
        for index in range(d):
            if parent.is_deterministic(index):
                row[index] = parent[index]
            else:
                row[index] = rng.integers(cardinalities[index])
        if not _matches_any(row, planted):
            return row
    raise DataError(
        f"could not complete parent {parent} without matching a planted "
        f"pattern after {_PLANT_ATTEMPTS} attempts; the planted set covers "
        f"(nearly) every completion"
    )


def scenario_dataset(
    family: str,
    n: int,
    cardinalities: Sequence[int],
    seed: int = 0,
    skew: float = 1.1,
    correlation: float = 0.6,
    names: Optional[Sequence[str]] = None,
) -> Dataset:
    """Seeded dispatcher over the scenario families.

    ``family`` is one of :data:`SCENARIO_FAMILIES`: ``"uniform"`` (the
    legacy uniform-random regime, kept so differential suites still cover
    it), ``"zipf"`` (sparse skewed marginals), or ``"correlated"``
    (zipf marginals coupled through a latent factor).  ``skew`` maps to
    the zipf exponent where applicable.
    """
    if family == "uniform":
        return zipfian_dataset(
            n, cardinalities, seed=seed, exponent=0.0, names=names
        )
    if family == "zipf":
        return zipfian_dataset(
            n, cardinalities, seed=seed, exponent=skew, names=names
        )
    if family == "correlated":
        return correlated_dataset(
            n,
            cardinalities,
            seed=seed,
            correlation=correlation,
            exponent=skew,
            names=names,
        )
    raise DataError(
        f"unknown scenario family {family!r}; "
        f"available: {SCENARIO_FAMILIES}"
    )
