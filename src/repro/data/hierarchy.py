"""Attribute hierarchies and roll-ups (§II).

For attributes that are continuous or of high cardinality, the paper
suggests "considering the hierarchy of attributes in the data cube for
reducing the cardinalities": analyze coverage at a coarser granularity
(ZIP code → county → state), then drill into the uncovered regions.

:class:`AttributeHierarchy` maps fine-grained value codes to coarser
buckets with labels; :func:`rollup` applies hierarchies to a dataset and
returns the coarser dataset plus enough bookkeeping to translate patterns
back (:func:`drill_down`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import Pattern, X
from repro.data.dataset import Dataset, Schema
from repro.exceptions import DataError, SchemaError


@dataclass(frozen=True)
class AttributeHierarchy:
    """A surjective map from fine value codes onto coarser group codes.

    Attributes:
        attribute: the attribute name this hierarchy applies to.
        groups: per fine code, the coarse group code (length = fine
            cardinality; groups must be 0..g-1 with every group used).
        group_labels: optional label per coarse group.
    """

    attribute: str
    groups: Tuple[int, ...]
    group_labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise SchemaError(f"hierarchy for {self.attribute!r} has no mapping")
        used = sorted(set(self.groups))
        expected = list(range(len(used)))
        if used != expected:
            raise SchemaError(
                f"hierarchy for {self.attribute!r} must use dense group codes "
                f"0..g-1; got {used}"
            )
        if self.group_labels is not None and len(self.group_labels) != len(used):
            raise SchemaError(
                f"hierarchy for {self.attribute!r} has {len(used)} groups but "
                f"{len(self.group_labels)} labels"
            )

    @classmethod
    def of(
        cls,
        attribute: str,
        groups: Sequence[int],
        group_labels: Optional[Sequence[str]] = None,
    ) -> "AttributeHierarchy":
        return cls(
            attribute,
            tuple(int(g) for g in groups),
            tuple(group_labels) if group_labels is not None else None,
        )

    @classmethod
    def from_label_map(
        cls, schema: Schema, attribute: str, mapping: Mapping[str, str]
    ) -> "AttributeHierarchy":
        """Build from fine-label → coarse-label pairs.

        Example::

            AttributeHierarchy.from_label_map(schema, "state",
                {"MI": "midwest", "OH": "midwest", "CA": "west", ...})
        """
        index = schema.index_of(attribute)
        if schema.value_labels is None:
            raise SchemaError("schema has no value labels; use .of with codes")
        fine_labels = schema.value_labels[index]
        coarse_order: List[str] = []
        groups = []
        for label in fine_labels:
            if label not in mapping:
                raise SchemaError(f"hierarchy is missing fine value {label!r}")
            coarse = mapping[label]
            if coarse not in coarse_order:
                coarse_order.append(coarse)
            groups.append(coarse_order.index(coarse))
        return cls(attribute, tuple(groups), tuple(coarse_order))

    @property
    def coarse_cardinality(self) -> int:
        return len(set(self.groups))

    def fine_codes_of(self, group: int) -> Tuple[int, ...]:
        """All fine codes rolled into ``group``."""
        return tuple(i for i, g in enumerate(self.groups) if g == group)

    def compose(self, coarser: "AttributeHierarchy") -> "AttributeHierarchy":
        """Chain two maps: ``self`` (base → mid) then ``coarser`` (mid → top).

        The result maps the base codes straight to the top groups — the form
        :func:`rollup` consumes.
        """
        if len(coarser.groups) != self.coarse_cardinality:
            raise SchemaError(
                f"cannot compose hierarchies for {self.attribute!r}: the "
                f"coarser level maps {len(coarser.groups)} values but the "
                f"finer level produces {self.coarse_cardinality} groups"
            )
        return AttributeHierarchy(
            self.attribute,
            tuple(coarser.groups[g] for g in self.groups),
            coarser.group_labels,
        )

    def factor_through(self, coarser: "AttributeHierarchy") -> "AttributeHierarchy":
        """The step map from ``self``'s groups to ``coarser``'s groups.

        Both maps must share the same (base) domain, and ``coarser`` must be
        a true coarsening of ``self``: whenever two base codes share a group
        under ``self``, they must also share one under ``coarser``.  The
        returned hierarchy maps ``self``'s group codes onto ``coarser``'s —
        exactly the adjacent-level step a hierarchy stack drills through.
        """
        if len(coarser.groups) != len(self.groups):
            raise SchemaError(
                f"hierarchies for {self.attribute!r} map different domains "
                f"({len(self.groups)} vs {len(coarser.groups)} base codes)"
            )
        step: List[Optional[int]] = [None] * self.coarse_cardinality
        for base, mid in enumerate(self.groups):
            top = coarser.groups[base]
            if step[mid] is None:
                step[mid] = top
            elif step[mid] != top:
                raise SchemaError(
                    f"hierarchy for {self.attribute!r} does not factor: base "
                    f"codes sharing group {mid} at the finer level land in "
                    f"different groups ({step[mid]} vs {top}) at the coarser"
                )
        return AttributeHierarchy(
            self.attribute,
            tuple(g for g in step if g is not None),
            coarser.group_labels,
        )


@dataclass(frozen=True)
class Rollup:
    """The result of rolling a dataset up: the coarse dataset plus the
    hierarchies used, keyed by attribute index."""

    dataset: Dataset
    hierarchies: Mapping[int, AttributeHierarchy]


def rollup(dataset: Dataset, hierarchies: Iterable[AttributeHierarchy]) -> Rollup:
    """Apply hierarchies to a dataset, reducing attribute cardinalities.

    Attributes without a hierarchy pass through unchanged.  Label columns
    are preserved.
    """
    by_index: Dict[int, AttributeHierarchy] = {}
    for hierarchy in hierarchies:
        index = dataset.schema.index_of(hierarchy.attribute)
        if index in by_index:
            raise SchemaError(
                f"two hierarchies target attribute {hierarchy.attribute!r}"
            )
        if len(hierarchy.groups) != dataset.cardinalities[index]:
            raise SchemaError(
                f"hierarchy for {hierarchy.attribute!r} maps "
                f"{len(hierarchy.groups)} values; attribute has "
                f"{dataset.cardinalities[index]}"
            )
        by_index[index] = hierarchy

    rows = dataset.rows.copy()
    cardinalities = list(dataset.cardinalities)
    labels: List[Optional[Tuple[str, ...]]] = (
        [tuple(per) for per in dataset.schema.value_labels]
        if dataset.schema.value_labels is not None
        else [None] * dataset.d
    )
    for index, hierarchy in by_index.items():
        mapping = np.asarray(hierarchy.groups, dtype=np.int32)
        rows[:, index] = mapping[rows[:, index]]
        cardinalities[index] = hierarchy.coarse_cardinality
        if hierarchy.group_labels is not None:
            labels[index] = tuple(hierarchy.group_labels)
        else:
            labels[index] = tuple(
                str(g) for g in range(hierarchy.coarse_cardinality)
            )

    if all(per is not None for per in labels):
        value_labels = tuple(labels)  # type: ignore[arg-type]
    else:
        value_labels = None
    schema = Schema(dataset.schema.names, tuple(cardinalities), value_labels)
    coarse = Dataset(
        schema,
        rows,
        labels={name: dataset.label(name) for name in dataset.label_names},
        validate=False,
    )
    if dataset.unique_cache_ready and dataset.n > 0:
        # Rolling up only merges value combinations, so the coarse
        # aggregation follows from the base one: map the u unique base rows
        # (u ≪ n) through the group maps and re-aggregate those instead of
        # re-sorting all n rows — engine builds over the rolled dataset
        # then skip their full unique pass.
        base_unique, base_counts = dataset.unique_rows()
        mapped = base_unique.copy()
        for index, hierarchy in by_index.items():
            mapping = np.asarray(hierarchy.groups, dtype=np.int32)
            mapped[:, index] = mapping[mapped[:, index]]
        unique, inverse = np.unique(mapped, axis=0, return_inverse=True)
        counts = np.zeros(len(unique), dtype=np.int64)
        np.add.at(counts, inverse.reshape(-1), base_counts)
        coarse._prime_unique_cache(unique.astype(np.int32), counts)
    return Rollup(coarse, by_index)


def drill_down(pattern: Pattern, roll: Rollup) -> List[Pattern]:
    """Translate a coarse pattern back to the fine-grained patterns it
    stands for.

    A coarse MUP ``region=midwest, sex=female`` expands to one fine pattern
    per member state; the union of their matches equals the coarse
    pattern's matches, so each fine pattern is a candidate to investigate.
    """
    if len(pattern) != roll.dataset.d:
        raise DataError(
            f"pattern of length {len(pattern)} against d={roll.dataset.d}"
        )
    expansions: List[List[int]] = [[]]
    for index, value in enumerate(pattern):
        hierarchy = roll.hierarchies.get(index)
        if value == X or hierarchy is None:
            choices = [value]
        else:
            choices = list(hierarchy.fine_codes_of(value))
            if not choices:
                raise DataError(
                    f"coarse value {value} of attribute {index} has no fine codes"
                )
        expansions = [prefix + [c] for prefix in expansions for c in choices]
    return [Pattern(values) for values in expansions]
