"""Persistence for analysis artefacts.

The paper's workflow is human-in-the-loop: MUPs are identified, a domain
expert reviews them (marking immaterial ones), and the acquisition plan is
handed to whoever collects data.  That hand-off needs files.  This module
serializes :class:`~repro.core.mups.MupResult` and
:class:`~repro.core.enhancement.EnhancementResult` to JSON and back, with
patterns in the paper's compact string form where possible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro._util import SearchStats
from repro.core.enhancement.greedy import EnhancementResult
from repro.core.mups.base import MupResult
from repro.core.pattern import Pattern
from repro.exceptions import ReproError

_FORMAT_VERSION = 1


def _pattern_to_json(pattern: Pattern) -> List[int]:
    return list(pattern.values)


def _pattern_from_json(values: List[int]) -> Pattern:
    return Pattern(values)


def save_mup_result(result: MupResult, path: Union[str, Path]) -> None:
    """Write a MUP identification result as JSON."""
    payload = {
        "format": "repro.mup_result",
        "version": _FORMAT_VERSION,
        "threshold": result.threshold,
        "max_level": result.max_level,
        "mups": [_pattern_to_json(p) for p in result.mups],
        "stats": result.stats.as_dict(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_mup_result(path: Union[str, Path]) -> MupResult:
    """Read a MUP identification result written by :func:`save_mup_result`."""
    payload = _read(path, "repro.mup_result")
    stats_dict = payload.get("stats", {})
    stats = SearchStats(
        nodes_generated=int(stats_dict.get("nodes_generated", 0)),
        coverage_evaluations=int(stats_dict.get("coverage_evaluations", 0)),
        dominance_checks=int(stats_dict.get("dominance_checks", 0)),
        pruned=int(stats_dict.get("pruned", 0)),
        seconds=float(stats_dict.get("seconds", 0.0)),
    )
    return MupResult(
        mups=tuple(_pattern_from_json(v) for v in payload["mups"]),
        threshold=int(payload["threshold"]),
        stats=stats,
        max_level=payload.get("max_level"),
    )


def save_enhancement_result(
    result: EnhancementResult, path: Union[str, Path]
) -> None:
    """Write an acquisition plan as JSON."""
    payload = {
        "format": "repro.enhancement_result",
        "version": _FORMAT_VERSION,
        "combinations": [list(c) for c in result.combinations],
        "generalized": [_pattern_to_json(p) for p in result.generalized],
        "targets": result.targets,
        "unhittable": [_pattern_to_json(p) for p in result.unhittable],
        "iterations": result.iterations,
        "nodes_visited": result.nodes_visited,
        "seconds": result.seconds,
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_enhancement_result(path: Union[str, Path]) -> EnhancementResult:
    """Read an acquisition plan written by :func:`save_enhancement_result`."""
    payload = _read(path, "repro.enhancement_result")
    return EnhancementResult(
        combinations=tuple(tuple(int(v) for v in c) for c in payload["combinations"]),
        generalized=tuple(_pattern_from_json(v) for v in payload["generalized"]),
        targets=int(payload["targets"]),
        unhittable=tuple(_pattern_from_json(v) for v in payload["unhittable"]),
        iterations=int(payload.get("iterations", 0)),
        nodes_visited=int(payload.get("nodes_visited", 0)),
        seconds=float(payload.get("seconds", 0.0)),
    )


def _read(path: Union[str, Path], expected_format: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"{path} is not valid JSON: {error}") from error
    if payload.get("format") != expected_format:
        raise ReproError(
            f"{path} holds {payload.get('format')!r}, expected {expected_format!r}"
        )
    if payload.get("version", 0) > _FORMAT_VERSION:
        raise ReproError(
            f"{path} was written by a newer version of repro "
            f"(format v{payload['version']})"
        )
    return payload
