"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition is inconsistent (bad cardinality, label count...)."""


class DataError(ReproError):
    """A dataset violates its schema (out-of-range value, shape mismatch...)."""


class PatternError(ReproError):
    """A pattern is malformed or incompatible with the schema it is used on."""


class EngineError(ReproError):
    """A coverage-engine backend cannot serve queries (bad configuration,
    corrupted or missing spill files, use after close...)."""


class ValidationError(ReproError):
    """A validation rule is malformed."""


class EnhancementError(ReproError):
    """Coverage enhancement was asked to do something impossible
    (e.g. cover a target set that the validation oracle rules out entirely)."""


class ServeError(ReproError):
    """A serving-layer request cannot be fulfilled.

    Carries the machine-readable pieces the HTTP layer serializes into a
    structured error response: a stable ``code`` slug, an HTTP ``status``,
    and an optional ``detail`` payload.
    """

    def __init__(self, code: str, message: str, status: int = 400, detail=None):
        super().__init__(message)
        self.code = code
        self.status = int(status)
        self.detail = dict(detail or {})

    def payload(self) -> dict:
        """The JSON body the HTTP layer sends for this error."""
        body = {"code": self.code, "message": str(self)}
        if self.detail:
            body["detail"] = self.detail
        return body


class AdmissionError(ServeError):
    """Admission control declined a request (over budget or saturated).

    Distinguished from :class:`ServeError` so callers can tell "retry
    later / shrink the request" apart from "the request is wrong"; the
    HTTP layer maps it to 429/503-style statuses via ``status``.
    """
