"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition is inconsistent (bad cardinality, label count...)."""


class DataError(ReproError):
    """A dataset violates its schema (out-of-range value, shape mismatch...)."""


class PatternError(ReproError):
    """A pattern is malformed or incompatible with the schema it is used on."""


class EngineError(ReproError):
    """A coverage-engine backend cannot serve queries (bad configuration,
    corrupted or missing spill files, use after close...)."""


class ValidationError(ReproError):
    """A validation rule is malformed."""


class EnhancementError(ReproError):
    """Coverage enhancement was asked to do something impossible
    (e.g. cover a target set that the validation oracle rules out entirely)."""
